"""Tests for repro.epidemic.bounds."""

import math

import pytest

from repro.epidemic.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    epidemic_steps_for_confidence,
    lemma2_failure_bound,
    lemma2_steps,
)
from repro.errors import ParameterError


class TestChernoff:
    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(0.5, 12.0) == pytest.approx(
            math.exp(-0.25 * 12 / 3)
        )

    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(0.5, 12.0) == pytest.approx(
            math.exp(-0.25 * 12 / 2)
        )

    def test_upper_tail_delta_domain(self):
        with pytest.raises(ParameterError):
            chernoff_upper_tail(1.5, 10)
        with pytest.raises(ParameterError):
            chernoff_upper_tail(-0.1, 10)

    def test_lower_tail_delta_domain(self):
        with pytest.raises(ParameterError):
            chernoff_lower_tail(0.0, 10)
        with pytest.raises(ParameterError):
            chernoff_lower_tail(1.0, 10)

    def test_negative_expectation_rejected(self):
        with pytest.raises(ParameterError):
            chernoff_upper_tail(0.5, -1)

    def test_bounds_shrink_with_expectation(self):
        assert chernoff_upper_tail(0.5, 100) < chernoff_upper_tail(0.5, 10)
        assert chernoff_lower_tail(0.5, 100) < chernoff_lower_tail(0.5, 10)

    def test_lower_tail_is_tighter_than_upper(self):
        # exp(-d^2 E / 2) < exp(-d^2 E / 3)
        assert chernoff_lower_tail(0.3, 50) < chernoff_upper_tail(0.3, 50)


class TestLemma2:
    def test_steps_formula(self):
        # 2 * ceil(100/25) * 50 = 400
        assert lemma2_steps(100, 25, 50) == 400

    def test_steps_whole_population(self):
        assert lemma2_steps(100, 100, 50) == 100

    def test_failure_bound_inverts_steps(self):
        n, n_prime, t = 64, 16, 128.0
        steps = lemma2_steps(n, n_prime, t)
        assert lemma2_failure_bound(n, n_prime, steps) == pytest.approx(
            min(1.0, n * math.exp(-t / n))
        )

    def test_failure_bound_caps_at_one(self):
        assert lemma2_failure_bound(100, 100, 0) == 1.0

    def test_failure_bound_decreases_with_steps(self):
        values = [lemma2_failure_bound(64, 64, s) for s in (0, 1000, 10000)]
        assert values[0] >= values[1] >= values[2]

    def test_confidence_steps_achieve_target(self):
        n, n_prime, p = 128, 32, 0.01
        steps = epidemic_steps_for_confidence(n, n_prime, p)
        assert lemma2_failure_bound(n, n_prime, steps) <= p * 1.01

    def test_confidence_probability_domain(self):
        with pytest.raises(ParameterError):
            epidemic_steps_for_confidence(10, 5, 0.0)
        with pytest.raises(ParameterError):
            epidemic_steps_for_confidence(10, 5, 1.0)

    def test_size_validation(self):
        with pytest.raises(ParameterError):
            lemma2_steps(10, 0, 5)
        with pytest.raises(ParameterError):
            lemma2_steps(10, 11, 5)
        with pytest.raises(ParameterError):
            lemma2_steps(0, 0, 5)

    def test_negative_values_rejected(self):
        with pytest.raises(ParameterError):
            lemma2_steps(10, 5, -1)
        with pytest.raises(ParameterError):
            lemma2_failure_bound(10, 5, -1)

    def test_empirical_tail_under_bound(self):
        """Monte-Carlo sanity: the measured tail never beats Lemma 2."""
        from repro.epidemic.epidemic import simulate_epidemic

        n, trials = 32, 120
        completions = [
            simulate_epidemic(n, seed=seed).completion_step for seed in range(trials)
        ]
        for t_over_n in (3.0, 6.0):
            horizon = lemma2_steps(n, n, t_over_n * n)
            bound = lemma2_failure_bound(n, n, horizon)
            frequency = sum(1 for c in completions if c > horizon) / trials
            assert frequency <= min(1.0, bound) + 0.1
