"""Tests for repro.epidemic.epidemic."""

import pytest

from repro.engine.simulator import AgentSimulator
from repro.epidemic.epidemic import (
    EpidemicTracker,
    MaxPropagationProtocol,
    epidemic_on_schedule,
    simulate_epidemic,
)
from repro.errors import SimulationError
from repro.protocols.angluin import AngluinProtocol


class TestEpidemicOnSchedule:
    def test_root_is_infected_at_step_zero(self):
        result = epidemic_on_schedule(3, [], root=0)
        assert result.infection_steps[0] == 0
        assert not result.completed  # 2 agents remain uninfected

    def test_single_member_is_immediately_complete(self):
        result = epidemic_on_schedule(3, [], root=1, subpopulation=[1])
        assert result.completed
        assert result.completion_step == 0

    def test_spreads_through_contact(self):
        # 0 infects 1, then 1 infects 2.
        result = epidemic_on_schedule(3, [(0, 1), (1, 2)])
        assert result.completed
        assert result.infection_steps == (0, 1, 2)

    def test_either_role_spreads(self):
        # Infected responder also infects the initiator.
        result = epidemic_on_schedule(2, [(1, 0)])
        assert result.completed

    def test_non_contact_does_not_spread(self):
        result = epidemic_on_schedule(4, [(1, 2), (2, 3)])
        assert result.infection_steps[0] == 0
        assert result.infection_steps[1] == -1

    def test_subpopulation_members_only(self):
        # Agent 1 is outside V': it relays nothing and is never infected.
        result = epidemic_on_schedule(
            3, [(0, 1), (1, 2)], subpopulation=[0, 2]
        )
        assert result.infection_steps[1] == -1
        assert not result.completed

    def test_outside_agent_interaction_with_infected_counts(self):
        # (0,1): 1 not in V', no infection recorded; (0,2): 2 infected.
        result = epidemic_on_schedule(3, [(0, 1), (0, 2)], subpopulation=[0, 2])
        assert result.completed
        assert result.completion_step == 2

    def test_infected_count_at(self):
        result = epidemic_on_schedule(3, [(0, 1), (1, 2)])
        assert result.infected_count_at(0) == 1
        assert result.infected_count_at(1) == 2
        assert result.infected_count_at(2) == 3

    def test_validation_empty_subpopulation(self):
        with pytest.raises(SimulationError):
            epidemic_on_schedule(3, [], subpopulation=[])

    def test_validation_root_outside_subpopulation(self):
        with pytest.raises(SimulationError):
            epidemic_on_schedule(3, [], root=0, subpopulation=[1, 2])

    def test_validation_member_out_of_range(self):
        with pytest.raises(SimulationError):
            epidemic_on_schedule(3, [], subpopulation=[0, 5])


class TestSimulateEpidemic:
    def test_completes_whole_population(self):
        result = simulate_epidemic(32, seed=0)
        assert result.completed
        assert result.infected_count_at(result.completion_step) == 32

    def test_completes_subpopulation(self):
        result = simulate_epidemic(32, subpopulation=range(8), seed=1)
        assert result.completed
        assert sum(1 for s in result.infection_steps if s >= 0) == 8

    def test_seeded_reproducibility(self):
        a = simulate_epidemic(16, seed=9)
        b = simulate_epidemic(16, seed=9)
        assert a.infection_steps == b.infection_steps

    def test_max_steps_budget(self):
        result = simulate_epidemic(64, seed=0, max_steps=3)
        assert not result.completed

    def test_infection_steps_monotone_reachability(self):
        """Every infected agent (except the root) was infected at a step
        where it interacted with an already-infected agent — implied by
        construction, spot-checked via the completion count curve."""
        result = simulate_epidemic(24, seed=4)
        counts = [result.infected_count_at(s) for s in range(result.completion_step + 1)]
        assert counts[0] == 1
        assert counts[-1] == 24
        assert all(b - a in (0, 1, 2) for a, b in zip(counts, counts[1:]))


class TestEpidemicTracker:
    def test_tracks_live_simulation(self):
        sim = AgentSimulator(AngluinProtocol(), 16, seed=2)
        tracker = EpidemicTracker(16, root=0)
        sim.add_hook(tracker)
        sim.run(20000, until=lambda s: tracker.complete, check_every=8)
        assert tracker.complete
        assert len(tracker.infected) == 16

    def test_subpopulation_tracking(self):
        sim = AgentSimulator(AngluinProtocol(), 16, seed=2)
        tracker = EpidemicTracker(16, root=3, subpopulation=range(8))
        sim.add_hook(tracker)
        sim.run(20000, until=lambda s: tracker.complete, check_every=8)
        assert tracker.infected == set(range(8))


class TestMaxPropagationProtocol:
    def test_is_symmetric(self):
        protocol = MaxPropagationProtocol()
        assert protocol.is_symmetric()
        assert protocol.transition(1, 1) == (1, 1)
        assert protocol.transition(0, 0) == (0, 0)

    def test_propagates_one(self):
        protocol = MaxPropagationProtocol()
        assert protocol.transition(1, 0) == (1, 1)
        assert protocol.transition(0, 1) == (1, 1)

    def test_matches_bare_epidemic_on_same_schedule(self):
        """The protocol's '1' count equals the epidemic's infected count."""
        schedule = [(0, 1), (2, 3), (1, 2), (0, 4), (3, 4)]
        result = epidemic_on_schedule(5, schedule)
        from repro.engine.population import Configuration

        config = Configuration.of([1, 0, 0, 0, 0]).apply(
            MaxPropagationProtocol(), schedule
        )
        infected_by_protocol = {i for i, s in enumerate(config.states) if s == 1}
        infected_by_epidemic = {
            i for i, s in enumerate(result.infection_steps) if s >= 0
        }
        assert infected_by_protocol == infected_by_epidemic
