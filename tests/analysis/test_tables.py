"""Tests for repro.analysis.tables."""

import pytest

from repro.analysis.tables import Table, format_value
from repro.errors import ParameterError


class TestFormatValue:
    def test_floats_get_four_significant_digits(self):
        assert format_value(3.14159) == "3.142"

    def test_extreme_floats_use_scientific(self):
        assert "e" in format_value(1234567.0)
        assert "e" in format_value(0.0000123)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_non_floats_are_str(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"
        assert format_value(True) == "True"
        assert format_value(None) == "None"


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ParameterError):
            Table([])

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ParameterError):
            table.add_row([1])

    def test_render_aligns_columns(self):
        table = Table(["name", "value"])
        table.add_row(["x", 1])
        table.add_row(["longer-name", 22])
        lines = table.render().splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:3])

    def test_render_contains_cells(self):
        table = Table(["h"])
        table.add_row([3.5])
        assert "3.5" in table.render()

    def test_add_record_uses_headers(self):
        table = Table(["a", "b"])
        table.add_record({"b": 2, "a": 1, "ignored": 9})
        assert table.rows == [["1", "2"]]

    def test_add_record_missing_key_is_blank(self):
        table = Table(["a", "b"])
        table.add_record({"a": 1})
        assert table.rows == [["1", ""]]

    def test_from_records(self):
        table = Table.from_records(["a"], [{"a": 1}, {"a": 2}])
        assert len(table.rows) == 2

    def test_markdown_rendering(self):
        table = Table(["a", "b"])
        table.add_row([1, 2])
        markdown = table.render_markdown()
        assert markdown.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in markdown

    def test_str_is_render(self):
        table = Table(["a"])
        table.add_row([1])
        assert str(table) == table.render()
