"""Tests for repro.analysis.scaling."""

import math

import pytest

from repro.analysis.scaling import MODELS, fit_model, fit_scaling
from repro.errors import ParameterError


def curve(model_fn, coefficient, ns):
    return [coefficient * model_fn(n) for n in ns]


NS = [32, 64, 128, 256, 512, 1024]


class TestFitModel:
    def test_recovers_coefficient_exactly_on_clean_data(self):
        ys = curve(MODELS["log"], 3.5, NS)
        fit = fit_model(NS, ys, "log")
        assert fit.coefficient == pytest.approx(3.5)
        assert fit.nrmse == pytest.approx(0.0, abs=1e-12)

    def test_predict(self):
        fit = fit_model(NS, curve(MODELS["linear"], 2.0, NS), "linear")
        assert fit.predict(100) == pytest.approx(200.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ParameterError):
            fit_model(NS, NS, "cubic")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            fit_model([1, 2], [1.0], "log")

    def test_tiny_population_rejected(self):
        with pytest.raises(ParameterError):
            fit_model([1, 2], [1.0, 2.0], "log")


class TestFitScaling:
    @pytest.mark.parametrize("truth", ["log", "linear", "log^2", "nlogn"])
    def test_selects_the_generating_model(self, truth):
        ys = curve(MODELS[truth], 2.0, NS)
        fit = fit_scaling(NS, ys)
        assert fit.best.model == truth

    def test_selects_log_under_noise(self):
        import numpy as np

        rng = np.random.default_rng(0)
        ys = [
            2.0 * math.log2(n) * float(rng.uniform(0.9, 1.1)) for n in NS
        ]
        fit = fit_scaling(NS, ys, models=("log", "linear", "log^2"))
        assert fit.best.model == "log"

    def test_fit_for_lookup(self):
        ys = curve(MODELS["log"], 1.0, NS)
        fit = fit_scaling(NS, ys, models=("log", "linear"))
        assert fit.fit_for("linear").model == "linear"
        with pytest.raises(ParameterError):
            fit.fit_for("sqrt")

    def test_fits_are_sorted_by_nrmse(self):
        ys = curve(MODELS["linear"], 1.0, NS)
        fit = fit_scaling(NS, ys)
        errors = [f.nrmse for f in fit.fits]
        assert errors == sorted(errors)

    def test_str_mentions_model(self):
        ys = curve(MODELS["log"], 2.0, NS)
        assert "log" in str(fit_scaling(NS, ys, models=("log", "linear")))

    def test_constant_model(self):
        fit = fit_scaling(NS, [7.0] * len(NS))
        assert fit.best.model == "const"
        assert fit.best.coefficient == pytest.approx(7.0)
