"""Tests for repro.analysis.distributions."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    check_fair_coin,
    chi_square_uniform,
    geometric_heads_pmf,
    survivor_law_violations,
)
from repro.errors import ParameterError


class TestSurvivorLaw:
    def test_accepts_the_law_itself(self):
        distribution = {1: 0.5, 2: 0.3, 3: 0.12, 4: 0.05}
        assert survivor_law_violations(distribution, trials=1000) == []

    def test_flags_gross_violation(self):
        distribution = {2: 0.9}
        assert survivor_law_violations(distribution, trials=1000) == [2]

    def test_i1_is_never_checked(self):
        assert survivor_law_violations({1: 1.0}, trials=100) == []

    def test_slack_absorbs_sampling_noise(self):
        # Frequency slightly over the bound at few trials: not flagged.
        distribution = {2: 0.55}
        assert survivor_law_violations(distribution, trials=50) == []

    def test_trials_must_be_positive(self):
        with pytest.raises(ParameterError):
            survivor_law_violations({2: 0.1}, trials=0)


class TestFairCoin:
    def test_exact_half_has_zero_z(self):
        check = check_fair_coin(successes=500, trials=1000)
        assert check.z_score == pytest.approx(0.0)
        assert check.consistent()

    def test_biased_coin_flagged(self):
        check = check_fair_coin(successes=900, trials=1000)
        assert not check.consistent()

    def test_frequency(self):
        assert check_fair_coin(25, 100).frequency == 0.25

    def test_domain_validation(self):
        with pytest.raises(ParameterError):
            check_fair_coin(0, 0)
        with pytest.raises(ParameterError):
            check_fair_coin(0, 10, p=1.0)

    def test_small_samples_are_tolerant(self):
        assert check_fair_coin(7, 10).consistent()


class TestChiSquareUniform:
    def test_perfectly_uniform_is_zero(self):
        assert chi_square_uniform([10, 10, 10, 10]) == pytest.approx(0.0)

    def test_skewed_counts_large(self):
        assert chi_square_uniform([100, 0, 0, 0]) > 100

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        counts = [12, 18, 9, 21, 15]
        ours = chi_square_uniform(counts)
        theirs = scipy_stats.chisquare(counts).statistic
        assert ours == pytest.approx(float(theirs))

    def test_uniform_samples_pass_threshold(self):
        rng = np.random.default_rng(0)
        counts = np.bincount(rng.integers(0, 8, 8000), minlength=8).tolist()
        dof = 7
        assert chi_square_uniform(counts) < dof + 4 * (2 * dof) ** 0.5

    def test_validation(self):
        with pytest.raises(ParameterError):
            chi_square_uniform([5])
        with pytest.raises(ParameterError):
            chi_square_uniform([0, 0])


class TestGeometricPmf:
    def test_values(self):
        assert geometric_heads_pmf(0) == 0.5
        assert geometric_heads_pmf(1) == 0.25
        assert geometric_heads_pmf(3) == pytest.approx(1 / 16)

    def test_sums_to_one(self):
        assert sum(geometric_heads_pmf(j) for j in range(60)) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            geometric_heads_pmf(-1)

    def test_matches_quick_elimination_empirics(self):
        """The levelQ of an isolated player is geometric (Section 3.1.1)."""
        from repro.coins.role_coin import HEADS
        rng = np.random.default_rng(42)
        trials = 20000
        counts: dict[int, int] = {}
        for _ in range(trials):
            level = 0
            while rng.integers(0, 2) == HEADS:
                level += 1
            counts[level] = counts.get(level, 0) + 1
        for level in (0, 1, 2, 3):
            empirical = counts.get(level, 0) / trials
            assert empirical == pytest.approx(geometric_heads_pmf(level), abs=0.02)
