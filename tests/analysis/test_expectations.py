"""Tests for repro.analysis.expectations — closed forms vs measurements."""

import numpy as np
import pytest

from repro.analysis.expectations import (
    angluin_expected_parallel_time,
    coupon_collector_expected_parallel_time,
    harmonic,
    pairwise_meeting_expected_parallel_time,
)
from repro.engine.metrics import InteractionCounter
from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError
from repro.protocols.angluin import AngluinProtocol


class TestFormulas:
    def test_harmonic(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_angluin_closed_form(self):
        # (n-1)^2 / n
        assert angluin_expected_parallel_time(2) == pytest.approx(0.5)
        assert angluin_expected_parallel_time(10) == pytest.approx(8.1)

    def test_angluin_n1_is_zero(self):
        assert angluin_expected_parallel_time(1) == 0.0

    def test_pairwise_meeting(self):
        assert pairwise_meeting_expected_parallel_time(2) == 0.5
        assert pairwise_meeting_expected_parallel_time(101) == 50.0

    def test_coupon_small_cases(self):
        # n=2: the first step touches both agents: exactly 1 step = 0.5.
        assert coupon_collector_expected_parallel_time(2) == pytest.approx(0.5)

    def test_coupon_grows_like_half_log(self):
        value = coupon_collector_expected_parallel_time(10_000)
        assert value == pytest.approx(np.log(10_000) / 2, rel=0.25)

    def test_domain_validation(self):
        for fn in (
            angluin_expected_parallel_time,
            pairwise_meeting_expected_parallel_time,
            coupon_collector_expected_parallel_time,
        ):
            with pytest.raises(ParameterError):
                fn(0)


class TestFormulasAgainstSimulation:
    def test_angluin_measured_mean_matches_exact(self):
        """The strongest engine validation we have: an exact expectation."""
        n, trials = 24, 200
        times = []
        for seed in range(trials):
            sim = AgentSimulator(AngluinProtocol(), n, seed=seed)
            sim.run_until_stabilized()
            times.append(sim.parallel_time)
        measured = float(np.mean(times))
        exact = angluin_expected_parallel_time(n)
        # Std of one run is ~ exact; 200 trials give ~7% standard error.
        assert measured == pytest.approx(exact, rel=0.25)

    def test_coupon_measured_mean_matches_exact(self):
        n, trials = 32, 300
        times = []
        for seed in range(trials):
            sim = AgentSimulator(AngluinProtocol(), n, seed=seed)
            counter = InteractionCounter(n)
            sim.add_hook(counter)
            while not counter.all_touched:
                sim.step()
            times.append(sim.parallel_time)
        measured = float(np.mean(times))
        exact = coupon_collector_expected_parallel_time(n)
        assert measured == pytest.approx(exact, rel=0.15)
