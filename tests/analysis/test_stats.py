"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    count_distribution,
    summarize,
    tail_frequency,
)
from repro.errors import ParameterError


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4

    def test_single_sample_has_zero_width_ci(self):
        summary = summarize([5.0])
        assert summary.ci95_low == summary.ci95_high == 5.0
        assert summary.std == 0.0

    def test_ci_contains_mean(self):
        summary = summarize(list(range(50)))
        assert summary.ci95_low < summary.mean < summary.ci95_high

    def test_ci_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(0, 1, 20).tolist())
        large = summarize(rng.normal(0, 1, 2000).tolist())
        assert (large.ci95_high - large.ci95_low) < (
            small.ci95_high - small.ci95_low
        )

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize([])

    def test_str_mentions_mean_and_count(self):
        text = str(summarize([2.0, 2.0]))
        assert "2" in text and "k=2" in text


class TestBootstrap:
    def test_interval_contains_true_mean_usually(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10, 2, 100).tolist()
        low, high = bootstrap_ci(data, seed=0)
        assert low < 10.5 and high > 9.5

    def test_reproducible_with_seed(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_confidence_domain(self):
        with pytest.raises(ParameterError):
            bootstrap_ci([1.0], confidence=1.0)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            bootstrap_ci([])


class TestTailFrequency:
    def test_counts_strictly_above(self):
        assert tail_frequency([1, 2, 3, 4], 2) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            tail_frequency([], 0)


class TestCountDistribution:
    def test_normalizes(self):
        dist = count_distribution([1, 1, 2, 4])
        assert dist == {1: 0.5, 2: 0.25, 4: 0.25}

    def test_sorted_keys(self):
        dist = count_distribution([3, 1, 2])
        assert list(dist) == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            count_distribution([])
