"""Tests for repro.orchestration.spec (TrialSpec / CampaignSpec hashing)."""

import pytest

from repro.errors import ExperimentError
from repro.orchestration.registry import register_protocol
from repro.orchestration.spec import (
    AUTO_ENGINE,
    BATCH_ENGINE_MIN_N,
    SUPERBATCH_ENGINE_MIN_N,
    ENGINES,
    CampaignSpec,
    TrialSpec,
    default_engine,
    trial_specs,
)
from repro.protocols.angluin import AngluinProtocol


@register_protocol("_test-two-params")
def _two_params(n, alpha=1, beta=2):
    return AngluinProtocol()


def spec(**overrides):
    base = dict(protocol="angluin", n=8, seed=0)
    base.update(overrides)
    return TrialSpec.create(**base)


class TestTrialSpec:
    def test_params_order_is_canonicalized(self):
        a = TrialSpec.create(
            "_test-two-params", 8, 0, params={"alpha": 5, "beta": 7}
        )
        b = TrialSpec.create(
            "_test-two-params", 8, 0, params={"beta": 7, "alpha": 5}
        )
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_default_params_normalize_away(self):
        # ("pll", {"variant": "full"}) builds the same protocol as
        # ("pll", {}), so they must share one store row.
        explicit = TrialSpec.create("pll", 64, 0, params={"variant": "full"})
        implicit = TrialSpec.create("pll", 64, 0)
        assert explicit == implicit
        assert explicit.content_hash() == implicit.content_hash()

    def test_non_default_params_feed_the_hash(self):
        full = TrialSpec.create("pll", 64, 0)
        ablated = TrialSpec.create(
            "pll", 64, 0, params={"variant": "backup-only"}
        )
        assert full.content_hash() != ablated.content_hash()

    def test_unknown_param_rejected_at_creation(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            TrialSpec.create("pll", 64, 0, params={"varaint": "full"})

    @pytest.mark.parametrize(
        "change",
        [
            {"protocol": "pll"},
            {"n": 16},
            {"seed": 1},
            {"engine": "multiset"},
            {"max_steps": 100},
        ],
    )
    def test_every_identity_field_feeds_the_hash(self, change):
        assert spec().content_hash() != spec(**change).content_hash()

    def test_hash_is_stable_across_releases(self):
        # Golden value: the store keys persisted trials by this digest, so
        # changing the canonical form silently orphans every existing
        # store.  Bump SPEC_VERSION (and this value) instead.
        assert spec().content_hash() == (
            "baccafe10c963880c113d5ccfded1205e2a39a939cf20ecb0b15a25b4c80b918"
        )

    def test_json_roundtrip(self):
        original = TrialSpec.create(
            "pll", 128, 7, engine="multiset",
            params={"variant": "no-tournament"}, max_steps=5000,
        )
        restored = TrialSpec.from_json(original.to_json())
        assert restored == original
        assert restored.content_hash() == original.content_hash()

    def test_build_protocol_uses_registry(self):
        protocol = spec().build_protocol()
        assert protocol.initial_state() is not None

    def test_rejects_tiny_population(self):
        with pytest.raises(ExperimentError):
            spec(n=1)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ExperimentError):
            spec(engine="quantum")

    def test_rejects_unknown_detector(self):
        with pytest.raises(ExperimentError):
            spec(detector="oracle")

    def test_rejects_bad_max_steps(self):
        with pytest.raises(ExperimentError):
            spec(max_steps=0)

    def test_rejects_unserializable_params(self):
        with pytest.raises(ExperimentError, match="JSON"):
            spec(protocol="_test-two-params", params={"alpha": object()})


class TestTrialSpecs:
    def test_sequential_seed_derivation(self):
        specs = trial_specs("angluin", 8, trials=3, base_seed=7)
        assert [s.seed for s in specs] == [7, 8, 9]

    def test_rejects_zero_trials(self):
        with pytest.raises(ExperimentError):
            trial_specs("angluin", 8, trials=0)

    def test_batch_engine_is_a_first_class_spec_engine(self):
        assert "batch" in ENGINES
        batch = spec(engine="batch")
        assert batch.engine == "batch"
        assert batch.content_hash() != spec().content_hash()


class TestAutoEngine:
    def test_default_engine_crossover(self):
        assert default_engine(BATCH_ENGINE_MIN_N - 1) == "multiset"
        assert default_engine(BATCH_ENGINE_MIN_N) == "batch"

    def test_default_engine_resolves_three_regimes(self):
        # multiset below the batch crossover, batch in the middle,
        # count-level superbatch from its own measured crossover up.
        assert BATCH_ENGINE_MIN_N < SUPERBATCH_ENGINE_MIN_N
        assert default_engine(SUPERBATCH_ENGINE_MIN_N - 1) == "batch"
        assert default_engine(SUPERBATCH_ENGINE_MIN_N) == "superbatch"
        assert default_engine(10 * SUPERBATCH_ENGINE_MIN_N) == "superbatch"

    def test_auto_resolves_superbatch_specs_per_n(self):
        specs = trial_specs(
            "angluin", SUPERBATCH_ENGINE_MIN_N, trials=1, engine=AUTO_ENGINE
        )
        assert [s.engine for s in specs] == ["superbatch"]
        explicit = trial_specs(
            "angluin", SUPERBATCH_ENGINE_MIN_N, trials=1, engine="superbatch"
        )
        assert specs[0].content_hash() == explicit[0].content_hash()

    def test_auto_resolves_per_population_size(self):
        small = trial_specs("angluin", 64, trials=1, engine=AUTO_ENGINE)
        large = trial_specs(
            "angluin", BATCH_ENGINE_MIN_N, trials=1, engine=AUTO_ENGINE
        )
        assert [s.engine for s in small] == ["multiset"]
        assert [s.engine for s in large] == ["batch"]

    def test_auto_hashes_match_the_resolved_engine(self):
        # 'auto' is sugar, not identity: specs resolved from it must share
        # store rows with explicitly named engines.
        auto = trial_specs("angluin", 64, trials=1, engine=AUTO_ENGINE)[0]
        explicit = trial_specs("angluin", 64, trials=1, engine="multiset")[0]
        assert auto.content_hash() == explicit.content_hash()

    def test_auto_never_depends_on_the_trial_count(self):
        # Cross-campaign row sharing: the same (protocol, n, seed) data
        # point must hash identically whether it came from a 2-trial or a
        # 200-trial campaign.
        shallow = trial_specs("angluin", 64, trials=2, engine=AUTO_ENGINE)
        deep = trial_specs("angluin", 64, trials=200, engine=AUTO_ENGINE)
        assert shallow[0].content_hash() == deep[0].content_hash()

    def test_auto_is_not_a_valid_spec_engine(self):
        # Content hashes must always name a concrete engine.
        with pytest.raises(ExperimentError):
            spec(engine=AUTO_ENGINE)

    def test_from_grid_resolves_auto_per_n(self):
        campaign = CampaignSpec.from_grid(
            "c", "angluin", [64, BATCH_ENGINE_MIN_N], trials=1,
            engine=AUTO_ENGINE,
        )
        engines = {s.n: s.engine for s in campaign.trials}
        assert engines == {64: "multiset", BATCH_ENGINE_MIN_N: "batch"}

    def test_ensemble_resolves_to_multiset_specs(self):
        # 'ensemble' is an execution strategy: lanes are bit-identical to
        # solo multiset runs, so specs (and store rows) are multiset's.
        packed = trial_specs("angluin", 64, trials=2, engine="ensemble")
        solo = trial_specs("angluin", 64, trials=2, engine="multiset")
        assert [s.content_hash() for s in packed] == [
            s.content_hash() for s in solo
        ]

    def test_ensemble_is_not_a_valid_spec_engine(self):
        with pytest.raises(ExperimentError):
            spec(engine="ensemble")


class TestCampaignSpec:
    def test_from_grid_covers_the_full_grid(self):
        campaign = CampaignSpec.from_grid("c", "angluin", [8, 16], trials=3)
        assert len(campaign) == 6
        assert {s.n for s in campaign.trials} == {8, 16}

    def test_content_hash_is_order_insensitive(self):
        forward = CampaignSpec.from_grid("c", "angluin", [8, 16], trials=2)
        backward = CampaignSpec(
            name="c", trials=tuple(reversed(forward.trials))
        )
        assert forward.content_hash() == backward.content_hash()

    def test_rejects_duplicate_trials(self):
        single = trial_specs("angluin", 8, trials=1)
        with pytest.raises(ExperimentError):
            CampaignSpec(name="dup", trials=tuple(single * 2))

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            CampaignSpec(name="empty", trials=())

    def test_groups_by_protocol_params_n(self):
        campaign = CampaignSpec.from_grid("c", "angluin", [8, 16], trials=2)
        groups = campaign.groups()
        assert [key[2] for key, _specs in groups] == [8, 16]
        assert all(len(specs) == 2 for _key, specs in groups)
