"""Tests for repro.experiments.campaigns (experiment id -> campaign)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import campaign_for, campaign_ids, run_experiment
from repro.orchestration.runner import CampaignRunner
from repro.orchestration.store import TrialStore


class TestCampaignFor:
    def test_known_ids(self):
        assert campaign_ids() == ["E1", "E12", "E9", "EROB", "ESCHED"]

    def test_unknown_id_lists_known(self):
        with pytest.raises(ExperimentError, match="E9"):
            campaign_for("E99")

    def test_lookup_is_case_insensitive(self):
        assert campaign_for("e9", scale=0.02).name == "E9"

    def test_e1_covers_every_table_row(self):
        campaign = campaign_for("E1", scale=0.02)
        protocols = {spec.protocol for spec in campaign.trials}
        assert protocols == {
            "angluin", "lottery", "fast-nonce", "pll", "pll-symmetric"
        }
        # 5 protocols x 4 population sizes x 1 trial at this scale.
        assert len(campaign) == 20

    def test_e9_grid_matches_experiment_scale_rules(self):
        campaign = campaign_for("E9", scale=0.02)
        assert {spec.n for spec in campaign.trials} == {64, 128, 256}
        assert all(spec.protocol == "pll" for spec in campaign.trials)

    def test_e12_names_the_variants(self):
        campaign = campaign_for("E12", scale=0.125)
        # "full" is the builder default, so it normalizes to empty params.
        variants = {
            dict(spec.params).get("variant", "full")
            for spec in campaign.trials
        }
        assert variants == {"full", "no-tournament", "backup-only"}

    def test_engine_and_seed_thread_through(self):
        campaign = campaign_for("E9", scale=0.02, seed=11, engine="multiset")
        assert all(spec.engine == "multiset" for spec in campaign.trials)
        assert min(spec.seed for spec in campaign.trials) == 11


class TestExperimentCampaignSharing:
    def test_default_variant_rows_shared_across_campaigns(self):
        # E9 stores plain "pll" trials; E12's variant=full trials build
        # the identical protocol, so params normalization must make them
        # cache hits (n=64 and n=256 overlap at these scales, seed 0).
        with TrialStore(":memory:") as store:
            runner = CampaignRunner(store)
            runner.run(campaign_for("E9", scale=0.125))
            status = runner.status(campaign_for("E12", scale=0.125))
        assert status.cached == 2

    def test_repro_run_fills_the_campaign_store(self):
        # `repro run E12 --store x` and `repro campaign run E12 --store x`
        # must address the same rows: running the experiment through an
        # orchestration context leaves the campaign fully cached.
        with TrialStore(":memory:") as store:
            run_experiment("E12", scale=0.125, store=store)
            campaign = campaign_for("E12", scale=0.125)
            status = CampaignRunner(store).status(campaign)
        assert status.complete
