"""Tests for repro.orchestration.crossover (bench-derived thresholds)."""

import json

from repro.orchestration import crossover
from repro.orchestration.crossover import (
    DEFAULT_BATCH_CROSSOVER,
    batch_crossover,
    crossover_from_report,
)


def rows(*cells):
    """results rows from (n, {engine: rate}) cells."""
    return [
        {"engine": engine, "protocol": "pll", "n": n, "steps_per_sec": rate}
        for n, rates in cells
        for engine, rate in rates.items()
    ]


class TestCrossoverFromReport:
    def test_smallest_n_where_batch_stays_fastest(self):
        report = {
            "results": rows(
                (1024, {"agent": 500.0, "multiset": 200.0, "batch": 100.0}),
                (65536, {"agent": 500.0, "multiset": 200.0, "batch": 800.0}),
                (1_000_000, {"agent": 400.0, "multiset": 200.0, "batch": 1600.0}),
            )
        }
        assert crossover_from_report(report) == 65536

    def test_batch_win_must_hold_at_every_larger_n(self):
        # A win at mid n that collapses at large n does not move the
        # threshold down: auto must not route big sweeps to a loser.
        report = {
            "results": rows(
                (1024, {"agent": 100.0, "batch": 150.0}),
                (65536, {"agent": 500.0, "batch": 300.0}),
                (1_000_000, {"agent": 400.0, "batch": 1600.0}),
            )
        }
        assert crossover_from_report(report) == 1_000_000

    def test_quick_reports_never_move_the_threshold(self):
        # `report.py --quick` legitimately overwrites the repo-root
        # record (CI smoke); a reduced, noisy grid must not silently
        # re-resolve auto and orphan trial-store rows.
        report = {
            "quick": True,
            "results": rows(
                (16384, {"agent": 100.0, "batch": 800.0}),
            ),
        }
        assert crossover_from_report(report) is None

    def test_none_when_batch_never_wins(self):
        report = {
            "results": rows((1024, {"agent": 500.0, "batch": 100.0}))
        }
        assert crossover_from_report(report) is None

    def test_none_for_empty_or_alien_reports(self):
        assert crossover_from_report({}) is None
        assert crossover_from_report({"results": [{"protocol": "angluin"}]}) is None

    def test_ignores_malformed_rows(self):
        report = {
            "results": rows((65536, {"agent": 100.0, "batch": 800.0}))
            + [{"engine": "batch", "protocol": "pll", "n": "not-a-number"}]
        }
        assert crossover_from_report(report) == 65536


class TestBatchCrossover:
    def test_committed_bench_derivation_matches_the_documented_value(self):
        # The repository's own BENCH_engine.json is the source of truth;
        # the PR 2 constant (2^16) must match what it derives to, or the
        # DESIGN.md documentation is stale.
        assert batch_crossover() == 1 << 16

    def test_env_override_and_fallback(self, tmp_path, monkeypatch):
        report = {
            "results": rows(
                (512, {"agent": 1.0, "batch": 2.0}),
            )
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        monkeypatch.setenv(crossover.BENCH_REPORT_ENV, str(path))
        crossover._crossover_for_path.cache_clear()
        try:
            assert batch_crossover() == 512
            monkeypatch.setenv(
                crossover.BENCH_REPORT_ENV, str(tmp_path / "missing.json")
            )
            assert batch_crossover() == DEFAULT_BATCH_CROSSOVER
        finally:
            crossover._crossover_for_path.cache_clear()
