"""Tests for repro.orchestration.crossover (bench-derived thresholds)."""

import json
import logging

from repro.orchestration import crossover
from repro.orchestration.crossover import (
    DEFAULT_BATCH_CROSSOVER,
    DEFAULT_SUPERBATCH_CROSSOVER,
    batch_crossover,
    crossover_from_report,
    superbatch_crossover,
    superbatch_crossover_from_report,
)


def rows(*cells):
    """results rows from (n, {engine: rate}) cells."""
    return [
        {"engine": engine, "protocol": "pll", "n": n, "steps_per_sec": rate}
        for n, rates in cells
        for engine, rate in rates.items()
    ]


class TestCrossoverFromReport:
    def test_smallest_n_where_batch_stays_fastest(self):
        report = {
            "results": rows(
                (1024, {"agent": 500.0, "multiset": 200.0, "batch": 100.0}),
                (65536, {"agent": 500.0, "multiset": 200.0, "batch": 800.0}),
                (1_000_000, {"agent": 400.0, "multiset": 200.0, "batch": 1600.0}),
            )
        }
        assert crossover_from_report(report) == 65536

    def test_batch_win_must_hold_at_every_larger_n(self):
        # A win at mid n that collapses at large n does not move the
        # threshold down: auto must not route big sweeps to a loser.
        report = {
            "results": rows(
                (1024, {"agent": 100.0, "batch": 150.0}),
                (65536, {"agent": 500.0, "batch": 300.0}),
                (1_000_000, {"agent": 400.0, "batch": 1600.0}),
            )
        }
        assert crossover_from_report(report) == 1_000_000

    def test_superbatch_rows_do_not_erase_the_batch_regime(self):
        # The batch crossover grades batch against the per-interaction
        # engines only: superbatch out-running batch at the top of the
        # grid must not push the batch threshold upward (auto hands
        # those sizes to superbatch anyway).
        report = {
            "results": rows(
                (1024, {"agent": 500.0, "batch": 100.0, "superbatch": 50.0}),
                (65536, {"agent": 300.0, "batch": 800.0, "superbatch": 700.0}),
                (1_000_000, {"agent": 200.0, "batch": 900.0, "superbatch": 5000.0}),
            )
        }
        assert crossover_from_report(report) == 65536
        assert superbatch_crossover_from_report(report) == 1_000_000

    def test_quick_reports_never_move_the_threshold(self):
        # `repro bench --quick` legitimately overwrites the repo-root
        # record (CI smoke); a reduced, noisy grid must not silently
        # re-resolve auto and orphan trial-store rows.
        report = {
            "quick": True,
            "results": rows(
                (16384, {"agent": 100.0, "batch": 800.0, "superbatch": 900.0}),
            ),
        }
        assert crossover_from_report(report) is None
        assert superbatch_crossover_from_report(report) is None

    def test_none_when_batch_never_wins(self):
        report = {
            "results": rows((1024, {"agent": 500.0, "batch": 100.0}))
        }
        assert crossover_from_report(report) is None

    def test_none_for_empty_or_alien_reports(self):
        assert crossover_from_report({}) is None
        assert crossover_from_report({"results": [{"protocol": "angluin"}]}) is None
        assert superbatch_crossover_from_report({}) is None

    def test_ignores_malformed_rows(self):
        report = {
            "results": rows((65536, {"agent": 100.0, "batch": 800.0}))
            + [{"engine": "batch", "protocol": "pll", "n": "not-a-number"}]
        }
        assert crossover_from_report(report) == 65536


class TestSuperbatchCrossoverFromReport:
    def test_superbatch_must_beat_every_other_engine(self):
        # Beating batch alone is not enough: a cell where the kernel
        # multiset engine still wins keeps the threshold above it.
        report = {
            "results": rows(
                (65536, {"multiset": 900.0, "batch": 800.0, "superbatch": 850.0}),
                (1_000_000, {"multiset": 700.0, "batch": 1400.0, "superbatch": 3000.0}),
            )
        }
        assert superbatch_crossover_from_report(report) == 1_000_000

    def test_none_without_superbatch_rows(self):
        report = {
            "results": rows((1_000_000, {"agent": 1.0, "batch": 2.0}))
        }
        assert superbatch_crossover_from_report(report) is None

    def test_noise_level_wins_do_not_extend_the_regime(self):
        # Engine resolution feeds spec content hashes: a 2% win at one
        # grid size (well inside run-to-run noise near the crossover)
        # must not re-route that size; only decisive wins (the
        # SUPERBATCH_WIN_MARGIN) move the boundary down.
        report = {
            "results": rows(
                (65536, {"batch": 944.0, "superbatch": 963.0}),
                (1_000_000, {"batch": 1845.0, "superbatch": 4160.0}),
            )
        }
        assert superbatch_crossover_from_report(report) == 1_000_000


class TestUnknownSchemaFailsSoft:
    def failing_report(self, schema):
        report = {
            "results": rows(
                (512, {"agent": 1.0, "batch": 2.0, "superbatch": 3.0})
            )
        }
        if schema is not None:
            report["schema"] = schema
        return report

    def test_known_and_missing_schemas_parse(self):
        for schema in (None, "repro-bench-engine/1", "repro-bench-engine/4"):
            report = self.failing_report(schema)
            assert crossover_from_report(report) == 512
            assert superbatch_crossover_from_report(report) == 512

    def test_unknown_schema_warns_and_returns_none(self, caplog):
        # A future (or garbled) schema version must not be misparsed
        # into an engine resolution: warn, fall back, never guess.
        for schema in ("repro-bench-engine/99", "other-schema/1", 7):
            with caplog.at_level(
                logging.WARNING, logger="repro.orchestration.crossover"
            ):
                caplog.clear()
                assert crossover_from_report(self.failing_report(schema)) is None
                assert (
                    superbatch_crossover_from_report(self.failing_report(schema))
                    is None
                )
            assert any(
                "unknown schema" in record.message
                for record in caplog.records
            ), schema

    def test_unknown_schema_falls_back_to_defaults(
        self, tmp_path, monkeypatch, caplog
    ):
        report = self.failing_report("repro-bench-engine/99")
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        monkeypatch.setenv(crossover.BENCH_REPORT_ENV, str(path))
        crossover._crossovers_for_path.cache_clear()
        try:
            with caplog.at_level(
                logging.WARNING, logger="repro.orchestration.crossover"
            ):
                assert batch_crossover() == DEFAULT_BATCH_CROSSOVER
                assert superbatch_crossover() == DEFAULT_SUPERBATCH_CROSSOVER
            assert any(
                "unknown schema" in record.message
                for record in caplog.records
            )
        finally:
            crossover._crossovers_for_path.cache_clear()


class TestCommittedRecord:
    def test_committed_bench_derivation_matches_the_documented_values(self):
        # The repository's own BENCH_engine.json is the source of truth;
        # the documented constants (DESIGN.md Section 2) must match what
        # it derives to, or the documentation is stale.
        assert batch_crossover() == 1 << 16
        assert superbatch_crossover() == 1_000_000

    def test_env_override_and_fallback(self, tmp_path, monkeypatch):
        report = {
            "results": rows(
                (512, {"agent": 1.0, "batch": 2.0, "superbatch": 3.0}),
            )
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        monkeypatch.setenv(crossover.BENCH_REPORT_ENV, str(path))
        crossover._crossovers_for_path.cache_clear()
        try:
            assert batch_crossover() == 512
            assert superbatch_crossover() == 512
            monkeypatch.setenv(
                crossover.BENCH_REPORT_ENV, str(tmp_path / "missing.json")
            )
            assert batch_crossover() == DEFAULT_BATCH_CROSSOVER
            assert superbatch_crossover() == DEFAULT_SUPERBATCH_CROSSOVER
        finally:
            crossover._crossovers_for_path.cache_clear()
