"""Tests for repro.orchestration.runner (campaign run/resume/status/report)."""

from repro.orchestration.runner import CampaignRunner
from repro.orchestration.spec import CampaignSpec
from repro.orchestration.store import TrialStore


def small_campaign() -> CampaignSpec:
    return CampaignSpec.from_grid("smoke", "angluin", [8, 12], trials=4)


class TestCampaignRunner:
    def test_run_then_rerun_is_all_cache_hits(self):
        campaign = small_campaign()
        with TrialStore(":memory:") as store:
            runner = CampaignRunner(store)
            first = runner.run(campaign)
            second = runner.run(campaign)
        assert first.executed == len(campaign)
        assert second.executed == 0 and second.cached == len(campaign)
        assert first.outcomes == second.outcomes

    def test_status_tracks_coverage(self):
        campaign = small_campaign()
        with TrialStore(":memory:") as store:
            runner = CampaignRunner(store)
            before = runner.status(campaign)
            runner.run(campaign)
            after = runner.status(campaign)
        assert (before.cached, before.pending) == (0, len(campaign))
        assert after.complete
        assert "100.0%" in after.render()

    def test_status_breaks_coverage_down_by_resolved_engine(self):
        # Mixed-engine campaigns (what auto produces across a large
        # grid) must be auditable per engine: which engine owns which
        # slice, and how much of each slice the store already holds.
        mixed = CampaignSpec(
            name="mixed",
            trials=tuple(
                CampaignSpec.from_grid(
                    "a", "angluin", [8], trials=2, engine="multiset"
                ).trials
                + CampaignSpec.from_grid(
                    "b", "angluin", [12], trials=3, engine="superbatch"
                ).trials
            ),
        )
        multiset_only = CampaignSpec(name="part", trials=mixed.trials[:2])
        with TrialStore(":memory:") as store:
            runner = CampaignRunner(store)
            runner.run(multiset_only)
            status = runner.status(mixed)
        assert status.engines == (
            ("multiset", 2, 2),
            ("superbatch", 0, 3),
        )
        rendered = status.render()
        assert "multiset 2/2" in rendered
        assert "superbatch 0/3" in rendered

    def test_aggregate_names_the_engine_per_group(self):
        campaign = CampaignSpec.from_grid(
            "eng", "angluin", [8], trials=2, engine="superbatch"
        )
        with TrialStore(":memory:") as store:
            result = CampaignRunner(store).run(campaign)
        assert "superbatch" in result.aggregate().render()

    def test_parallel_outcomes_identical_to_serial(self):
        # Same campaign at jobs=1 and jobs=4 must yield identical
        # per-seed outcomes (trials re-derive all randomness from their
        # spec's own seed, so worker scheduling cannot leak in).
        campaign = small_campaign()
        with TrialStore(":memory:") as s1, TrialStore(":memory:") as s4:
            serial = CampaignRunner(s1, jobs=1).run(campaign)
            parallel = CampaignRunner(s4, jobs=4).run(campaign)
        assert serial.outcomes == parallel.outcomes
        assert serial.aggregate().render() == parallel.aggregate().render()

    def test_killed_then_resumed_matches_uninterrupted(self):
        # Simulate a mid-campaign kill: only part of the grid reached the
        # store before the "crash"; resuming (running the full campaign
        # against the same store) must aggregate identically to a run
        # that was never interrupted.
        campaign = small_campaign()
        cut = len(campaign) // 2
        partial = CampaignSpec(name="partial", trials=campaign.trials[:cut])
        with TrialStore(":memory:") as interrupted_store:
            CampaignRunner(interrupted_store).run(partial)
            resumed = CampaignRunner(interrupted_store).run(campaign)
        with TrialStore(":memory:") as clean_store:
            uninterrupted = CampaignRunner(clean_store).run(campaign)
        assert resumed.cached == cut
        assert resumed.executed == len(campaign) - cut
        assert resumed.outcomes == uninterrupted.outcomes
        assert (
            resumed.aggregate().render() == uninterrupted.aggregate().render()
        )

    def test_report_aggregates_without_executing(self):
        campaign = small_campaign()
        cut = 3
        partial = CampaignSpec(name="partial", trials=campaign.trials[:cut])
        with TrialStore(":memory:") as store:
            runner = CampaignRunner(store)
            runner.run(partial)
            report = runner.report(campaign)
        assert report.executed == 0
        assert report.cached == cut
        assert "not yet in the store" in report.render()

    def test_aggregate_groups_per_population_size(self):
        campaign = small_campaign()
        with TrialStore(":memory:") as store:
            result = CampaignRunner(store).run(campaign)
        rendered = result.aggregate().render()
        assert "angluin" in rendered
        lines = [line for line in rendered.splitlines() if "angluin" in line]
        assert len(lines) == 2  # one row per n

class TestShardedStatus:
    def test_status_reports_shard_coverage_and_leases(self, tmp_path):
        from repro.orchestration.backend.fabric import run_sharded_campaign
        from repro.orchestration.backend.sharded import ShardedStore

        campaign = small_campaign()
        root = tmp_path / "root"
        run_sharded_campaign(
            campaign.trials, root, worker="w1", lease_ttl=30
        )
        with ShardedStore(root, readonly=True) as view:
            status = CampaignRunner(view).status(campaign)
        assert status.complete
        (shard,) = status.shards
        assert shard.name == "shard-w1.sqlite"
        assert shard.rows == len(campaign)
        assert shard.in_campaign == len(campaign)
        assert status.leases == ()
        rendered = status.render()
        assert "shard-w1.sqlite" in rendered
        assert "live leases" not in rendered  # nothing held: stay quiet

    def test_status_renders_live_lease_holders(self, tmp_path):
        from repro.orchestration.backend.leases import LeaseManager
        from repro.orchestration.backend.sharded import ShardedStore

        campaign = small_campaign()
        root = tmp_path / "root"
        root.mkdir()
        spec = campaign.trials[0]
        manager = LeaseManager(root / "leases.sqlite", "busy", ttl_secs=60)
        manager.claim([spec.content_hash()])
        manager.close()
        with ShardedStore(root, readonly=True) as view:
            status = CampaignRunner(view).status(campaign)
        assert len(status.leases) == 1
        lease = status.leases[0]
        assert lease.worker == "busy"
        assert lease.spec_hash == spec.content_hash()
        rendered = status.render()
        assert "live leases: 1" in rendered
        assert "busy" in rendered

    def test_single_file_store_status_has_no_shard_sections(self):
        campaign = small_campaign()
        with TrialStore(":memory:") as store:
            status = CampaignRunner(store).status(campaign)
        assert status.shards == ()
        assert status.leases == ()
        assert "shards:" not in status.render()
