"""Concurrency hardening of the single-file store (WAL + busy timeout).

The distributed campaign fabric's default backend is still one SQLite
file; these tests pin the pragmas that make N writer processes safe on
it and hammer one store from four concurrent writers to prove the
``database is locked`` era stays closed.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.orchestration.spec import TrialOutcome, TrialSpec
from repro.orchestration.store import (
    BUSY_TIMEOUT_ENV,
    DEFAULT_BUSY_TIMEOUT_MS,
    TrialStore,
    busy_timeout_ms,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def outcome_for(spec: TrialSpec, steps: int = 100) -> TrialOutcome:
    return TrialOutcome(
        seed=spec.seed,
        steps=steps,
        parallel_time=steps / spec.n,
        leader_count=1,
        distinct_states=4,
    )


class TestBusyTimeout:
    def test_default(self):
        assert busy_timeout_ms() == DEFAULT_BUSY_TIMEOUT_MS

    def test_ctor_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BUSY_TIMEOUT_ENV, "1000")
        assert busy_timeout_ms(250) == 250

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BUSY_TIMEOUT_ENV, "5000")
        assert busy_timeout_ms() == 5000

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(BUSY_TIMEOUT_ENV, "soon")
        assert busy_timeout_ms() == DEFAULT_BUSY_TIMEOUT_MS

    def test_negative_clamped_to_zero(self):
        assert busy_timeout_ms(-5) == 0


class TestJournalMode:
    def test_writable_file_store_runs_wal(self, tmp_path):
        with TrialStore(tmp_path / "t.sqlite") as store:
            assert store.journal_mode() == "wal"

    def test_wal_sticks_for_readonly_opens(self, tmp_path):
        path = tmp_path / "t.sqlite"
        TrialStore(path).close()
        with TrialStore(path, readonly=True) as store:
            assert store.journal_mode() == "wal"

    def test_memory_store_has_no_wal(self):
        with TrialStore(":memory:") as store:
            assert store.journal_mode() == "memory"


#: Worker script: hammer one store with interleaved writes and reads.
#: Each worker writes its own seed range (content hashes differ), so
#: success = every row from every worker present at the end.
_HAMMER = """
import sys
sys.path.insert(0, {src!r})
from repro.orchestration.spec import TrialOutcome, TrialSpec
from repro.orchestration.store import TrialStore

worker, per_worker = int(sys.argv[1]), int(sys.argv[2])
store = TrialStore({path!r})
for i in range(per_worker):
    seed = worker * per_worker + i
    spec = TrialSpec.create("angluin", 8, seed)
    outcome = TrialOutcome(
        seed=seed, steps=100 + i, parallel_time=1.0,
        leader_count=1, distinct_states=4,
    )
    store.put(spec, outcome)
    store.record_failure(spec, attempts=1, error="transient")
    store.clear_failure(spec)
    len(store)  # interleave reads with the other writers' commits
store.close()
"""


class TestConcurrentWriters:
    def test_four_processes_hammer_one_store(self, tmp_path):
        path = str(tmp_path / "hammer.sqlite")
        TrialStore(path).close()  # pre-create so WAL is on from the start
        workers, per_worker = 4, 25
        env = dict(os.environ)
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _HAMMER.format(src=REPO_SRC, path=path),
                    str(worker),
                    str(per_worker),
                ],
                env=env,
                stderr=subprocess.PIPE,
            )
            for worker in range(workers)
        ]
        failures = []
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            if proc.returncode != 0:
                failures.append(stderr.decode())
        assert not failures, "\n".join(failures)
        with TrialStore(path, readonly=True) as store:
            assert len(store) == workers * per_worker
            assert store.failures() == []
            seeds = {row["seed"] for row in store.rows()}
            assert seeds == set(range(workers * per_worker))
