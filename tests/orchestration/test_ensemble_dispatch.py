"""The pool's ensemble dispatch path: packing, equivalence, resume.

``run_specs`` packs pending same-cell multiset trials into
:class:`EnsembleSimulator` lanes.  Because lanes are bit-identical to
solo multiset runs, the packing must be *observationally invisible*:
identical outcomes, identical store rows, resumable either way.  These
tests pin that invisibility — the property that lets ``--engine
ensemble`` share a trial store with plain multiset campaigns in both
directions.
"""

import pytest

from repro.errors import ConvergenceError
from repro.orchestration.pool import run_specs
from repro.orchestration.spec import trial_specs
from repro.orchestration.store import TrialStore


def cell(trials=6, n=48, base_seed=0, **kwargs):
    return trial_specs(
        "angluin", n, trials=trials, base_seed=base_seed,
        engine="multiset", **kwargs
    )


class TestPackedEqualsSolo:
    def test_outcomes_identical_to_solo_path(self):
        specs = cell()
        packed = run_specs(specs)  # default: packing enabled
        solo = run_specs(specs, ensemble_lanes=0)
        assert packed.outcomes == solo.outcomes
        assert packed.executed == solo.executed == len(specs)

    def test_mixed_cells_all_covered(self):
        # Two packable cells plus a group too small to pack: every trial
        # must complete through one path or the other, in spec order.
        specs = cell(6, n=48) + cell(6, n=64) + cell(2, n=32)
        report = run_specs(specs)
        assert [o.seed for o in report.outcomes] == [s.seed for s in specs]
        solo = run_specs(specs, ensemble_lanes=0)
        assert report.outcomes == solo.outcomes

    def test_packed_parallel_matches_serial(self):
        # jobs>1 shards each cell into lane chunks that run as pool
        # tasks; chunking and worker scheduling must be invisible.
        specs = cell(9, n=48) + cell(5, n=64)
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=3)
        assert serial.outcomes == parallel.outcomes

    def test_agent_specs_never_pack(self):
        # Packing is a multiset-chain equivalence; agent specs must take
        # the solo path even when they share a cell.
        specs = trial_specs("angluin", 48, trials=6, engine="agent")
        packed = run_specs(specs)
        solo = run_specs(specs, ensemble_lanes=0)
        assert packed.outcomes == solo.outcomes


class TestStoreInterchange:
    def test_rows_shared_between_packed_and_solo(self):
        specs = cell()
        with TrialStore(":memory:") as store:
            first = run_specs(specs, store=store)  # packed
            second = run_specs(specs, store=store, ensemble_lanes=0)
        assert first.executed == len(specs)
        assert second.executed == 0 and second.cached == len(specs)
        assert first.outcomes == second.outcomes

    def test_rows_shared_in_the_other_direction(self):
        specs = cell()
        with TrialStore(":memory:") as store:
            run_specs(specs[:3], store=store, ensemble_lanes=0)  # solo fill
            report = run_specs(specs, store=store)  # pack the rest
        assert report.cached == 3 and report.executed == 3

    def test_partial_resume_packs_only_the_missing(self):
        specs = cell(trials=10)
        with TrialStore(":memory:") as store:
            run_specs(specs[:4], store=store)
            resumed = run_specs(specs, store=store)
            assert resumed.cached == 4 and resumed.executed == 6
            everything = run_specs(specs, store=store)
        assert everything.cached == 10
        assert resumed.outcomes == everything.outcomes


class TestFailureSemantics:
    def test_convergence_error_names_a_seed(self):
        specs = cell(trials=6, n=64, max_steps=3)
        with pytest.raises(ConvergenceError, match="seed"):
            run_specs(specs)

    def test_finished_lanes_survive_an_abort(self):
        # A budget that lets some lanes finish but not all: the retired
        # lanes' rows must be in the store, so a retry resumes from them.
        probe = run_specs(cell(trials=6, n=64), ensemble_lanes=0)
        steps = sorted(o.steps for o in probe.outcomes)
        budget = steps[2]  # at least two lanes finish inside this budget
        specs = cell(trials=6, n=64, max_steps=budget)
        with TrialStore(":memory:") as store:
            with pytest.raises(ConvergenceError):
                run_specs(specs, store=store)
            assert len(store) >= 2  # the fast lanes were persisted

    def test_worker_chunk_failure_still_persists_its_finished_lanes(self):
        # jobs>1: the chunk runs inside a worker, which cannot stream
        # into the parent's store — so the failure travels back as a
        # marker after the chunk's completed lanes, and the parent
        # records those before re-raising.  trials=4 keeps the cell in
        # one chunk, making the persisted count deterministic.
        probe = run_specs(cell(trials=4, n=64), ensemble_lanes=0)
        steps = sorted(o.steps for o in probe.outcomes)
        budget = steps[2]  # exactly three lanes fit this budget
        specs = cell(trials=4, n=64, max_steps=budget)
        with TrialStore(":memory:") as store:
            with pytest.raises(ConvergenceError, match="seed"):
                run_specs(specs, store=store, jobs=3)
            assert len(store) == 3
