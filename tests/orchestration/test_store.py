"""Tests for repro.orchestration.store (SQLite trial cache)."""

import pytest

from repro.errors import ExperimentError
from repro.orchestration.spec import TrialOutcome, TrialSpec, trial_specs
from repro.orchestration.store import TrialStore


def outcome_for(spec: TrialSpec, steps: int = 100) -> TrialOutcome:
    return TrialOutcome(
        seed=spec.seed,
        steps=steps,
        parallel_time=steps / spec.n,
        leader_count=1,
        distinct_states=4,
    )


class TestTrialStore:
    def test_roundtrip(self):
        spec = TrialSpec.create("angluin", 8, 3)
        with TrialStore(":memory:") as store:
            assert store.get(spec) is None
            assert spec not in store
            store.put(spec, outcome_for(spec))
            assert store.get(spec) == outcome_for(spec)
            assert spec in store
            assert len(store) == 1

    def test_put_is_idempotent_by_hash(self):
        spec = TrialSpec.create("angluin", 8, 3)
        with TrialStore(":memory:") as store:
            store.put(spec, outcome_for(spec, steps=100))
            store.put(spec, outcome_for(spec, steps=100))
            assert len(store) == 1

    def test_get_many_returns_only_hits(self):
        specs = trial_specs("angluin", 8, trials=4)
        with TrialStore(":memory:") as store:
            store.put_many((spec, outcome_for(spec)) for spec in specs[:2])
            hits = store.get_many(specs)
            assert set(hits) == {spec.content_hash() for spec in specs[:2]}

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "trials.sqlite"
        spec = TrialSpec.create("pll", 64, 0, params={"variant": "full"})
        with TrialStore(path) as store:
            store.put(spec, outcome_for(spec))
        with TrialStore(path) as store:
            assert store.get(spec) == outcome_for(spec)

    def test_distinct_specs_do_not_alias(self):
        a = TrialSpec.create("angluin", 8, 0)
        b = TrialSpec.create("angluin", 8, 1)
        with TrialStore(":memory:") as store:
            store.put(a, outcome_for(a))
            assert store.get(b) is None

    def test_rejects_seed_mismatch(self):
        a = TrialSpec.create("angluin", 8, 0)
        b = TrialSpec.create("angluin", 8, 1)
        with TrialStore(":memory:") as store:
            with pytest.raises(ExperimentError):
                store.put(a, outcome_for(b))

    def test_readonly_reads_existing_store(self, tmp_path):
        path = tmp_path / "trials.sqlite"
        spec = TrialSpec.create("angluin", 8, 0)
        with TrialStore(path) as store:
            store.put(spec, outcome_for(spec))
        with TrialStore(path, readonly=True) as store:
            assert store.get(spec) == outcome_for(spec)

    def test_readonly_missing_store_raises_without_creating(self, tmp_path):
        path = tmp_path / "missing.sqlite"
        with pytest.raises(ExperimentError, match="campaign been run"):
            TrialStore(path, readonly=True)
        assert not path.exists()

    def test_readonly_rejects_non_store_file(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.sqlite"
        sqlite3.connect(path).close()  # valid sqlite file, wrong schema
        with pytest.raises(ExperimentError, match="not a trial store"):
            TrialStore(path, readonly=True)

    def test_get_many_chunks_large_batches(self):
        specs = trial_specs("angluin", 8, trials=600)
        with TrialStore(":memory:") as store:
            store.put_many((spec, outcome_for(spec)) for spec in specs)
            assert len(store.get_many(specs)) == 600

    def test_runtime_records_roundtrip(self):
        spec = TrialSpec.create("angluin", 8, 3)
        outcome = TrialOutcome(
            seed=3,
            steps=100,
            parallel_time=12.5,
            leader_count=1,
            distinct_states=4,
            duration=1.25,
            telemetry='{"engine":"agent","steps":100}',
        )
        with TrialStore(":memory:") as store:
            store.put(spec, outcome)
            loaded = store.get(spec)
        assert loaded.duration == 1.25
        assert loaded.telemetry == '{"engine":"agent","steps":100}'

    def test_rows_exposes_spec_identity_and_outcome_columns(self):
        spec = TrialSpec.create("pll", 64, 2, engine="batch")
        with TrialStore(":memory:") as store:
            store.put(spec, outcome_for(spec))
            (row,) = list(store.rows())
        assert row["protocol"] == "pll"
        assert row["n"] == 64
        assert row["seed"] == 2
        assert row["engine"] == "batch"
        assert row["steps"] == 100
        assert row["duration"] == 0.0
        assert row["telemetry"] is None
        assert row["spec_hash"] == spec.content_hash()


def make_pre_pr6_store(path):
    """A store with the original (PR 1) schema: no runtime-record columns."""
    import sqlite3

    connection = sqlite3.connect(path)
    connection.executescript(
        """
        CREATE TABLE trials (
            spec_hash       TEXT PRIMARY KEY,
            protocol        TEXT NOT NULL,
            n               INTEGER NOT NULL,
            seed            INTEGER NOT NULL,
            engine          TEXT NOT NULL,
            spec_json       TEXT NOT NULL,
            steps           INTEGER NOT NULL,
            parallel_time   REAL NOT NULL,
            leader_count    INTEGER NOT NULL,
            distinct_states INTEGER NOT NULL,
            created_at      TEXT NOT NULL DEFAULT (datetime('now'))
        );
        CREATE INDEX idx_trials_protocol_n ON trials (protocol, n);
        """
    )
    spec = TrialSpec.create("angluin", 8, 3)
    connection.execute(
        "INSERT INTO trials (spec_hash, protocol, n, seed, engine,"
        " spec_json, steps, parallel_time, leader_count, distinct_states)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (spec.content_hash(), "angluin", 8, 3, "agent", spec.to_json(),
         100, 12.5, 1, 4),
    )
    connection.commit()
    connection.close()
    return spec


class TestSchemaMigration:
    def test_writable_open_migrates_in_place(self, tmp_path):
        path = tmp_path / "old.sqlite"
        spec = make_pre_pr6_store(path)
        with TrialStore(path) as store:
            # Old rows read back with the backfill defaults ...
            outcome = store.get(spec)
            assert outcome == outcome_for(spec)
            assert outcome.duration == 0.0
            assert outcome.telemetry is None
            # ... and new rows persist full runtime records.
            fresh = TrialSpec.create("angluin", 8, 4)
            store.put(
                fresh,
                TrialOutcome(
                    seed=4, steps=50, parallel_time=6.25, leader_count=1,
                    distinct_states=4, duration=0.5, telemetry='{"a":1}',
                ),
            )
        with TrialStore(path, readonly=True) as store:
            assert store.get(fresh).telemetry == '{"a":1}'

    def test_readonly_open_tolerates_the_old_schema(self, tmp_path):
        path = tmp_path / "old.sqlite"
        spec = make_pre_pr6_store(path)
        with TrialStore(path, readonly=True) as store:
            outcome = store.get(spec)
            assert outcome.duration == 0.0
            assert outcome.telemetry is None
            assert len(store.get_many([spec])) == 1
            (row,) = list(store.rows())
            assert row["duration"] == 0.0
            assert row["telemetry"] is None

    def test_readonly_open_does_not_alter_the_schema(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.sqlite"
        make_pre_pr6_store(path)
        with TrialStore(path, readonly=True):
            pass
        columns = {
            row[1]
            for row in sqlite3.connect(path)
            .execute("PRAGMA table_info(trials)")
            .fetchall()
        }
        assert "duration" not in columns and "telemetry" not in columns

    def test_migration_is_idempotent(self, tmp_path):
        path = tmp_path / "old.sqlite"
        spec = make_pre_pr6_store(path)
        for _ in range(2):
            with TrialStore(path) as store:
                assert store.get(spec) is not None
