"""Tests for repro.orchestration.store (SQLite trial cache)."""

import pytest

from repro.errors import ExperimentError
from repro.orchestration.spec import TrialOutcome, TrialSpec, trial_specs
from repro.orchestration.store import TrialStore


def outcome_for(spec: TrialSpec, steps: int = 100) -> TrialOutcome:
    return TrialOutcome(
        seed=spec.seed,
        steps=steps,
        parallel_time=steps / spec.n,
        leader_count=1,
        distinct_states=4,
    )


class TestTrialStore:
    def test_roundtrip(self):
        spec = TrialSpec.create("angluin", 8, 3)
        with TrialStore(":memory:") as store:
            assert store.get(spec) is None
            assert spec not in store
            store.put(spec, outcome_for(spec))
            assert store.get(spec) == outcome_for(spec)
            assert spec in store
            assert len(store) == 1

    def test_put_is_idempotent_by_hash(self):
        spec = TrialSpec.create("angluin", 8, 3)
        with TrialStore(":memory:") as store:
            store.put(spec, outcome_for(spec, steps=100))
            store.put(spec, outcome_for(spec, steps=100))
            assert len(store) == 1

    def test_get_many_returns_only_hits(self):
        specs = trial_specs("angluin", 8, trials=4)
        with TrialStore(":memory:") as store:
            store.put_many((spec, outcome_for(spec)) for spec in specs[:2])
            hits = store.get_many(specs)
            assert set(hits) == {spec.content_hash() for spec in specs[:2]}

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "trials.sqlite"
        spec = TrialSpec.create("pll", 64, 0, params={"variant": "full"})
        with TrialStore(path) as store:
            store.put(spec, outcome_for(spec))
        with TrialStore(path) as store:
            assert store.get(spec) == outcome_for(spec)

    def test_distinct_specs_do_not_alias(self):
        a = TrialSpec.create("angluin", 8, 0)
        b = TrialSpec.create("angluin", 8, 1)
        with TrialStore(":memory:") as store:
            store.put(a, outcome_for(a))
            assert store.get(b) is None

    def test_rejects_seed_mismatch(self):
        a = TrialSpec.create("angluin", 8, 0)
        b = TrialSpec.create("angluin", 8, 1)
        with TrialStore(":memory:") as store:
            with pytest.raises(ExperimentError):
                store.put(a, outcome_for(b))

    def test_readonly_reads_existing_store(self, tmp_path):
        path = tmp_path / "trials.sqlite"
        spec = TrialSpec.create("angluin", 8, 0)
        with TrialStore(path) as store:
            store.put(spec, outcome_for(spec))
        with TrialStore(path, readonly=True) as store:
            assert store.get(spec) == outcome_for(spec)

    def test_readonly_missing_store_raises_without_creating(self, tmp_path):
        path = tmp_path / "missing.sqlite"
        with pytest.raises(ExperimentError, match="campaign been run"):
            TrialStore(path, readonly=True)
        assert not path.exists()

    def test_readonly_rejects_non_store_file(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.sqlite"
        sqlite3.connect(path).close()  # valid sqlite file, wrong schema
        with pytest.raises(ExperimentError, match="not a trial store"):
            TrialStore(path, readonly=True)

    def test_get_many_chunks_large_batches(self):
        specs = trial_specs("angluin", 8, trials=600)
        with TrialStore(":memory:") as store:
            store.put_many((spec, outcome_for(spec)) for spec in specs)
            assert len(store.get_many(specs)) == 600
