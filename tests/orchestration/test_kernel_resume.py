"""Stored campaigns survive the compiled-kernel switch untouched.

PR 4 changed the default transition-resolution path; these tests pin
the invariants that keep pre-PR-4 trial stores valid: spec content
hashes never mention the kernel, kernel-backed engines produce
byte-identical outcomes for the same specs, and a store written by the
cached-delta path resumes under the kernel path with zero re-execution
(and vice versa).
"""

import pytest

from repro.orchestration.pool import run_specs
from repro.orchestration.spec import TrialSpec, trial_specs
from repro.orchestration.store import TrialStore


@pytest.fixture
def store(tmp_path):
    with TrialStore(tmp_path / "trials.sqlite") as handle:
        yield handle


def specs_for(protocol="pll", n=64, trials=4, engine="multiset"):
    return trial_specs(protocol, n, trials, base_seed=0, engine=engine)


class TestHashStability:
    def test_hashes_do_not_mention_the_kernel(self):
        spec = TrialSpec.create("pll", 64, 0, engine="multiset")
        canonical = spec.to_json()
        assert "kernel" not in canonical
        assert set(spec.canonical()) == {
            "version",
            "protocol",
            "params",
            "n",
            "seed",
            "engine",
            "max_steps",
            "detector",
        }


class TestStoreResumability:
    @pytest.mark.parametrize("engine", ["multiset", "batch", "agent"])
    def test_cached_path_store_resumes_under_the_kernel(
        self, store, engine, monkeypatch
    ):
        specs = specs_for(engine=engine)
        # Populate the store exactly as a pre-PR-4 checkout would:
        # kernels disabled, classic interner+cache path.
        monkeypatch.setenv("REPRO_KERNEL", "0")
        legacy = run_specs(specs, store=store)
        assert legacy.executed == len(specs)
        monkeypatch.delenv("REPRO_KERNEL")
        # The kernel-backed runner must find every row and execute
        # nothing — resumability across the path switch.
        resumed = run_specs(specs, store=store)
        assert resumed.executed == 0
        assert resumed.cached == len(specs)
        assert resumed.outcomes == legacy.outcomes

    @pytest.mark.parametrize("engine", ["multiset", "batch"])
    def test_kernel_outcomes_match_the_cached_path(self, engine, monkeypatch):
        specs = specs_for(engine=engine)
        kernel_report = run_specs(specs)
        monkeypatch.setenv("REPRO_KERNEL", "0")
        cached_report = run_specs(specs)
        assert kernel_report.outcomes == cached_report.outcomes

    def test_kernel_path_store_resumes_under_the_cached_path(
        self, store, monkeypatch
    ):
        specs = specs_for()
        fresh = run_specs(specs, store=store)
        assert fresh.executed == len(specs)
        monkeypatch.setenv("REPRO_KERNEL", "0")
        resumed = run_specs(specs, store=store)
        assert resumed.executed == 0
        assert resumed.outcomes == fresh.outcomes

    def test_ensemble_packing_shares_rows_with_kernel_solo(self, store):
        # Same cell, deep enough to pack into ensemble lanes: rows land
        # in the same store slots the solo kernel engine would fill.
        specs = specs_for(trials=6)
        packed = run_specs(specs, store=store, ensemble_lanes=2)
        assert packed.executed == len(specs)
        solo = run_specs(specs, store=store, ensemble_lanes=0)
        assert solo.executed == 0
        assert solo.outcomes == packed.outcomes
