"""Tests for TTL work claims (lease manager + heartbeat renewal)."""

import pytest

from repro.errors import ExperimentError
from repro.orchestration.backend.leases import (
    DEFAULT_LEASE_TTL,
    LeaseManager,
    LeaseRenewer,
)
from repro.telemetry.heartbeat import (
    add_beat_listener,
    beat_listeners,
    make_heartbeat,
    remove_beat_listener,
)


class Clock:
    """A settable clock so expiry is deterministic, not slept for."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def advance(self, secs: float) -> None:
        self.now += secs

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return Clock()


def manager_for(tmp_path, worker, clock, ttl=10.0):
    return LeaseManager(
        tmp_path / "leases.sqlite", worker, ttl_secs=ttl, clock=clock
    )


class TestClaims:
    def test_claim_wins_unclaimed_hashes(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as manager:
            assert manager.claim(["h1", "h2"]) == ["h1", "h2"]

    def test_limit_bounds_a_round(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as manager:
            assert manager.claim(["h1", "h2", "h3"], limit=2) == ["h1", "h2"]

    def test_live_lease_blocks_other_workers(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a, manager_for(
            tmp_path, "b", clock
        ) as b:
            assert a.claim(["h1"]) == ["h1"]
            assert b.claim(["h1"]) == []

    def test_expired_lease_is_reclaimable(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a, manager_for(
            tmp_path, "b", clock
        ) as b:
            a.claim(["h1"])
            clock.advance(11)
            assert b.claim(["h1"]) == ["h1"]
            assert b.holder("h1").worker == "b"

    def test_own_live_lease_reclaims_as_renewal(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a:
            a.claim(["h1"])
            clock.advance(5)
            assert a.claim(["h1"]) == ["h1"]
            assert a.holder("h1").remaining(clock()) == 10.0

    def test_empty_worker_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="worker id"):
            LeaseManager(tmp_path / "l.sqlite", "")

    def test_non_positive_ttl_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="ttl"):
            LeaseManager(tmp_path / "l.sqlite", "a", ttl_secs=0)


class TestRenewRelease:
    def test_renew_extends_live_leases_only(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a:
            a.claim(["h1", "h2"])
            clock.advance(11)
            a.claim(["h3"])
            assert a.renew() == 1  # h1/h2 already expired
            assert a.holder("h3").renewals == 1

    def test_release_is_worker_scoped(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a, manager_for(
            tmp_path, "b", clock
        ) as b:
            a.claim(["h1"])
            b.claim(["h2"])
            b.release(["h1", "h2"])  # must not touch a's lease
            assert a.holder("h1") is not None
            assert a.holder("h2") is None

    def test_release_all(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a:
            a.claim(["h1", "h2"])
            a.release_all()
            assert a.live() == []

    def test_next_expiry_and_sweep(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock) as a:
            a.claim(["h1"])
            clock.advance(4)
            assert a.next_expiry() == 6.0
            clock.advance(7)
            assert a.next_expiry() is None
            assert a.sweep_expired() == 1


class TestRenewer:
    def test_cadence_defaults_to_quarter_ttl(self, tmp_path, clock):
        with manager_for(tmp_path, "a", clock, ttl=120.0) as manager:
            renewer = LeaseRenewer(manager)
            assert renewer.interval_secs == 30.0

    def test_renews_after_interval(self, tmp_path, clock, monkeypatch):
        ticks = [0.0]
        monkeypatch.setattr(
            "repro.orchestration.backend.leases.time.monotonic",
            lambda: ticks[0],
        )
        with manager_for(tmp_path, "a", clock) as manager:
            manager.claim(["h1"])
            renewer = LeaseRenewer(manager, interval_secs=5.0)
            renewer.maybe_renew()
            assert renewer.renewals == 0  # inside the interval
            ticks[0] += 6.0
            renewer.maybe_renew()
            assert renewer.renewals == 1
            assert manager.holder("h1").renewals == 1

    def test_rides_the_heartbeat(self, tmp_path, clock, monkeypatch):
        """Mid-trial renewal: the renewer registered as a beat listener
        fires from the engines' heartbeat poll, even with telemetry off."""
        ticks = [0.0]
        monkeypatch.setattr(
            "repro.orchestration.backend.leases.time.monotonic",
            lambda: ticks[0],
        )
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        with manager_for(tmp_path, "a", clock) as manager:
            manager.claim(["h1"])
            renewer = LeaseRenewer(manager, interval_secs=0.0)
            add_beat_listener(renewer)
            try:
                heartbeat = make_heartbeat(
                    engine="batch",
                    protocol="angluin",
                    n=8,
                    seed=0,
                    max_steps=None,
                )
                # Listener registered => a heartbeat exists without the
                # telemetry switch, and it carries no sink.
                assert heartbeat is not None
                assert heartbeat.sink is None
                heartbeat.interval = 0.0
                ticks[0] += 1.0
                heartbeat.maybe_beat(steps=100)
                assert renewer.renewals >= 1
            finally:
                remove_beat_listener(renewer)
            assert renewer not in beat_listeners()

    def test_no_listeners_no_telemetry_no_heartbeat(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert beat_listeners() == ()
        assert (
            make_heartbeat(
                engine="batch",
                protocol="angluin",
                n=8,
                seed=0,
                max_steps=None,
            )
            is None
        )

    def test_failing_listener_never_breaks_a_beat(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")

        def explode(event):
            raise RuntimeError("lease file gone")

        add_beat_listener(explode)
        try:
            heartbeat = make_heartbeat(
                engine="batch",
                protocol="angluin",
                n=8,
                seed=0,
                max_steps=None,
            )
            heartbeat.interval = 0.0
            heartbeat.maybe_beat(steps=1)
            heartbeat.maybe_beat(steps=2)
        finally:
            remove_beat_listener(explode)
        captured = capsys.readouterr()
        assert captured.err.count("heartbeat listener failed") == 1


class TestDefaults:
    def test_default_ttl(self):
        assert DEFAULT_LEASE_TTL == 120.0
