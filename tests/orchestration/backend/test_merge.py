"""Merge determinism: shard order must never change a canonical byte."""

import hashlib
import shutil
import sqlite3

import pytest

from repro.errors import ExperimentError
from repro.orchestration.backend.merge import merge_store
from repro.orchestration.backend.sharded import (
    CANONICAL_NAME,
    ShardedStore,
    shard_name,
    shard_paths,
)
from repro.orchestration.spec import TrialOutcome, TrialSpec
from repro.orchestration.store import TrialStore


def spec_for(seed: int, n: int = 8) -> TrialSpec:
    return TrialSpec.create("angluin", n, seed)


def outcome_for(spec: TrialSpec, steps: int = 100, **extra) -> TrialOutcome:
    return TrialOutcome(
        seed=spec.seed,
        steps=steps,
        parallel_time=steps / spec.n,
        leader_count=1,
        distinct_states=4,
        **extra,
    )


def checksum(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def build_shard(root, worker, items, failures=()):
    with ShardedStore(root, worker=worker) as store:
        for spec, outcome in items:
            store.put(spec, outcome)
        for spec, attempts, error, quarantined in failures:
            store.record_failure(
                spec, attempts=attempts, error=error, quarantined=quarantined
            )


def swap_shards(src_root, dst_root, name_a, name_b):
    """Copy ``src_root``'s shards into ``dst_root`` with the two shard
    names exchanged — identical contents, opposite enumeration order."""
    dst_root.mkdir()
    mapping = {name_a: name_b, name_b: name_a}
    for shard in shard_paths(src_root):
        shutil.copy(shard, dst_root / mapping.get(shard.name, shard.name))


class TestByteIdentity:
    def test_opposite_order_merges_are_byte_identical(self, tmp_path):
        """The satellite guarantee: same rows fed in opposite member
        order produce byte-identical canonical files — including the
        failures ledger and every outcome column (telemetry, phases,
        faults, scheduler)."""
        root_a = tmp_path / "a"
        s1, s2, s3, s4 = (spec_for(seed) for seed in (1, 2, 3, 4))
        rich = outcome_for(
            s1,
            telemetry='{"stage": "x"}',
            phases='{"phase": [1, 2]}',
            faults='{"events": []}',
            scheduler='{"kind": "weighted"}',
        )
        build_shard(
            root_a,
            "w1",
            [(s1, rich), (s3, outcome_for(s3))],
            failures=[(s4, 2, "boom", True)],
        )
        build_shard(
            root_a,
            "w2",
            [(s2, outcome_for(s2)), (s3, outcome_for(s3))],
            failures=[(s4, 1, "earlier boom", False)],
        )
        root_b = tmp_path / "b"
        swap_shards(root_a, root_b, shard_name("w1"), shard_name("w2"))

        report_a = merge_store(root_a)
        report_b = merge_store(root_b)
        assert report_a.trials == report_b.trials == 3
        assert report_a.failures == report_b.failures == 1
        assert checksum(root_a / CANONICAL_NAME) == checksum(
            root_b / CANONICAL_NAME
        )
        # The merged canonical preserves every outcome column.
        with TrialStore(root_a / CANONICAL_NAME, readonly=True) as store:
            merged = store.get(s1)
            assert merged == rich
            assert merged.telemetry == rich.telemetry
            assert merged.phases == rich.phases
            assert merged.faults == rich.faults
            assert merged.scheduler == rich.scheduler
            (failure,) = store.failures()
            assert failure["attempts"] == 2
            assert failure["quarantined"] is True

    def test_merge_is_idempotent_bytewise(self, tmp_path):
        root = tmp_path / "root"
        s1, s2 = spec_for(1), spec_for(2)
        build_shard(root, "w1", [(s1, outcome_for(s1))])
        build_shard(root, "w2", [(s2, outcome_for(s2))])
        merge_store(root, keep_shards=True)
        first = checksum(root / CANONICAL_NAME)
        merge_store(root, keep_shards=True)
        assert checksum(root / CANONICAL_NAME) == first

    def test_duplicate_with_divergent_created_at_picks_earliest(
        self, tmp_path
    ):
        root = tmp_path / "root"
        s1 = spec_for(1)
        build_shard(root, "w1", [(s1, outcome_for(s1))])
        build_shard(root, "w2", [(s1, outcome_for(s1))])
        # Backdate w2's copy: it must win regardless of member order.
        shard = root / shard_name("w2")
        connection = sqlite3.connect(shard)
        with connection:
            connection.execute(
                "UPDATE trials SET created_at = '2000-01-01 00:00:00',"
                " steps = 42"
            )
        # Checkpoint the WAL so the bare-file copy below sees the update.
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        connection.close()
        root_b = tmp_path / "b"
        swap_shards(root, root_b, shard_name("w1"), shard_name("w2"))
        report = merge_store(root)
        merge_store(root_b)
        assert report.duplicate_trials == 1
        assert checksum(root / CANONICAL_NAME) == checksum(
            root_b / CANONICAL_NAME
        )
        with TrialStore(root / CANONICAL_NAME, readonly=True) as store:
            assert store.get(s1).steps == 42


class TestFederation:
    def test_trial_row_supersedes_failure_across_shards(self, tmp_path):
        root = tmp_path / "root"
        s1 = spec_for(1)
        build_shard(root, "w1", [], failures=[(s1, 3, "boom", True)])
        build_shard(root, "w2", [(s1, outcome_for(s1))])
        report = merge_store(root)
        assert report.superseded_failures == 1
        assert report.failures == 0
        with TrialStore(root / CANONICAL_NAME, readonly=True) as store:
            assert store.failures() == []
            assert len(store) == 1

    def test_existing_canonical_is_a_member(self, tmp_path):
        root = tmp_path / "root"
        s1, s2 = spec_for(1), spec_for(2)
        with ShardedStore(root) as coordinator:
            coordinator.put(s1, outcome_for(s1))
        build_shard(root, "w1", [(s2, outcome_for(s2))])
        report = merge_store(root)
        assert report.trials == 2
        assert CANONICAL_NAME in report.members


class TestHousekeeping:
    def test_shards_removed_by_default(self, tmp_path):
        root = tmp_path / "root"
        build_shard(root, "w1", [(spec_for(1), outcome_for(spec_for(1)))])
        report = merge_store(root)
        assert shard_paths(root) == []
        assert report.removed_shards == (shard_name("w1"),)

    def test_keep_shards_leaves_them(self, tmp_path):
        root = tmp_path / "root"
        build_shard(root, "w1", [(spec_for(1), outcome_for(spec_for(1)))])
        report = merge_store(root, keep_shards=True)
        assert [p.name for p in shard_paths(root)] == [shard_name("w1")]
        assert report.removed_shards == ()

    def test_no_wal_sidecars_after_merge(self, tmp_path):
        root = tmp_path / "root"
        build_shard(root, "w1", [(spec_for(1), outcome_for(spec_for(1)))])
        merge_store(root)
        leftovers = [
            p.name
            for p in root.iterdir()
            if p.name.endswith(("-wal", "-shm", ".merge-tmp"))
        ]
        assert leftovers == []

    def test_merged_canonical_opens_as_plain_store(self, tmp_path):
        root = tmp_path / "root"
        s1 = spec_for(1)
        build_shard(root, "w1", [(s1, outcome_for(s1))])
        merge_store(root)
        with TrialStore(root / CANONICAL_NAME) as store:
            assert store.get(s1) == outcome_for(s1)
            assert store.journal_mode() == "wal"  # writable open re-arms

    def test_empty_root_refuses(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        with pytest.raises(ExperimentError, match="nothing to merge"):
            merge_store(root)

    def test_non_directory_refuses(self, tmp_path):
        with pytest.raises(ExperimentError, match="not a sharded store"):
            merge_store(tmp_path / "absent")
