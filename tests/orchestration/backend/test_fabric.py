"""The distributed campaign fabric: worker loop, crash reclaim, chaos.

The chaos test is the PR's acceptance spine: SIGKILL a worker mid-cell,
watch its leases expire, have a survivor reclaim and finish, and prove
the merged canonical store is row-identical (on the deterministic
columns) to a single-worker reference run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.faults.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_SECS_ENV,
    TrialCheckpointer,
)
from repro.orchestration.backend.fabric import FabricReport, run_sharded_campaign
from repro.orchestration.backend.leases import LeaseManager
from repro.orchestration.backend.merge import merge_store
from repro.orchestration.backend.sharded import CANONICAL_NAME, ShardedStore
from repro.orchestration.pool import execute_trial, run_specs
from repro.orchestration.spec import TrialSpec
from repro.orchestration.store import TrialStore

REPO_SRC = str(Path(__file__).resolve().parents[3] / "src")

#: Outcome columns that are deterministic functions of the spec — the
#: ones a distributed run must reproduce exactly.  Wall-clock columns
#: (duration, created_at) legitimately differ between runs.
DETERMINISTIC_COLUMNS = (
    "spec_hash",
    "protocol",
    "n",
    "seed",
    "engine",
    "spec_json",
    "steps",
    "parallel_time",
    "leader_count",
    "distinct_states",
)


class SimulatedKill(BaseException):
    """SIGKILL minus the process teardown (BaseException, so neither
    the retry machinery nor quarantine capture can swallow it)."""


def specs_for(count, n=16):
    return [TrialSpec.create("angluin", n, seed) for seed in range(count)]


def doomed_spec(seed=100):
    """Deterministic convergence failure: 10 steps stabilizes nothing."""
    return TrialSpec.create("angluin", 16, seed, max_steps=10)


def deterministic_rows(store):
    return [
        tuple(row[column] for column in DETERMINISTIC_COLUMNS)
        for row in store.rows()
    ]


class TestWorkerLoop:
    def test_single_worker_completes_everything(self, tmp_path):
        specs = specs_for(5)
        report = run_sharded_campaign(
            specs, tmp_path / "root", worker="w1", lease_ttl=30
        )
        assert isinstance(report, FabricReport)
        assert report.executed == 5
        assert report.cached == 0
        with ShardedStore(tmp_path / "root", readonly=True) as view:
            assert len(view) == 5
            assert view.live_leases() == []  # released on the way out

    def test_second_worker_sees_cached_campaign(self, tmp_path):
        specs = specs_for(4)
        run_sharded_campaign(specs, tmp_path / "root", worker="w1", lease_ttl=30)
        report = run_sharded_campaign(
            specs, tmp_path / "root", worker="w2", lease_ttl=30
        )
        assert report.executed == 0
        assert report.cached == 4
        assert report.rounds == 0

    def test_quarantined_cells_do_not_block_termination(self, tmp_path):
        specs = specs_for(2) + [doomed_spec()]
        report = run_sharded_campaign(
            specs, tmp_path / "root", worker="w1", lease_ttl=30, retries=0
        )
        assert report.executed == 2
        assert report.quarantined == 1
        # A second worker must also terminate without re-running poison.
        report2 = run_sharded_campaign(
            specs, tmp_path / "root", worker="w2", lease_ttl=30, retries=0
        )
        assert report2.executed == 0
        assert report2.quarantined == 1

    def test_starved_worker_waits_then_takes_over_expired_lease(
        self, tmp_path
    ):
        (spec,) = specs_for(1)
        root = tmp_path / "root"
        root.mkdir()
        # A "crashed" sibling: claims the only cell, never renews.
        dead = LeaseManager(root / "leases.sqlite", "dead", ttl_secs=0.2)
        dead.claim([spec.content_hash()])
        dead.close()
        sleeps = []

        def sleep(secs):
            sleeps.append(secs)
            time.sleep(min(secs, 0.25))

        report = run_sharded_campaign(
            [spec], root, worker="survivor", lease_ttl=30, sleep=sleep
        )
        assert report.starved_rounds >= 1
        assert report.reclaimed == 1
        assert report.executed == 1
        assert sleeps  # it actually waited for the expiry

    def test_rejects_empty_worker(self, tmp_path):
        with pytest.raises(ExperimentError, match="worker"):
            run_sharded_campaign(specs_for(1), tmp_path / "root", worker="")

    def test_rejects_bad_claim_chunk(self, tmp_path):
        with pytest.raises(ExperimentError, match="claim chunk"):
            run_sharded_campaign(
                specs_for(1), tmp_path / "root", worker="w1", claim_chunk=0
            )


class TestCheckpointComposition:
    def test_reclaimed_trial_resumes_from_checkpoint(
        self, monkeypatch, tmp_path
    ):
        """The tentpole composition: a worker dies mid-trial (after a
        checkpoint), its lease is released/expired, and the reclaiming
        worker's engine resumes from the checkpoint — finishing with the
        bit-identical outcome the uninterrupted run produces."""
        spec = TrialSpec.create("pll", 256, 0, engine="batch")
        baseline = execute_trial(spec)

        ckpt_dir = tmp_path / "ckpt"
        monkeypatch.setenv(CHECKPOINT_SECS_ENV, "0")
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(ckpt_dir))
        root = tmp_path / "root"

        original_save = TrialCheckpointer.save
        state = {"saves": 0}

        def killing_save(self, sim):
            original_save(self, sim)
            state["saves"] += 1
            if state["saves"] == 2:
                raise SimulatedKill

        monkeypatch.setattr(TrialCheckpointer, "save", killing_save)
        with pytest.raises(SimulatedKill):
            run_sharded_campaign([spec], root, worker="victim", lease_ttl=30)
        checkpoint = ckpt_dir / f"{spec.content_hash()}.ckpt"
        assert checkpoint.exists()

        monkeypatch.setattr(TrialCheckpointer, "save", original_save)
        report = run_sharded_campaign(
            [spec], root, worker="survivor", lease_ttl=30
        )
        assert report.executed == 1
        with ShardedStore(root, readonly=True) as view:
            outcome = view.get(spec)
        assert outcome.steps == baseline.steps
        assert outcome.leader_count == baseline.leader_count
        assert outcome.parallel_time == baseline.parallel_time
        assert not checkpoint.exists()  # cleared on completion


#: Victim worker: join the fabric, SIGKILL own process after the third
#: freshly executed trial — mid-campaign, leases still held.
_VICTIM = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.orchestration.backend.fabric import run_sharded_campaign
from repro.orchestration.spec import TrialSpec

specs = [TrialSpec.create("angluin", 16, seed) for seed in range({count})]
fresh = [0]

def kill_after_three(done, total, outcome):
    if outcome is None:
        return
    fresh[0] += 1
    if fresh[0] == 3:
        os.kill(os.getpid(), signal.SIGKILL)

run_sharded_campaign(
    specs, {root!r}, worker="victim", lease_ttl=2.0,
    claim_chunk=4, progress=kill_after_three,
)
"""


class TestChaos:
    def test_sigkill_reclaim_and_row_identical_merge(self, tmp_path):
        count = 10
        specs = specs_for(count)

        # Single-worker reference: jobs=1 into a plain single-file store.
        reference_path = tmp_path / "reference.sqlite"
        with TrialStore(reference_path) as reference:
            run_specs(specs, jobs=1, store=reference)
            expected = deterministic_rows(reference)
        assert len(expected) == count

        root = tmp_path / "root"
        victim = subprocess.run(
            [sys.executable, "-c", _VICTIM.format(
                src=REPO_SRC, count=count, root=str(root)
            )],
            env=dict(os.environ),
            timeout=120,
        )
        assert victim.returncode == -signal.SIGKILL

        # The victim died holding leases; at least one trial is durable
        # in its shard and at least one cell is still unfinished.
        with ShardedStore(root, readonly=True) as view:
            survivors_todo = count - len(view)
            assert 3 <= len(view) < count
        assert survivors_todo >= 1

        # Survivor waits out the 2 s TTL, reclaims, finishes the grid.
        report = run_sharded_campaign(
            specs, root, worker="survivor", lease_ttl=2.0
        )
        assert report.executed == survivors_todo
        assert report.executed + report.cached == count

        merge_report = merge_store(root)
        assert merge_report.trials == count
        with TrialStore(root / CANONICAL_NAME, readonly=True) as merged:
            assert deterministic_rows(merged) == expected
            assert merged.failures() == []

    def test_double_executed_spec_yields_one_canonical_row(self, tmp_path):
        """Duplicate execution (the lease-expiry race) is harmless by
        construction: both workers run the same spec, the merge keeps
        one row, and it matches the single-run reference."""
        (spec,) = specs_for(1)
        root = tmp_path / "root"
        # Bypass the federated cache (which would normally dedupe): both
        # workers really execute the spec, as happens when a lease
        # expires under a slow-but-alive worker mid-trial.
        for worker in ("w1", "w2"):
            with ShardedStore(root, worker=worker) as store:
                store.put(spec, execute_trial(spec))
        report = merge_store(root)
        assert report.trials == 1
        assert report.duplicate_trials == 1
        with TrialStore(root / CANONICAL_NAME, readonly=True) as merged:
            with TrialStore(tmp_path / "ref.sqlite") as reference:
                run_specs([spec], store=reference)
                assert deterministic_rows(merged) == deterministic_rows(
                    reference
                )
