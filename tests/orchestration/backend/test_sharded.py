"""Tests for the sharded store backend (federated multi-writer reads)."""

import pytest

from repro.errors import ExperimentError
from repro.orchestration.backend import is_sharded_root, open_store
from repro.orchestration.backend.sharded import (
    CANONICAL_NAME,
    ShardedStore,
    shard_name,
    shard_paths,
)
from repro.orchestration.spec import TrialOutcome, TrialSpec
from repro.orchestration.store import TrialStore


def spec_for(seed: int, n: int = 8) -> TrialSpec:
    return TrialSpec.create("angluin", n, seed)


def outcome_for(spec: TrialSpec, steps: int = 100) -> TrialOutcome:
    return TrialOutcome(
        seed=spec.seed,
        steps=steps,
        parallel_time=steps / spec.n,
        leader_count=1,
        distinct_states=4,
    )


class TestOpenStore:
    def test_file_path_opens_single_file_backend(self, tmp_path):
        path = tmp_path / "t.sqlite"
        with open_store(path) as store:
            assert isinstance(store, TrialStore)
        assert not is_sharded_root(path)

    def test_directory_opens_sharded_backend(self, tmp_path):
        root = tmp_path / "shards"
        root.mkdir()
        with open_store(root) as store:
            assert isinstance(store, ShardedStore)
        assert is_sharded_root(root)

    def test_worker_forces_sharded_backend(self, tmp_path):
        root = tmp_path / "fresh"
        with open_store(root, worker="w1") as store:
            assert isinstance(store, ShardedStore)
            assert store.worker == "w1"
        assert root.is_dir()


class TestShardedStoreModes:
    def test_worker_writes_land_in_private_shard(self, tmp_path):
        root = tmp_path / "shards"
        spec = spec_for(1)
        with ShardedStore(root, worker="w1") as store:
            store.put(spec, outcome_for(spec))
        assert (root / shard_name("w1")).exists()
        assert not (root / CANONICAL_NAME).exists()
        with TrialStore(root / shard_name("w1"), readonly=True) as shard:
            assert len(shard) == 1

    def test_coordinator_writes_land_in_canonical(self, tmp_path):
        root = tmp_path / "shards"
        spec = spec_for(1)
        with ShardedStore(root) as store:
            store.put(spec, outcome_for(spec))
        assert (root / CANONICAL_NAME).exists()
        assert shard_paths(root) == []

    def test_rejects_unsafe_worker_id(self, tmp_path):
        with pytest.raises(ExperimentError, match="filename-safe"):
            ShardedStore(tmp_path / "s", worker="../evil")

    def test_rejects_readonly_worker(self, tmp_path):
        with pytest.raises(ExperimentError, match="readonly"):
            ShardedStore(tmp_path / "s", worker="w1", readonly=True)

    def test_readonly_missing_root_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no such directory"):
            ShardedStore(tmp_path / "absent", readonly=True)

    def test_file_path_rejected(self, tmp_path):
        path = tmp_path / "t.sqlite"
        TrialStore(path).close()
        with pytest.raises(ExperimentError, match="regular file"):
            ShardedStore(path)

    def test_readonly_store_rejects_writes(self, tmp_path):
        root = tmp_path / "shards"
        root.mkdir()
        spec = spec_for(1)
        with ShardedStore(root, readonly=True) as store:
            with pytest.raises(ExperimentError, match="readonly"):
                store.put(spec, outcome_for(spec))


class TestFederatedReads:
    def test_reads_union_all_shards_and_canonical(self, tmp_path):
        root = tmp_path / "shards"
        s1, s2, s3 = spec_for(1), spec_for(2), spec_for(3)
        with ShardedStore(root, worker="w1") as w1:
            w1.put(s1, outcome_for(s1))
        with ShardedStore(root, worker="w2") as w2:
            w2.put(s2, outcome_for(s2))
        with ShardedStore(root) as coordinator:  # canonical
            coordinator.put(s3, outcome_for(s3))
        with ShardedStore(root, readonly=True) as view:
            assert len(view) == 3
            assert view.get(s1) == outcome_for(s1)
            assert view.get(s2) == outcome_for(s2)
            assert view.get(s3) == outcome_for(s3)
            assert {r["seed"] for r in view.rows()} == {1, 2, 3}

    def test_worker_sees_sibling_rows(self, tmp_path):
        root = tmp_path / "shards"
        s1 = spec_for(1)
        with ShardedStore(root, worker="w1") as w1:
            w1.put(s1, outcome_for(s1))
            with ShardedStore(root, worker="w2") as w2:
                assert w2.get(s1) == outcome_for(s1)
                assert s1 in w2

    def test_new_shards_appear_between_reads(self, tmp_path):
        root = tmp_path / "shards"
        s1, s2 = spec_for(1), spec_for(2)
        with ShardedStore(root, readonly=False) as view:
            with ShardedStore(root, worker="w1") as w1:
                w1.put(s1, outcome_for(s1))
            assert len(view) == 1
            # A second worker joins after the first federated read.
            with ShardedStore(root, worker="w2") as w2:
                w2.put(s2, outcome_for(s2))
            assert len(view) == 2

    def test_duplicate_rows_resolve_identically(self, tmp_path):
        root = tmp_path / "shards"
        s1 = spec_for(1)
        with ShardedStore(root, worker="w1") as w1:
            w1.put(s1, outcome_for(s1))
        with ShardedStore(root, worker="w2") as w2:
            w2.put(s1, outcome_for(s1))
        with ShardedStore(root, readonly=True) as view:
            assert len(view) == 1
            assert [r["seed"] for r in view.rows()] == [1]

    def test_rows_sorted_like_single_store(self, tmp_path):
        root = tmp_path / "shards"
        specs = [spec_for(seed) for seed in (3, 1, 2)]
        for worker, spec in zip(("w1", "w2", "w3"), specs):
            with ShardedStore(root, worker=worker) as store:
                store.put(spec, outcome_for(spec))
        with ShardedStore(root, readonly=True) as view:
            assert [r["seed"] for r in view.rows()] == [1, 2, 3]


class TestFederatedFailures:
    def test_trial_row_anywhere_wins_over_failure(self, tmp_path):
        root = tmp_path / "shards"
        s1 = spec_for(1)
        with ShardedStore(root, worker="w1") as w1:
            w1.record_failure(s1, attempts=2, error="boom")
        with ShardedStore(root, worker="w2") as w2:
            w2.put(s1, outcome_for(s1))
        with ShardedStore(root, readonly=True) as view:
            assert view.failures() == []

    def test_most_failed_duplicate_wins(self, tmp_path):
        root = tmp_path / "shards"
        s1 = spec_for(1)
        with ShardedStore(root, worker="w1") as w1:
            w1.record_failure(s1, attempts=1, error="first")
        with ShardedStore(root, worker="w2") as w2:
            w2.record_failure(s1, attempts=3, error="third", quarantined=True)
        with ShardedStore(root, readonly=True) as view:
            (row,) = view.failures()
            assert row["attempts"] == 3
            assert row["quarantined"] is True


class TestGracefulDegradation:
    def test_coordinator_spills_when_canonical_unopenable(self, tmp_path):
        root = tmp_path / "shards"
        root.mkdir()
        # A directory squatting on the canonical path makes every open
        # fail — the worst case of an unreachable canonical store.
        (root / CANONICAL_NAME).mkdir()
        spec = spec_for(1)
        with ShardedStore(root) as store:
            store.put(spec, outcome_for(spec))
            assert store.get(spec) == outcome_for(spec)
        spill = [p for p in shard_paths(root) if "spill" in p.name]
        assert len(spill) == 1
        with TrialStore(spill[0], readonly=True) as shard:
            assert len(shard) == 1

    def test_reads_survive_unreadable_canonical(self, tmp_path):
        root = tmp_path / "shards"
        root.mkdir()
        (root / CANONICAL_NAME).mkdir()
        s1 = spec_for(1)
        with ShardedStore(root, worker="w1") as w1:
            w1.put(s1, outcome_for(s1))
        with ShardedStore(root, readonly=True) as view:
            assert len(view) == 1


class TestCoverage:
    def test_shard_coverage_counts_scope(self, tmp_path):
        root = tmp_path / "shards"
        s1, s2 = spec_for(1), spec_for(2)
        with ShardedStore(root, worker="w1") as w1:
            w1.put(s1, outcome_for(s1))
            w1.put(s2, outcome_for(s2))
        with ShardedStore(root, readonly=True) as view:
            (cov,) = view.shard_coverage({s1.content_hash()})
            assert cov.name == shard_name("w1")
            assert cov.rows == 2
            assert cov.in_scope == 1

    def test_live_leases_empty_without_lease_file(self, tmp_path):
        root = tmp_path / "shards"
        root.mkdir()
        with ShardedStore(root, readonly=True) as view:
            assert view.live_leases() == []

    def test_lease_manager_requires_worker_mode(self, tmp_path):
        root = tmp_path / "shards"
        root.mkdir()
        with ShardedStore(root, readonly=True) as view:
            with pytest.raises(ExperimentError, match="worker mode"):
                view.lease_manager()
