"""Tests for repro.orchestration.pool (serial fast path + worker farm)."""

import pytest

from repro.engine.superbatch import SuperBatchSimulator
from repro.errors import ConvergenceError, ExperimentError
from repro.orchestration.pool import build_simulator, execute_trial, run_specs
from repro.orchestration.spec import TrialSpec, trial_specs
from repro.orchestration.store import TrialStore
from repro.protocols.angluin import AngluinProtocol


class TestExecuteTrial:
    def test_runs_to_stabilization(self):
        outcome = execute_trial(TrialSpec.create("angluin", 8, 3))
        assert outcome.seed == 3
        assert outcome.leader_count == 1
        assert outcome.parallel_time == pytest.approx(outcome.steps / 8)

    def test_convergence_error_names_the_seed(self):
        spec = TrialSpec.create("angluin", 16, 9, max_steps=5)
        with pytest.raises(ConvergenceError, match="seed 9"):
            execute_trial(spec)


class TestBuildSimulator:
    def test_superbatch_engine_builds_and_runs(self):
        sim = build_simulator(
            AngluinProtocol(), 64, seed=3, engine="superbatch"
        )
        assert isinstance(sim, SuperBatchSimulator)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_superbatch_trials_execute_declaratively(self):
        outcome = execute_trial(
            TrialSpec.create("angluin", 48, 7, engine="superbatch")
        )
        assert outcome.seed == 7
        assert outcome.leader_count == 1

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ExperimentError, match="superbatch"):
            build_simulator(AngluinProtocol(), 64, seed=0, engine="warp")


class TestRunSpecs:
    def test_preserves_spec_order(self):
        specs = trial_specs("angluin", 8, trials=4, base_seed=2)
        report = run_specs(specs)
        assert [o.seed for o in report.outcomes] == [2, 3, 4, 5]
        assert report.executed == 4 and report.cached == 0

    def test_parallel_matches_serial(self):
        specs = trial_specs("angluin", 8, trials=6) + trial_specs(
            "angluin", 12, trials=6
        )
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=4)
        assert serial.outcomes == parallel.outcomes

    def test_store_turns_reruns_into_cache_hits(self):
        specs = trial_specs("angluin", 8, trials=3)
        with TrialStore(":memory:") as store:
            first = run_specs(specs, store=store)
            second = run_specs(specs, store=store)
        assert first.executed == 3
        assert second.executed == 0 and second.cached == 3
        assert first.outcomes == second.outcomes

    def test_partial_cache_executes_only_missing(self):
        specs = trial_specs("angluin", 8, trials=4)
        with TrialStore(":memory:") as store:
            run_specs(specs[:2], store=store)
            report = run_specs(specs, store=store)
        assert report.cached == 2 and report.executed == 2

    def test_worker_convergence_error_propagates_with_seed(self):
        specs = trial_specs("angluin", 16, trials=4, max_steps=5)
        with pytest.raises(ConvergenceError, match="seed"):
            run_specs(specs, jobs=2)

    def test_failed_batch_keeps_completed_trials_in_store(self):
        good = trial_specs("angluin", 8, trials=2)
        bad = trial_specs("angluin", 16, trials=1, max_steps=5)
        with TrialStore(":memory:") as store:
            with pytest.raises(ConvergenceError):
                run_specs(good + bad, jobs=1, store=store)
            # The two completed trials survived the abort: resume skips them.
            assert run_specs(good, store=store).executed == 0

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ExperimentError):
            run_specs(trial_specs("angluin", 8, trials=1), jobs=0)

    def test_progress_reports_cached_and_fresh(self):
        specs = trial_specs("angluin", 8, trials=3)
        calls = []
        with TrialStore(":memory:") as store:
            run_specs(specs[:1], store=store)
            run_specs(
                specs,
                store=store,
                progress=lambda done, total, outcome: calls.append(
                    (done, total, outcome is None)
                ),
            )
        assert calls[0] == (1, 3, True)  # cached batch reported up front
        assert calls[-1] == (3, 3, False)
