"""Tests for repro.orchestration.registry — every builder, round-tripped.

Campaigns identify protocols by registry name, so every registered
builder must (a) build a live protocol and (b) survive the spec
normalization pipeline: ``TrialSpec.create`` canonicalizes its params,
the JSON form round-trips losslessly, and the content hash is stable.
A builder that breaks any of these would fail inside a worker process
at campaign time; these tests fail it at review time instead.
"""

import pytest

from repro.engine.protocol import Protocol
from repro.errors import ExperimentError
from repro.orchestration.registry import (
    build_protocol,
    canonical_params,
    protocol_names,
    register_protocol,
)
from repro.orchestration.spec import TrialSpec


class TestEveryRegisteredBuilder:
    N = 16

    def test_registry_is_nonempty_and_sorted(self):
        names = protocol_names()
        assert names == sorted(names)
        assert "pll" in names and "angluin" in names

    def test_new_sweep_protocols_are_registered(self):
        names = protocol_names()
        for name in (
            "approximate-majority",
            "exact-majority",
            "size-estimation",
            "countup-timer",
        ):
            assert name in names

    @pytest.mark.parametrize("name", protocol_names())
    def test_builder_builds_a_protocol(self, name):
        protocol = build_protocol(name, self.N)
        assert isinstance(protocol, Protocol)
        assert protocol.initial_state() is not None

    @pytest.mark.parametrize("name", protocol_names())
    def test_default_params_canonicalize_to_empty(self, name):
        assert canonical_params(name, {}) == {}
        assert canonical_params(name, None) == {}

    @pytest.mark.parametrize("name", protocol_names())
    def test_spec_round_trips_through_normalization(self, name):
        spec = TrialSpec.create(name, self.N, seed=3, engine="multiset")
        restored = TrialSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    @pytest.mark.parametrize("name", protocol_names())
    def test_transition_is_applicable(self, name):
        """The initial pair must transition without blowing up."""
        protocol = build_protocol(name, self.N)
        state = protocol.initial_state()
        post0, post1 = protocol.transition(state, state)
        assert protocol.output(post0) is not None
        assert protocol.output(post1) is not None


class TestParameterCanonicalization:
    def test_explicit_default_is_dropped(self):
        assert canonical_params("size-estimation", {"level_cap": 64}) == {}
        assert canonical_params("countup-timer", {"cmax": None}) == {}

    def test_non_default_is_kept(self):
        assert canonical_params("size-estimation", {"level_cap": 8}) == {
            "level_cap": 8
        }
        assert canonical_params("countup-timer", {"cmax": 82}) == {"cmax": 82}

    def test_specs_with_equal_semantics_hash_identically(self):
        explicit = TrialSpec.create(
            "size-estimation", 32, seed=0, params={"level_cap": 64}
        )
        implicit = TrialSpec.create("size-estimation", 32, seed=0)
        assert explicit.content_hash() == implicit.content_hash()

    def test_unknown_param_rejected_at_spec_time(self):
        with pytest.raises(ExperimentError):
            canonical_params("countup-timer", {"nope": 1})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ExperimentError):
            build_protocol("no-such-protocol", 16)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            register_protocol("pll")(lambda n: None)


class TestBuilderSemantics:
    def test_countup_timer_defaults_to_pll_cmax(self):
        from repro.core.params import PLLParameters

        protocol = build_protocol("countup-timer", 64)
        assert protocol.cmax == PLLParameters.for_population(64).cmax

    def test_countup_timer_override(self):
        protocol = build_protocol("countup-timer", 64, {"cmax": 7})
        assert protocol.cmax == 7

    def test_majority_builders_build_distinct_protocols(self):
        approx = build_protocol("approximate-majority", 16)
        exact = build_protocol("exact-majority", 16)
        assert approx.name != exact.name
