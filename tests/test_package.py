"""Package-level surface tests."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_quickstart_from_docstring(self):
        """The README/docstring quickstart must actually work."""
        protocol = repro.PLLProtocol.for_population(64)
        sim = repro.AgentSimulator(protocol, n=64, seed=1)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_error_hierarchy(self):
        assert issubclass(repro.ParameterError, repro.ReproError)
        assert issubclass(repro.ConvergenceError, repro.SimulationError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.ParameterError, ValueError)
