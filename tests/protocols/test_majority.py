"""Tests for repro.protocols.majority."""

import pytest

from repro.engine.protocol import check_symmetry
from repro.engine.simulator import AgentSimulator
from repro.protocols.majority import (
    ApproximateMajority,
    BLANK,
    ExactMajority,
    OPINION_X,
    OPINION_Y,
)
from repro.protocols.majority import WEAK_X, WEAK_Y


def run_majority(protocol, n, x_count, seed, budget=None):
    sim = AgentSimulator(protocol, n, seed=seed)
    sim.load_configuration(
        [OPINION_X] * x_count + [OPINION_Y] * (n - x_count)
    )
    outputs = {OPINION_X, OPINION_Y}
    sim.run(
        budget or 3000 * n,
        until=lambda s: len(
            {symbol for symbol, c in s.output_counts.items() if c > 0}
        )
        == 1,
        check_every=32,
    )
    return sim


class TestApproximateMajority:
    def test_annihilation(self):
        protocol = ApproximateMajority()
        assert protocol.transition(OPINION_X, OPINION_Y) == (BLANK, BLANK)
        assert protocol.transition(OPINION_Y, OPINION_X) == (BLANK, BLANK)

    def test_recruitment(self):
        protocol = ApproximateMajority()
        assert protocol.transition(OPINION_X, BLANK) == (OPINION_X, OPINION_X)
        assert protocol.transition(BLANK, OPINION_Y) == (OPINION_Y, OPINION_Y)

    def test_same_opinion_null(self):
        protocol = ApproximateMajority()
        assert protocol.transition(OPINION_X, OPINION_X) == (OPINION_X, OPINION_X)
        assert protocol.transition(BLANK, BLANK) == (BLANK, BLANK)

    def test_is_symmetric(self):
        check_symmetry(ApproximateMajority(), [OPINION_X, OPINION_Y, BLANK])

    def test_clear_majority_wins(self):
        sim = run_majority(ApproximateMajority(), 200, x_count=140, seed=0)
        assert sim.output_counts == {OPINION_X: 200}

    def test_clear_minority_loses(self):
        sim = run_majority(ApproximateMajority(), 200, x_count=60, seed=1)
        assert sim.output_counts == {OPINION_Y: 200}

    def test_state_bound(self):
        assert ApproximateMajority().state_bound() == 3


class TestExactMajority:
    def test_strong_annihilation_to_weak(self):
        protocol = ExactMajority()
        assert protocol.transition(OPINION_X, OPINION_Y) == (WEAK_X, WEAK_Y)

    def test_weak_follows_strong(self):
        protocol = ExactMajority()
        assert protocol.transition(OPINION_Y, WEAK_X) == (OPINION_Y, WEAK_Y)
        assert protocol.transition(WEAK_Y, OPINION_X) == (WEAK_X, OPINION_X)

    def test_weak_pair_null(self):
        protocol = ExactMajority()
        assert protocol.transition(WEAK_X, WEAK_Y) == (WEAK_X, WEAK_Y)

    def test_outputs_map_weak_to_opinion(self):
        protocol = ExactMajority()
        assert protocol.output(WEAK_X) == OPINION_X
        assert protocol.output(WEAK_Y) == OPINION_Y

    @pytest.mark.parametrize("margin", [1, 3])
    def test_decides_tiny_margins_correctly(self, margin):
        """Exactness: even margin 1 is always decided for the majority."""
        n = 31  # odd population: every split has a strict majority
        x_count = (n + margin) // 2
        assert 2 * x_count - n == margin
        for seed in range(5):
            sim = run_majority(
                ExactMajority(), n, x_count=x_count, seed=seed, budget=200_000
            )
            assert sim.output_counts == {OPINION_X: n}

    def test_strong_difference_is_invariant(self):
        """#x - #y among strong opinions never changes."""
        protocol = ExactMajority()
        sim = AgentSimulator(protocol, 20, seed=3)
        sim.load_configuration([OPINION_X] * 12 + [OPINION_Y] * 8)

        def strong_difference(s):
            counts = s.state_counts()
            return counts.get(OPINION_X, 0) - counts.get(OPINION_Y, 0)

        initial_difference = strong_difference(sim)
        for _ in range(2000):
            sim.step()
            assert strong_difference(sim) == initial_difference

    def test_state_bound(self):
        assert ExactMajority().state_bound() == 4
