"""Tests for repro.protocols.fast_nonce."""

import pytest

from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError
from repro.protocols.fast_nonce import FastNonceProtocol, FastNonceState


class TestConstruction:
    def test_rejects_zero_bits(self):
        with pytest.raises(ParameterError):
            FastNonceProtocol(bits=0)

    def test_for_population_sizing(self):
        assert FastNonceProtocol.for_population(256).bits == 24
        with pytest.raises(ParameterError):
            FastNonceProtocol.for_population(1)

    def test_initial_state(self):
        state = FastNonceProtocol(bits=4).initial_state()
        assert state == FastNonceState(leader=True, bits_done=0, nonce=0)


class TestNonceAssembly:
    def test_initiator_appends_one(self):
        protocol = FastNonceProtocol(bits=4)
        a = FastNonceState(True, 0, 0)
        b = FastNonceState(True, 0, 0)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.nonce == 1  # initiator bit
        assert post_b.nonce == 0  # responder bit
        assert post_a.bits_done == post_b.bits_done == 1

    def test_assembly_stops_at_bits(self):
        protocol = FastNonceProtocol(bits=2)
        done = FastNonceState(True, 2, 3)
        fresh = FastNonceState(True, 0, 0)
        post_done, post_fresh = protocol.transition(done, fresh)
        assert post_done.bits_done == 2
        assert post_fresh.bits_done == 1

    def test_follower_keeps_assembling(self):
        """Demoted agents still finish their bit counter (relay duty)."""
        protocol = FastNonceProtocol(bits=4)
        follower = FastNonceState(False, 1, 0)
        other = FastNonceState(False, 1, 1)
        post_follower, _ = protocol.transition(follower, other)
        assert post_follower.bits_done == 2


class TestElimination:
    def test_smaller_nonce_demoted(self):
        protocol = FastNonceProtocol(bits=2)
        low = FastNonceState(True, 2, 1)
        high = FastNonceState(True, 2, 3)
        post_low, post_high = protocol.transition(low, high)
        assert post_low.leader is False
        assert post_low.nonce == 3
        assert post_high.leader is True

    def test_equal_nonce_responder_concedes(self):
        protocol = FastNonceProtocol(bits=2)
        a = FastNonceState(True, 2, 3)
        b = FastNonceState(True, 2, 3)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.leader is True
        assert post_b.leader is False

    def test_unfinished_agents_not_compared(self):
        protocol = FastNonceProtocol(bits=4)
        unfinished = FastNonceState(True, 2, 3)
        finished = FastNonceState(True, 4, 15)
        post_unfinished, _ = protocol.transition(unfinished, finished)
        assert post_unfinished.leader is True


class TestBehaviour:
    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_stabilizes(self, n):
        protocol = FastNonceProtocol.for_population(n)
        sim = AgentSimulator(protocol, n, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_logarithmic_time_shape(self):
        """Doubling n adds roughly a constant (Table 1's O(log n) row)."""
        import numpy as np

        means = []
        for n in (32, 256):
            times = []
            for seed in range(8):
                sim = AgentSimulator(
                    FastNonceProtocol.for_population(n), n, seed=seed
                )
                sim.run_until_stabilized()
                times.append(sim.parallel_time)
            means.append(float(np.mean(times)))
        assert means[1] / means[0] < 3.0  # far below the 8x of linear growth

    def test_output(self):
        protocol = FastNonceProtocol(bits=2)
        assert protocol.output(FastNonceState(True, 0, 0)) == "L"
        assert protocol.output(FastNonceState(False, 2, 3)) == "F"

    def test_state_bound(self):
        assert FastNonceProtocol(bits=3).state_bound() == 2 * 4 * 8
