"""Tests for repro.protocols.size_estimation."""

import math

import pytest

from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError
from repro.protocols.size_estimation import (
    SizeEstimateState,
    SizeEstimationProtocol,
    m_hat_from_level,
)


class TestMHat:
    def test_formula(self):
        assert m_hat_from_level(0) == 2
        assert m_hat_from_level(7) == 16

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            m_hat_from_level(-1)


class TestTransitions:
    def test_rejects_bad_cap(self):
        with pytest.raises(ParameterError):
            SizeEstimationProtocol(level_cap=0)

    def test_initial_state(self):
        state = SizeEstimationProtocol().initial_state()
        assert state == SizeEstimateState(flipping=True, level=0, seen=0)

    def test_initiator_counts_a_head(self):
        protocol = SizeEstimationProtocol()
        a = SizeEstimateState(True, 2, 0)
        b = SizeEstimateState(False, 0, 0)
        post_a, _ = protocol.transition(a, b)
        assert post_a.level == 3
        assert post_a.flipping

    def test_responder_stops_and_publishes(self):
        protocol = SizeEstimationProtocol()
        a = SizeEstimateState(False, 0, 0)
        b = SizeEstimateState(True, 4, 0)
        _, post_b = protocol.transition(a, b)
        assert not post_b.flipping
        assert post_b.seen == 4

    def test_max_seen_spreads_both_ways(self):
        protocol = SizeEstimationProtocol()
        a = SizeEstimateState(False, 3, 3)
        b = SizeEstimateState(False, 0, 7)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.seen == 7
        assert post_b.seen == 7

    def test_level_caps(self):
        protocol = SizeEstimationProtocol(level_cap=3)
        a = SizeEstimateState(True, 3, 0)
        post_a, _ = protocol.transition(a, SizeEstimateState(False, 0, 0))
        assert post_a.level == 3

    def test_output_is_seen_maximum(self):
        protocol = SizeEstimationProtocol()
        assert protocol.output(SizeEstimateState(False, 2, 9)) == "9"

    def test_state_bound(self):
        assert SizeEstimationProtocol(level_cap=4).state_bound() == 2 * 5 * 5


class TestEstimateQuality:
    @pytest.mark.parametrize("n", [32, 128, 512])
    def test_estimate_satisfies_pll_contract(self, n):
        """m_hat >= lg n (validity) and m_hat = O(log n) (efficiency)."""
        protocol = SizeEstimationProtocol()
        valid = 0
        trials = 10
        for seed in range(trials):
            sim = AgentSimulator(protocol, n, seed=seed)
            sim.run(
                400 * n,
                until=lambda s: len(s.output_counts) == 1
                and all(not state.flipping for state in s.configuration()),
                check_every=64,
            )
            (level_text,) = sim.output_counts
            m_hat = m_hat_from_level(int(level_text))
            if m_hat >= math.log2(n):
                valid += 1
            assert m_hat <= 10 * math.log2(n) + 4  # Theta(log n) upper side
        assert valid == trials  # failure probability is exp(-Theta(sqrt n))

    def test_estimate_settles_to_consensus(self):
        protocol = SizeEstimationProtocol()
        sim = AgentSimulator(protocol, 64, seed=3)
        sim.run(40000)
        assert len(sim.output_counts) == 1
