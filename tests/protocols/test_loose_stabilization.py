"""Tests for the loosely-stabilizing baseline ([Sud+12]-style)."""

import pytest

from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError
from repro.protocols.loose_stabilization import (
    LooselyStabilizingProtocol,
    LooseState,
)


def run_to_unique_leader(sim, budget):
    sim.run(budget, until=lambda s: s.leader_count == 1, check_every=16)
    return sim.leader_count


class TestTransitions:
    @pytest.fixture
    def protocol(self):
        return LooselyStabilizingProtocol(tmax=10)

    def test_rejects_tiny_tmax(self):
        with pytest.raises(ParameterError):
            LooselyStabilizingProtocol(tmax=1)

    def test_for_population_sizing(self):
        assert LooselyStabilizingProtocol.for_population(256).tmax == 128
        with pytest.raises(ParameterError):
            LooselyStabilizingProtocol.for_population(1)

    def test_timer_propagates_decayed_maximum(self, protocol):
        a = LooseState(False, 7)
        b = LooseState(False, 3)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.timer == post_b.timer == 6

    def test_leader_resets_own_timer(self, protocol):
        leader = LooseState(True, 2)
        follower = LooseState(False, 5)
        post_leader, post_follower = protocol.transition(leader, follower)
        assert post_leader.timer == 10
        assert post_leader.is_leader
        assert post_follower.timer == 4

    def test_two_leaders_responder_concedes(self, protocol):
        a = LooseState(True, 10)
        b = LooseState(True, 10)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.is_leader
        assert not post_b.is_leader

    def test_zero_timer_promotes(self, protocol):
        a = LooseState(False, 1)
        b = LooseState(False, 0)
        post_a, post_b = protocol.transition(a, b)
        # max(1, 0) - 1 = 0: both conclude the leader is gone.
        assert post_a.is_leader and post_b.is_leader
        assert post_a.timer == post_b.timer == 10

    def test_timer_floor_at_zero(self, protocol):
        a = LooseState(False, 0)
        b = LooseState(False, 0)
        post_a, _ = protocol.transition(a, b)
        assert post_a.timer == 10  # promoted, reset to tmax

    def test_state_bound(self, protocol):
        assert protocol.state_bound() == 22


class TestLooseStabilization:
    def test_converges_to_unique_leader(self):
        protocol = LooselyStabilizingProtocol.for_population(32)
        sim = AgentSimulator(protocol, 32, seed=0)
        assert run_to_unique_leader(sim, 200_000) == 1

    def test_holds_the_leader_for_a_long_window(self):
        """No spurious promotion over a long observation window."""
        protocol = LooselyStabilizingProtocol.for_population(32)
        sim = AgentSimulator(protocol, 32, seed=1)
        run_to_unique_leader(sim, 200_000)
        for _ in range(50):
            sim.run(32 * 20)  # 20 parallel time per check
            assert sim.leader_count == 1

    def test_recovers_after_leader_crash(self):
        """The property PLL cannot have: re-election after leader loss."""
        protocol = LooselyStabilizingProtocol.for_population(24)
        sim = AgentSimulator(protocol, 24, seed=2)
        run_to_unique_leader(sim, 200_000)
        # Crash: the adversary resets the unique leader to a follower.
        config = sim.configuration()
        (leader_index,) = [
            i for i, state in enumerate(config) if state.is_leader
        ]
        config[leader_index] = LooseState(False, config[leader_index].timer)
        sim.load_configuration(config)
        assert sim.leader_count == 0
        assert run_to_unique_leader(sim, 500_000) == 1

    def test_recovers_from_all_leader_chaos(self):
        """Loose stabilization promises recovery from ANY configuration."""
        protocol = LooselyStabilizingProtocol.for_population(16)
        sim = AgentSimulator(protocol, 16, seed=3)
        sim.load_configuration([LooseState(True, protocol.tmax)] * 16)
        assert run_to_unique_leader(sim, 500_000) == 1

    def test_not_monotone_flag(self):
        assert not LooselyStabilizingProtocol(tmax=8).monotone_leader
