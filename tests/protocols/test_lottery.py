"""Tests for repro.protocols.lottery."""

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.protocols.lottery import lottery_protocol


class TestLotteryProtocol:
    def test_is_the_no_tournament_variant(self):
        protocol = lottery_protocol(PLLParameters(m=8))
        assert isinstance(protocol, PLLProtocol)
        assert protocol.variant == "no-tournament"

    def test_name(self):
        assert lottery_protocol(PLLParameters(m=8)).name == "lottery-backup"

    def test_stabilizes(self):
        protocol = lottery_protocol(PLLParameters.for_population(24))
        sim = AgentSimulator(protocol, 24, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_monotone_leader_count(self):
        protocol = lottery_protocol(PLLParameters.for_population(16))
        sim = AgentSimulator(protocol, 16, seed=2)
        previous = sim.leader_count
        for _ in range(5000):
            sim.step()
            assert sim.leader_count <= previous
            previous = sim.leader_count
        assert previous >= 1
