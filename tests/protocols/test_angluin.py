"""Tests for repro.protocols.angluin."""

import pytest

from repro.engine.simulator import AgentSimulator
from repro.protocols.angluin import AngluinProtocol


class TestTransition:
    def test_two_leaders_responder_concedes(self):
        assert AngluinProtocol().transition(True, True) == (True, False)

    def test_leader_follower_unchanged(self):
        protocol = AngluinProtocol()
        assert protocol.transition(True, False) == (True, False)
        assert protocol.transition(False, True) == (False, True)

    def test_two_followers_unchanged(self):
        assert AngluinProtocol().transition(False, False) == (False, False)

    def test_output(self):
        protocol = AngluinProtocol()
        assert protocol.output(True) == "L"
        assert protocol.output(False) == "F"

    def test_state_bound_is_two(self):
        assert AngluinProtocol().state_bound() == 2


class TestBehaviour:
    @pytest.mark.parametrize("n", [2, 5, 30])
    def test_stabilizes(self, n):
        sim = AgentSimulator(AngluinProtocol(), n, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_linear_time_shape(self):
        """Mean time grows roughly linearly in n (Table 1 row 1)."""
        import numpy as np

        means = []
        for n in (16, 64):
            times = []
            for seed in range(12):
                sim = AgentSimulator(AngluinProtocol(), n, seed=seed)
                sim.run_until_stabilized()
                times.append(sim.parallel_time)
            means.append(float(np.mean(times)))
        # Quadrupling n should scale time by ~4 (allow 2x..8x).
        assert 2.0 < means[1] / means[0] < 8.0

    def test_uses_exactly_two_states(self):
        sim = AgentSimulator(AngluinProtocol(), 16, seed=1)
        sim.run_until_stabilized()
        assert sim.distinct_states_seen() == 2
