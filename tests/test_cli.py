"""Tests for the command-line interface."""

import pytest

from repro.cli import PROTOCOLS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E9"])
        assert args.experiment == "E9"
        assert args.scale == 1.0
        assert args.seed == 0

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.protocol == "pll"
        assert args.n == 256
        assert args.engine == "agent"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "nope"])


class TestCommands:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "Theorem 1" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "E3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 2 bound" in out

    def test_simulate_stabilizes(self, capsys):
        assert main(["simulate", "--protocol", "angluin", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "stabilized" in out
        assert "'L': 1" in out

    def test_simulate_multiset_engine(self, capsys):
        code = main(
            ["simulate", "--protocol", "pll", "--n", "32", "--engine", "multiset"]
        )
        assert code == 0
        assert "stabilized" in capsys.readouterr().out

    def test_every_registered_protocol_factory_builds(self):
        for name, factory in PROTOCOLS.items():
            protocol = factory(16)
            assert protocol.initial_state() is not None, name

    def test_run_out_appends_report(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        assert main(["run", "E3", "--scale", "0.02", "--out", str(out)]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "Lemma 2" in text
        # Appending: a second run doubles the content.
        assert main(["run", "E3", "--scale", "0.02", "--out", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text().count("[E3]") == 2
