"""Tests for the command-line interface."""

import pytest

from repro.cli import PROTOCOLS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E9"])
        assert args.experiment == "E9"
        assert args.scale == 1.0
        assert args.seed == 0

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.protocol == "pll"
        assert args.n == 256
        assert args.engine == "agent"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "nope"])

    def test_run_orchestration_flags(self):
        args = build_parser().parse_args(
            ["run", "E9", "--jobs", "4", "--trials", "8",
             "--engine", "multiset", "--store", "x.sqlite"]
        )
        assert args.jobs == 4
        assert args.trials == 8
        assert args.engine == "multiset"
        assert args.store == "x.sqlite"

    def test_run_defaults_to_no_store_serial(self):
        args = build_parser().parse_args(["run", "E9"])
        assert args.store is None
        assert args.jobs == 1
        assert args.engine is None and args.trials is None

    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign", "run", "E1"])
        assert args.action == "run"
        assert args.experiment == "E1"
        assert args.store == ".repro-store.sqlite"
        assert args.jobs == 1

    def test_campaign_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_telemetry_report_parser_defaults(self):
        args = build_parser().parse_args(["telemetry", "report"])
        assert args.command == "telemetry"
        assert args.action == "report"
        assert args.store == ".repro-store.sqlite"

    def test_telemetry_report_accepts_store_path(self):
        args = build_parser().parse_args(["telemetry", "report", "x.sqlite"])
        assert args.store == "x.sqlite"

    def test_telemetry_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_telemetry_report_format_flag(self):
        args = build_parser().parse_args(["telemetry", "report"])
        assert args.format == "text"
        args = build_parser().parse_args(
            ["telemetry", "report", "--format", "json"]
        )
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["telemetry", "report", "--format", "yaml"]
            )

    def test_telemetry_profile_parser(self):
        args = build_parser().parse_args(
            ["telemetry", "profile", "events.jsonl"]
        )
        assert args.action == "profile"
        assert args.events == "events.jsonl"

    def test_telemetry_phases_parser_defaults(self):
        args = build_parser().parse_args(["telemetry", "phases"])
        assert args.action == "phases"
        assert args.limit == 4
        assert args.protocol is None and args.n is None

    def test_trace_export_parser(self):
        args = build_parser().parse_args(["trace", "export", "e.jsonl"])
        assert args.command == "trace"
        assert args.action == "export"
        assert args.events == "e.jsonl" and args.out is None

    def test_trace_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_campaign_run_shard_flags(self):
        args = build_parser().parse_args(
            ["campaign", "run", "E1", "--shard", "w1", "--lease-ttl", "30"]
        )
        assert args.shard == "w1"
        assert args.lease_ttl == 30.0

    def test_campaign_run_shard_defaults_off(self):
        args = build_parser().parse_args(["campaign", "run", "E1"])
        assert args.shard is None
        assert args.lease_ttl is None

    def test_store_merge_parser(self):
        args = build_parser().parse_args(["store", "merge", "shards/"])
        assert args.command == "store"
        assert args.action == "merge"
        assert args.root == "shards/"
        assert args.keep_shards is False
        args = build_parser().parse_args(
            ["store", "merge", "shards/", "--keep-shards"]
        )
        assert args.keep_shards is True

    def test_store_status_parser_defaults(self):
        args = build_parser().parse_args(["store", "status"])
        assert args.action == "status"
        assert args.store == ".repro-store.sqlite"
        args = build_parser().parse_args(["store", "status", "shards/"])
        assert args.store == "shards/"

    def test_store_gc_parser_defaults(self):
        args = build_parser().parse_args(["store", "gc"])
        assert args.action == "gc"
        assert args.store == ".repro-store.sqlite"
        assert args.checkpoint_dir is None
        args = build_parser().parse_args(
            ["store", "gc", "x.sqlite", "--checkpoint-dir", "ckpt/"]
        )
        assert args.checkpoint_dir == "ckpt/"

    def test_store_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])


class TestCommands:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "Theorem 1" in out

    def test_run_prints_table(self, capsys):
        assert main(["run", "E3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 2 bound" in out

    def test_simulate_stabilizes(self, capsys):
        assert main(["simulate", "--protocol", "angluin", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "stabilized" in out
        assert "'L': 1" in out

    def test_simulate_multiset_engine(self, capsys):
        code = main(
            ["simulate", "--protocol", "pll", "--n", "32", "--engine", "multiset"]
        )
        assert code == 0
        assert "stabilized" in capsys.readouterr().out

    def test_every_registered_protocol_factory_builds(self):
        for name, factory in PROTOCOLS.items():
            protocol = factory(16)
            assert protocol.initial_state() is not None, name

    def test_campaign_run_then_resume_hits_cache(self, capsys, tmp_path):
        store = str(tmp_path / "trials.sqlite")
        argv = ["campaign", "run", "E12", "--scale", "0.125", "--store", store]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "6 executed" in first
        # Same campaign again: everything is a cache hit.
        assert main(["campaign", "resume", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        second = capsys.readouterr().out
        assert "6 cached, 0 executed" in second

    def test_campaign_status_and_report(self, capsys, tmp_path):
        import os

        store = str(tmp_path / "trials.sqlite")
        # Read-only actions on a missing store fail cleanly and leave
        # no file behind (a created-empty store would mask path typos).
        assert main(["campaign", "status", "E12", "--scale", "0.125",
                     "--store", store]) == 2
        assert "cannot open trial store" in capsys.readouterr().err
        assert not os.path.exists(store)
        assert main(["campaign", "run", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        assert "6/6" in capsys.readouterr().out
        assert main(["campaign", "report", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "backup-only" in out

    def test_run_with_store_then_campaign_status_complete(
        self, capsys, tmp_path
    ):
        store = str(tmp_path / "trials.sqlite")
        assert main(["run", "E12", "--scale", "0.125", "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        assert "6/6" in capsys.readouterr().out

    def test_run_out_appends_report(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        assert main(["run", "E3", "--scale", "0.02", "--out", str(out)]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "Lemma 2" in text
        # Appending: a second run doubles the content.
        assert main(["run", "E3", "--scale", "0.02", "--out", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text().count("[E3]") == 2

    def test_telemetry_report_after_campaign(self, capsys, tmp_path):
        import json

        store = str(tmp_path / "trials.sqlite")
        assert main(["campaign", "run", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        capsys.readouterr()
        # Default format is the human-readable table.
        assert main(["telemetry", "report", store]) == 0
        table = capsys.readouterr().out
        assert "trials" in table
        assert main(["telemetry", "report", store, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials"] == 6
        for cell in payload["cells"]:
            assert cell["timed_trials"] == cell["trials"]
            assert cell["duration_sec"]["p50"] > 0
            assert cell["parallel_time_per_sec"]["p50"] > 0

    def test_telemetry_report_missing_store_fails_cleanly(
        self, capsys, tmp_path
    ):
        import os

        store = str(tmp_path / "missing.sqlite")
        assert main(["telemetry", "report", store]) == 2
        assert "cannot open trial store" in capsys.readouterr().err
        assert not os.path.exists(store)

    def test_traced_campaign_exports_profile_and_phases(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        from repro.telemetry.core import TELEMETRY_ENV
        from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV
        from repro.telemetry.trace import TRACE_ENV

        store = str(tmp_path / "trials.sqlite")
        events = str(tmp_path / "events.jsonl")
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(QUIET_ENV, "1")
        monkeypatch.setenv(EVENTS_ENV, events)
        assert main(["campaign", "run", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        capsys.readouterr()
        # trace export: validates and writes Chrome trace JSON.
        out = str(tmp_path / "trace.json")
        assert main(["trace", "export", events, "--out", out]) == 0
        assert "spans" in capsys.readouterr().out
        payload = json.loads(open(out).read())
        assert payload["traceEvents"]
        # telemetry profile: aggregates the stage-cost table.
        assert main(["telemetry", "profile", events]) == 0
        table = capsys.readouterr().out
        assert "no profile events" not in table
        assert "profiled" in table
        # telemetry phases: renders stored timelines from the store.
        assert main(["telemetry", "phases", store, "--limit", "1"]) == 0
        assert "samples=" in capsys.readouterr().out

    def test_trace_export_missing_file_fails_cleanly(self, capsys, tmp_path):
        missing = str(tmp_path / "missing.jsonl")
        assert main(["trace", "export", missing]) == 2
        assert "cannot read event file" in capsys.readouterr().err

    def test_telemetry_profile_missing_file_fails_cleanly(
        self, capsys, tmp_path
    ):
        missing = str(tmp_path / "missing.jsonl")
        assert main(["telemetry", "profile", missing]) == 2
        assert "cannot" in capsys.readouterr().err


class TestProgressPrinter:
    def make_outcome(self, steps: int):
        from repro.orchestration.spec import TrialOutcome

        return TrialOutcome(
            seed=0, steps=steps, parallel_time=1.0,
            leader_count=1, distinct_states=4,
        )

    def test_prints_throughput_on_stride_lines(self, capsys):
        from repro.cli import _progress_printer

        progress = _progress_printer(stride=2)
        progress(1, 4, self.make_outcome(1000))
        assert capsys.readouterr().out == ""  # off-stride: silent
        progress(2, 4, self.make_outcome(1000))
        line = capsys.readouterr().out
        assert "2/4 trials done" in line
        assert "steps/s" in line and "s (" in line  # elapsed + rate

    def test_final_trial_always_prints(self, capsys):
        from repro.cli import _progress_printer

        progress = _progress_printer(stride=10)
        progress(3, 3, self.make_outcome(500))
        assert "3/3 trials done" in capsys.readouterr().out

    def test_cached_trials_reported_without_rate(self, capsys):
        from repro.cli import _progress_printer

        progress = _progress_printer(stride=1)
        progress(1, 4, None)
        line = capsys.readouterr().out
        assert "1/4 trials already cached" in line
        assert "steps/s" not in line


class TestStoreCommands:
    """`repro store merge|status|gc` and the sharded campaign flow."""

    def test_lease_ttl_without_shard_is_an_error(self, capsys, tmp_path):
        store = str(tmp_path / "trials.sqlite")
        assert main(["campaign", "run", "E12", "--scale", "0.125",
                     "--store", store, "--lease-ttl", "30"]) == 2
        assert "--shard" in capsys.readouterr().err

    def test_shard_root_without_shard_flag_is_an_error(
        self, capsys, tmp_path
    ):
        root = tmp_path / "shards"
        root.mkdir()
        assert main(["campaign", "run", "E12", "--scale", "0.125",
                     "--store", str(root)]) == 2
        assert "--shard" in capsys.readouterr().err

    def test_sharded_campaign_status_merge_gc_flow(self, capsys, tmp_path):
        root = str(tmp_path / "shards")
        argv = ["campaign", "run", "E12", "--scale", "0.125",
                "--store", root, "--shard", "w1", "--lease-ttl", "30"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "worker w1: 6 executed" in out
        assert "repro store merge" in out

        # Federated status before the merge: the shard root reads as a
        # complete campaign even though canonical.sqlite doesn't exist.
        assert main(["campaign", "status", "E12", "--scale", "0.125",
                     "--store", root]) == 0
        assert "6/6" in capsys.readouterr().out

        assert main(["store", "status", root]) == 0
        status = capsys.readouterr().out
        assert "6 trials" in status
        assert "shard-w1.sqlite" in status
        assert "live leases: none" in status

        assert main(["store", "merge", root]) == 0
        merged = capsys.readouterr().out
        assert "trials:   6" in merged
        import os
        assert os.path.exists(os.path.join(root, "canonical.sqlite"))
        assert not os.path.exists(os.path.join(root, "shard-w1.sqlite"))

        # Post-merge the same commands read the canonical member.
        assert main(["campaign", "report", "E12", "--scale", "0.125",
                     "--store", root]) == 0
        assert "backup-only" in capsys.readouterr().out

        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        (ckpt_dir / "orphan.ckpt12345.tmp").write_bytes(b"partial")
        assert main(["store", "gc", root,
                     "--checkpoint-dir", str(ckpt_dir)]) == 0
        assert "1 orphaned checkpoint" in capsys.readouterr().out
        assert list(ckpt_dir.iterdir()) == []

    def test_store_status_on_single_file_store(self, capsys, tmp_path):
        store = str(tmp_path / "trials.sqlite")
        assert main(["campaign", "run", "E12", "--scale", "0.125",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["store", "status", store]) == 0
        out = capsys.readouterr().out
        assert "6 trials" in out
        assert "journal mode: wal" in out

    def test_store_merge_refuses_non_sharded_path(self, capsys, tmp_path):
        assert main(["store", "merge", str(tmp_path / "nope")]) == 2
        assert "not a sharded store" in capsys.readouterr().err
