"""Tests for repro.sync.countup."""

import pytest

from repro.engine.population import Configuration
from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError
from repro.sync.countup import CountUpTimerProtocol, TimerState, advance_color


class TestAdvanceColor:
    def test_cycles_mod_three(self):
        assert [advance_color(c) for c in (0, 1, 2)] == [1, 2, 0]


class TestCountUpTimerProtocol:
    def test_rejects_bad_cmax(self):
        with pytest.raises(ParameterError):
            CountUpTimerProtocol(cmax=0)

    def test_initial_state(self):
        protocol = CountUpTimerProtocol(cmax=5)
        assert protocol.initial_state() == TimerState(0, 0, 0)

    def test_counts_advance_each_interaction(self):
        protocol = CountUpTimerProtocol(cmax=10)
        a, b = protocol.transition(TimerState(0, 0, 0), TimerState(3, 0, 0))
        assert (a.count, b.count) == (1, 4)

    def test_rollover_advances_color_and_resets_count(self):
        protocol = CountUpTimerProtocol(cmax=3)
        a, _b = protocol.transition(TimerState(2, 0, 0), TimerState(0, 0, 0))
        assert a == TimerState(count=0, color=1, ticks_seen=1)

    def test_color_epidemic_pulls_laggard_forward(self):
        protocol = CountUpTimerProtocol(cmax=100)
        behind = TimerState(count=50, color=0, ticks_seen=0)
        ahead = TimerState(count=10, color=1, ticks_seen=1)
        new_behind, new_ahead = protocol.transition(behind, ahead)
        assert new_behind.color == 1
        assert new_behind.count == 0  # reset on adoption
        assert new_behind.ticks_seen == 1
        assert new_ahead.color == 1

    def test_color_two_apart_does_not_adopt(self):
        """Colors 0 and 2: 0 is 'ahead' cyclically (2 + 1 = 0 mod 3)."""
        protocol = CountUpTimerProtocol(cmax=100)
        zero = TimerState(count=5, color=0, ticks_seen=0)
        two = TimerState(count=5, color=2, ticks_seen=2)
        new_zero, new_two = protocol.transition(zero, two)
        assert new_zero.color == 0  # not pulled backwards
        assert new_two.color == 0  # pulled forward across the wrap

    def test_equal_states_stay_equal(self):
        protocol = CountUpTimerProtocol(cmax=7)
        state = TimerState(count=6, color=2, ticks_seen=4)
        a, b = protocol.transition(state, state)
        assert a == b  # both roll over identically

    def test_ticks_cap(self):
        protocol = CountUpTimerProtocol(cmax=2, max_ticks=3)
        state = TimerState(count=1, color=0, ticks_seen=3)
        a, _ = protocol.transition(state, TimerState(0, 0, 0))
        assert a.ticks_seen == 3

    def test_output_is_color(self):
        protocol = CountUpTimerProtocol(cmax=5)
        assert protocol.output(TimerState(3, 2, 7)) == "2"

    def test_population_reaches_color_one_together(self):
        """All timers show color 1 shortly after the first rollover."""
        protocol = CountUpTimerProtocol(cmax=20)
        sim = AgentSimulator(protocol, 16, seed=0)
        sim.run(
            200000,
            until=lambda s: s.output_counts.get("1", 0) == 16,
            check_every=16,
        )
        assert sim.output_counts["1"] == 16

    def test_deterministic_two_agent_cycle(self):
        protocol = CountUpTimerProtocol(cmax=2)
        config = Configuration.uniform(protocol.initial_state(), 2)
        # Each interaction increments both counts; every 2nd flips colors.
        config = config.apply(protocol, [(0, 1), (0, 1)])
        assert all(state.color == 1 for state in config.states)
