"""Tests for repro.sync.phase_clock."""

import pytest

from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError
from repro.sync.phase_clock import ClockState, LeaderDrivenPhaseClock, circular_ahead


class TestCircularAhead:
    def test_adjacent_is_ahead(self):
        assert circular_ahead(1, 0, ring=8)

    def test_equal_is_not_ahead(self):
        assert not circular_ahead(3, 3, ring=8)

    def test_wraparound(self):
        assert circular_ahead(0, 7, ring=8)
        assert not circular_ahead(7, 0, ring=8)

    def test_antipodal_not_ahead(self):
        assert not circular_ahead(4, 0, ring=8)

    def test_just_under_half_is_ahead(self):
        assert circular_ahead(3, 0, ring=8)


class TestLeaderDrivenPhaseClock:
    def test_rejects_small_ring(self):
        with pytest.raises(ParameterError):
            LeaderDrivenPhaseClock(ring=2)

    def test_initial_states(self):
        clock = LeaderDrivenPhaseClock()
        assert not clock.initial_state().is_leader
        assert clock.leader_state().is_leader

    def test_leader_ticks_every_interaction(self):
        clock = LeaderDrivenPhaseClock(ring=8)
        leader = ClockState(True, 2, 0)
        follower = ClockState(False, 2, 0)
        new_leader, new_follower = clock.transition(leader, follower)
        assert new_leader.hour == 3
        assert new_follower.hour == 2  # partner saw hour 2, not ahead

    def test_leader_never_adopts(self):
        clock = LeaderDrivenPhaseClock(ring=8)
        leader = ClockState(True, 1, 0)
        ahead_follower = ClockState(False, 3, 0)
        new_leader, _ = clock.transition(leader, ahead_follower)
        assert new_leader.hour == 2  # own tick only

    def test_follower_catches_up(self):
        clock = LeaderDrivenPhaseClock(ring=8)
        behind = ClockState(False, 1, 0)
        ahead = ClockState(False, 3, 0)
        new_behind, new_ahead = clock.transition(behind, ahead)
        assert new_behind.hour == 3
        assert new_ahead.hour == 3

    def test_follower_adoption_uses_pre_interaction_hour(self):
        """Both sides read the partner's *pre* state (no chained updates)."""
        clock = LeaderDrivenPhaseClock(ring=8)
        leader = ClockState(True, 4, 0)
        follower = ClockState(False, 3, 0)
        new_leader, new_follower = clock.transition(leader, follower)
        assert new_leader.hour == 5
        assert new_follower.hour == 4  # adopted 4, not the leader's new 5

    def test_rounds_increment_on_wrap(self):
        clock = LeaderDrivenPhaseClock(ring=4)
        leader = ClockState(True, 3, 0)
        follower = ClockState(False, 3, 0)
        new_leader, _ = clock.transition(leader, follower)
        assert new_leader.hour == 0
        assert new_leader.rounds == 1

    def test_clock_progresses_in_population(self):
        clock = LeaderDrivenPhaseClock(ring=8)
        sim = AgentSimulator(clock, 24, seed=0)
        config = [clock.leader_state()] + [clock.initial_state()] * 23
        sim.load_configuration(config)
        sim.run(20000)
        assert sim.state_of(0).rounds >= 1

    def test_for_population_ring_scales_with_log_n(self):
        assert LeaderDrivenPhaseClock.for_population(32).ring == 60
        assert LeaderDrivenPhaseClock.for_population(1024).ring == 120

    def test_for_population_rejects_tiny_n(self):
        with pytest.raises(ParameterError):
            LeaderDrivenPhaseClock.for_population(1)

    def test_followers_track_the_leader_on_average(self):
        """Most followers stay within half a ring of the leader, most of
        the time (the clock's whp guarantee; lapping is rare but legal)."""
        clock = LeaderDrivenPhaseClock.for_population(32)
        sim = AgentSimulator(clock, 32, seed=3)
        sim.load_configuration(
            [clock.leader_state()] + [clock.initial_state()] * 31
        )
        sim.run(2000)  # warm-up
        coherent_observations = 0
        total_observations = 0
        for _ in range(50):
            sim.run(200)
            leader_hour = sim.state_of(0).hour
            for agent in range(1, 32):
                behindness = (leader_hour - sim.state_of(agent).hour) % clock.ring
                total_observations += 1
                if behindness <= clock.ring // 2:
                    coherent_observations += 1
        assert coherent_observations / total_observations > 0.9
