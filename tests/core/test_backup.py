"""Tests for BackUp (Algorithm 5) through full PLL transitions."""

import pytest

from repro.core.pll import PLLProtocol
from repro.core.state import PLLState, STATUS_TIMER

from tests.core.helpers import timer, v4_candidate


@pytest.fixture
def protocol(params8):
    return PLLProtocol(params8)


def ticking_timer(protocol, color=0):
    """A timer one interaction away from rolling over (raises tick)."""
    return PLLState(
        leader=False,
        status=STATUS_TIMER,
        epoch=4,
        color=color,
        count=protocol.params.cmax - 1,
    )


class TestTickPacedFlips:
    def test_no_increment_without_tick(self, protocol):
        leader = v4_candidate(leader=True, level_b=2)
        follower = v4_candidate(leader=False, level_b=2)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.level_b == 2

    def test_initiator_with_tick_increments(self, protocol):
        """A leader whose color is pulled forward this interaction (tick)
        and who initiates with a follower counts a head."""
        leader = v4_candidate(leader=True, level_b=2, color=0)
        ahead_follower = v4_candidate(leader=False, level_b=2, color=1)
        post_leader, _ = protocol.transition(leader, ahead_follower)
        assert post_leader.color == 1
        assert post_leader.level_b == 3

    def test_responder_with_tick_does_not_increment(self, protocol):
        """Line 51 requires the *initiator* role (tail otherwise)."""
        leader = v4_candidate(leader=True, level_b=2, color=0)
        ahead_follower = v4_candidate(leader=False, level_b=2, color=1)
        _, post_leader = protocol.transition(ahead_follower, leader)
        assert post_leader.color == 1
        assert post_leader.level_b == 2

    def test_tick_with_leader_partner_does_not_increment(self, protocol):
        a = v4_candidate(leader=True, level_b=2, color=0)
        b = v4_candidate(leader=True, level_b=2, color=1)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.level_b == post_b.level_b == 2

    def test_level_caps_at_lmax(self, protocol):
        lmax = protocol.params.lmax
        leader = v4_candidate(leader=True, level_b=lmax, color=0)
        ahead = v4_candidate(leader=False, level_b=lmax, color=1)
        post_leader, _ = protocol.transition(leader, ahead)
        assert post_leader.level_b == lmax


class TestLevelEpidemic:
    def test_smaller_level_leader_demoted(self, protocol):
        low = v4_candidate(leader=True, level_b=1)
        high = v4_candidate(leader=True, level_b=3)
        post_low, post_high = protocol.transition(low, high)
        assert post_low.leader is False
        assert post_low.level_b == 3
        assert post_high.leader is True

    def test_follower_relays_level(self, protocol):
        low = v4_candidate(leader=False, level_b=0)
        high = v4_candidate(leader=False, level_b=4)
        post_low, _ = protocol.transition(low, high)
        assert post_low.level_b == 4

    def test_timer_excluded_from_epidemic(self, protocol):
        leader = v4_candidate(leader=True, level_b=2)
        post_leader, post_timer = protocol.transition(leader, timer(epoch=4))
        assert post_leader.level_b == 2
        assert post_timer.count == 1


class TestPairwiseElection:
    def test_equal_level_leaders_responder_concedes(self, protocol):
        a = v4_candidate(leader=True, level_b=2)
        b = v4_candidate(leader=True, level_b=2)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.leader is True
        assert post_b.leader is False

    def test_line58_after_epidemic_resolution(self, protocol):
        """Lines 54-57 already demote the smaller side; line 58 then sees
        at most one leader, so exactly one survives either way."""
        a = v4_candidate(leader=True, level_b=5)
        b = v4_candidate(leader=True, level_b=2)
        post_a, post_b = protocol.transition(a, b)
        assert (post_a.leader, post_b.leader) == (True, False)
        assert post_b.level_b == 5

    def test_never_eliminates_the_last_leader(self, protocol):
        leader = v4_candidate(leader=True, level_b=0)
        follower = v4_candidate(leader=False, level_b=0)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.leader is True
        _, post_leader = protocol.transition(follower, leader)
        assert post_leader.leader is True
