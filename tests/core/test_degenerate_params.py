"""Edge-of-domain tests: tiny populations and degenerate parameters.

DESIGN.md D4: for ``m = 1`` (only possible at n <= 2) the Tournament
nonce length ``Phi`` is 0, making Tournament a structural no-op; BackUp
still elects.  These tests pin the degenerate paths the formulas imply.
"""

import pytest

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator

from tests.core.helpers import v23_candidate


class TestPhiZero:
    @pytest.fixture
    def protocol(self):
        return PLLProtocol(PLLParameters(m=1))  # phi == 0

    def test_phi_is_zero(self, protocol):
        assert protocol.params.phi == 0
        assert protocol.params.rand_space == 1

    def test_everyone_is_born_finished(self, protocol):
        """index starts at 0 == Phi: the epidemic guard is immediately met."""
        leader = v23_candidate(leader=True, rand=0, index=0)
        follower = v23_candidate(leader=False, rand=0, index=0)
        post_leader, post_follower = protocol.transition(leader, follower)
        assert post_leader.index == 0
        assert post_leader.rand == 0

    def test_tournament_eliminates_nobody(self, protocol):
        """All nonces equal 0: Tournament cannot demote anyone."""
        a = v23_candidate(leader=True, rand=0, index=0)
        b = v23_candidate(leader=True, rand=0, index=0)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.leader and post_b.leader

    def test_n2_still_elects_via_backup(self, protocol):
        sim = AgentSimulator(protocol, 2, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1


class TestSmallPopulations:
    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("seed", range(5))
    def test_asymmetric_elects(self, n, seed):
        sim = AgentSimulator(PLLProtocol.for_population(n), n, seed=seed)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_n2_has_one_candidate_one_timer(self):
        sim = AgentSimulator(PLLProtocol.for_population(2), 2, seed=1)
        sim.run(1)
        statuses = sorted(state.status for state in sim.configuration())
        assert statuses == ["A", "B"]

    def test_oversized_m_still_correct(self):
        """m far above lg n costs time (E12) but never correctness."""
        protocol = PLLProtocol(PLLParameters(m=40))  # n=8 needs only m=3
        sim = AgentSimulator(protocol, 8, seed=2)
        sim.run_until_stabilized()
        assert sim.leader_count == 1


class TestMultisetIntegration:
    """PLL on the count-based engine (the large-n path of E9)."""

    @pytest.mark.parametrize("n", [8, 64])
    def test_pll_stabilizes_on_multiset_engine(self, n):
        from repro.engine.multiset import MultisetSimulator

        sim = MultisetSimulator(PLLProtocol.for_population(n), n, seed=n)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_symmetric_pll_stabilizes_on_multiset_engine(self):
        from repro.core.symmetric import SymmetricPLLProtocol
        from repro.engine.multiset import MultisetSimulator

        sim = MultisetSimulator(
            SymmetricPLLProtocol.for_population(24), 24, seed=5
        )
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_population_conserved_under_pll(self):
        from repro.engine.multiset import MultisetSimulator

        sim = MultisetSimulator(PLLProtocol.for_population(16), 16, seed=0)
        for _ in range(3000):
            sim.step()
        assert sum(sim.state_id_counts().values()) == 16
