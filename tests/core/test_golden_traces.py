"""Golden-trace regression pins for the full transition semantics.

These runs were executed once and their exact final configurations
embedded below.  Any change to any line of the transition logic — status
assignment, CountUp, epoch handling, the three modules, the coin rules —
will move these configurations and trip the test.  That is the point:
pseudocode-faithfulness changes must be deliberate and reviewed, never
accidental.  (The schedulers are seeded numpy generators, so the traces
are stable across platforms for a given numpy major line.)
"""

from repro.core.pll import PLLProtocol
from repro.core.state import PLLState
from repro.core.symmetric import SymmetricPLLProtocol
from repro.engine.simulator import AgentSimulator

N = 6
SEED = 2026
STEPS = 5000


def _state(values) -> PLLState:
    return PLLState(*values)


GOLDEN_ASYMMETRIC = [
    _state((True, "A", 4, 2, None, None, None, None, None, 3, None, None)),
    _state((False, "B", 4, 2, 18, None, None, None, None, None, None, None)),
    _state((False, "A", 4, 2, None, None, None, None, None, 3, None, None)),
    _state((False, "A", 4, 2, None, None, None, None, None, 3, None, None)),
    _state((False, "B", 4, 2, 12, None, None, None, None, None, None, None)),
    _state((False, "A", 4, 2, None, None, None, None, None, 3, None, None)),
]

GOLDEN_SYMMETRIC = [
    _state((False, "A", 4, 1, None, None, None, None, None, 5, "F0", None)),
    _state((False, "B", 4, 1, 11, None, None, None, None, None, "J", None)),
    _state((False, "A", 4, 1, None, None, None, None, None, 5, "F1", None)),
    _state((True, "A", 4, 1, None, None, None, None, None, 5, None, 0)),
    _state((False, "A", 4, 1, None, None, None, None, None, 5, "F0", None)),
    _state((False, "A", 4, 1, None, None, None, None, None, 5, "F1", None)),
]


class TestGoldenTraces:
    def test_asymmetric_pll_trace(self):
        sim = AgentSimulator(PLLProtocol.for_population(N), N, seed=SEED)
        sim.run(STEPS)
        assert sim.configuration() == GOLDEN_ASYMMETRIC

    def test_symmetric_pll_trace(self):
        sim = AgentSimulator(SymmetricPLLProtocol.for_population(N), N, seed=SEED)
        sim.run(STEPS)
        assert sim.configuration() == GOLDEN_SYMMETRIC

    def test_golden_configurations_are_stable_and_legal(self):
        """The pinned configurations themselves satisfy the invariants."""
        from repro.core.invariants import check_state_domains

        params = PLLProtocol.for_population(N).params
        for state in GOLDEN_ASYMMETRIC + GOLDEN_SYMMETRIC:
            check_state_domains(state, params)
        assert sum(1 for s in GOLDEN_ASYMMETRIC if s.leader) == 1
        assert sum(1 for s in GOLDEN_SYMMETRIC if s.leader) == 1
