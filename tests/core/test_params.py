"""Tests for repro.core.params."""

import math

import pytest

from repro.core.params import PLLParameters
from repro.errors import ParameterError


class TestConstruction:
    def test_rejects_non_positive_m(self):
        with pytest.raises(ParameterError):
            PLLParameters(m=0)

    def test_for_population_meets_paper_requirement(self):
        """m >= log2 n for every n in a wide range."""
        for n in (2, 3, 7, 64, 100, 1023, 4096):
            params = PLLParameters.for_population(n)
            assert params.m >= math.log2(n) - 1e-9

    def test_for_population_minimal_cases(self):
        assert PLLParameters.for_population(2).m == 1
        assert PLLParameters.for_population(4).m == 2
        assert PLLParameters.for_population(1024).m == 10

    def test_for_population_rejects_tiny_n(self):
        with pytest.raises(ParameterError):
            PLLParameters.for_population(1)

    def test_slack_multiplies_m(self):
        assert PLLParameters.for_population(256, slack=2.0).m == 16

    def test_slack_below_one_rejected(self):
        with pytest.raises(ParameterError):
            PLLParameters.for_population(256, slack=0.5)

    def test_validate_for_accepts_matching_n(self):
        PLLParameters(m=8).validate_for(256)

    def test_validate_for_rejects_oversized_n(self):
        with pytest.raises(ParameterError):
            PLLParameters(m=4).validate_for(1024)


class TestDerivedConstants:
    def test_lmax_is_5m(self):
        assert PLLParameters(m=7).lmax == 35

    def test_cmax_is_41m(self):
        assert PLLParameters(m=7).cmax == 287

    def test_phi_formula(self):
        # Phi = ceil((2/3) lg m)
        assert PLLParameters(m=1).phi == 0
        assert PLLParameters(m=2).phi == 1
        assert PLLParameters(m=8).phi == 2
        assert PLLParameters(m=12).phi == 3
        assert PLLParameters(m=64).phi == 4

    def test_rand_space(self):
        assert PLLParameters(m=8).rand_space == 4
        assert PLLParameters(m=1).rand_space == 1

    def test_frozen(self):
        params = PLLParameters(m=3)
        with pytest.raises(AttributeError):
            params.m = 4  # type: ignore[misc]


class TestStateBound:
    def test_bound_is_linear_in_m(self):
        """Lemma 3: the bound grows as O(m) = O(log n)."""
        ratios = [PLLParameters(m=m).state_bound() / m for m in (8, 16, 32, 64)]
        assert max(ratios) / min(ratios) < 1.6

    def test_bound_positive(self):
        assert PLLParameters(m=1).state_bound() > 0

    def test_rand_index_product_stays_sublinear(self):
        """2^Phi * (Phi+1) = O(m^(2/3) log m) << m for large m."""
        for m in (64, 256, 1024):
            params = PLLParameters(m=m)
            assert params.rand_space * (params.phi + 1) < m * 5
