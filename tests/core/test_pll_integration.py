"""Integration and property tests: full PLL executions.

These are the executable forms of the paper's global guarantees: exactly
one leader with probability 1 (stabilization), monotone non-increasing
leader count, at least one leader always, Lemma 4's group sizes, and the
Table 3 state inventory along arbitrary random executions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.invariants import (
    census,
    check_at_least_one_leader,
    check_lemma4,
    check_state_domains,
)
from repro.core.pll import PLLProtocol
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator


class TestStabilization:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 32, 100])
    def test_elects_exactly_one_leader(self, n):
        sim = AgentSimulator(PLLProtocol.for_population(n), n, seed=n)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds_stabilize(self, seed):
        sim = AgentSimulator(PLLProtocol.for_population(24), 24, seed=seed)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    @pytest.mark.parametrize("variant", ["no-tournament", "backup-only"])
    def test_variants_also_stabilize(self, variant):
        protocol = PLLProtocol.for_population(16, variant=variant)
        sim = AgentSimulator(protocol, 16, seed=3)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_all_agents_eventually_reach_epoch4(self):
        protocol = PLLProtocol.for_population(16)
        sim = AgentSimulator(protocol, 16, seed=5)
        budget = 400 * protocol.params.m * 16
        sim.run(
            budget,
            until=lambda s: all(st.epoch == 4 for st in s.configuration()),
            check_every=256,
        )
        assert all(state.epoch == 4 for state in sim.configuration())

    def test_stays_stable_after_stabilization(self):
        sim = AgentSimulator(PLLProtocol.for_population(12), 12, seed=2)
        sim.run_until_stabilized()
        sim.run(20000)
        assert sim.leader_count == 1


class TestRunInvariants:
    def test_leader_count_monotone_and_positive(self):
        sim = AgentSimulator(PLLProtocol.for_population(16), 16, seed=1)
        previous = sim.leader_count
        for _ in range(20000):
            sim.step()
            current = sim.leader_count
            assert 1 <= current <= previous
            previous = current

    def test_lemma4_holds_along_run(self):
        sim = AgentSimulator(PLLProtocol.for_population(20), 20, seed=4)
        for _ in range(100):
            sim.run(200)
            config = sim.configuration()
            check_lemma4(config)
            check_at_least_one_leader(config)

    def test_all_reached_states_are_table3_consistent(self):
        protocol = PLLProtocol.for_population(20)
        sim = AgentSimulator(protocol, 20, seed=6)
        sim.run(30000)
        for state in sim.interner.states():
            check_state_domains(state, protocol.params)

    def test_v_b_is_at_least_one_and_v_a_at_least_half(self):
        sim = AgentSimulator(PLLProtocol.for_population(9), 9, seed=7)
        sim.run(5000)
        counts = census(sim.configuration())
        assert counts.all_assigned
        assert counts.v_b >= 1
        assert 2 * counts.v_a >= counts.n


class TestPropertyBased:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=120,
        )
    )
    @settings(max_examples=40)
    def test_any_schedule_preserves_invariants(self, pairs):
        """Adversarial-schedule safety: Lemma 4 + domains + >= 1 leader
        hold on every prefix of every deterministic schedule."""
        protocol = PLLProtocol.for_population(6)
        sim = AgentSimulator(
            protocol, 6, scheduler=DeterministicSchedule(list(pairs))
        )
        for _ in range(len(pairs)):
            sim.step()
            config = sim.configuration()
            check_at_least_one_leader(config)
            check_lemma4(config)
        for state in sim.interner.states():
            check_state_domains(state, protocol.params)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_random_runs_stabilize_to_one_leader(self, seed):
        sim = AgentSimulator(PLLProtocol.for_population(10), 10, seed=seed)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_cache_agrees_with_direct_transitions(self, seed):
        """Memoized execution equals uncached execution step for step."""
        protocol = PLLProtocol.for_population(8)
        cached = AgentSimulator(protocol, 8, seed=seed)
        uncached = AgentSimulator(protocol, 8, seed=seed, cache_entries=0)
        cached.run(400)
        uncached.run(400)
        assert cached.configuration() == uncached.configuration()
