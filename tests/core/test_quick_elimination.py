"""Tests for QuickElimination (Algorithm 3) through full PLL transitions."""

import pytest

from repro.core.pll import PLLProtocol

from tests.core.helpers import timer, v1_candidate


@pytest.fixture
def protocol(params8):
    return PLLProtocol(params8)


class TestCoinFlips:
    def test_initiating_leader_counts_a_head(self, protocol):
        leader = v1_candidate(leader=True, level_q=3, done=False)
        follower = v1_candidate(leader=False, level_q=0, done=True)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.level_q == 4
        assert post_leader.done is False

    def test_responding_leader_sees_tail_and_stops(self, protocol):
        leader = v1_candidate(leader=True, level_q=3, done=False)
        follower = v1_candidate(leader=False, level_q=0, done=True)
        _, post_leader = protocol.transition(follower, leader)
        assert post_leader.done is True
        assert post_leader.level_q == 3

    def test_head_against_timer_follower(self, protocol):
        """Any follower works as coin partner, including V_B agents."""
        leader = v1_candidate(leader=True, level_q=0, done=False)
        post_leader, _ = protocol.transition(leader, timer(count=3))
        assert post_leader.level_q == 1

    def test_stopped_leader_does_not_flip(self, protocol):
        leader = v1_candidate(leader=True, level_q=2, done=True)
        follower = v1_candidate(leader=False, level_q=2, done=True)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.level_q == 2
        assert post_leader.done is True

    def test_leader_pair_does_not_flip(self, protocol):
        """Coin flips need a leader-follower pair (independence argument)."""
        a = v1_candidate(leader=True, level_q=1, done=False)
        b = v1_candidate(leader=True, level_q=2, done=False)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.level_q == 1 and post_b.level_q == 2
        assert post_a.done is False and post_b.done is False

    def test_level_caps_at_lmax(self, protocol):
        """DESIGN.md D1: the paper's max(levelQ+1, lmax) is a min-cap."""
        lmax = protocol.params.lmax
        leader = v1_candidate(leader=True, level_q=lmax, done=False)
        post_leader, _ = protocol.transition(leader, timer())
        assert post_leader.level_q == lmax


class TestMaxLevelEpidemic:
    def test_smaller_done_leader_is_eliminated(self, protocol):
        low = v1_candidate(leader=True, level_q=1, done=True)
        high = v1_candidate(leader=True, level_q=4, done=True)
        post_low, post_high = protocol.transition(low, high)
        assert post_low.leader is False
        assert post_low.level_q == 4
        assert post_high.leader is True

    def test_equal_levels_no_elimination(self, protocol):
        a = v1_candidate(leader=True, level_q=3, done=True)
        b = v1_candidate(leader=True, level_q=3, done=True)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.leader and post_b.leader

    def test_followers_relay_the_maximum(self, protocol):
        low = v1_candidate(leader=False, level_q=1, done=True)
        high = v1_candidate(leader=False, level_q=5, done=True)
        post_low, _ = protocol.transition(low, high)
        assert post_low.level_q == 5
        assert post_low.leader is False

    def test_not_done_pairs_do_not_compare(self, protocol):
        """Line 39 requires both agents stopped."""
        playing = v1_candidate(leader=True, level_q=1, done=False)
        stopped = v1_candidate(leader=True, level_q=4, done=True)
        post_playing, _ = protocol.transition(playing, stopped)
        assert post_playing.leader is True
        assert post_playing.level_q == 1

    def test_tail_then_compare_in_same_interaction(self, protocol):
        """A responder leader stops (line 37) and can immediately lose the
        comparison of lines 39-42 within the same interaction."""
        follower = v1_candidate(leader=False, level_q=6, done=True)
        leader = v1_candidate(leader=True, level_q=2, done=False)
        _, post_leader = protocol.transition(follower, leader)
        assert post_leader.done is True
        assert post_leader.leader is False  # eliminated by the larger value
        assert post_leader.level_q == 6

    def test_timer_does_not_join_epidemic(self, protocol):
        """V_B agents carry no levelQ and never relay it."""
        done_leader = v1_candidate(leader=True, level_q=2, done=True)
        post_leader, post_timer = protocol.transition(done_leader, timer())
        assert post_leader.level_q == 2
        assert post_timer.count == 1
