"""Builders for group-consistent PLL states used across core tests."""

from __future__ import annotations

from repro.core.state import (
    PLLState,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_TIMER,
)


def initial() -> PLLState:
    return PLLState.initial()


def v1_candidate(
    leader: bool = True,
    level_q: int = 0,
    done: bool = False,
    color: int = 0,
    coin: str | None = None,
) -> PLLState:
    """A V_A agent in epoch 1."""
    return PLLState(
        leader=leader,
        status=STATUS_CANDIDATE,
        epoch=1,
        color=color,
        level_q=level_q,
        done=done,
        coin=coin,
    )


def v23_candidate(
    leader: bool = True,
    rand: int = 0,
    index: int = 0,
    epoch: int = 2,
    color: int = 0,
    coin: str | None = None,
) -> PLLState:
    """A V_A agent in epoch 2 or 3 (Tournament)."""
    return PLLState(
        leader=leader,
        status=STATUS_CANDIDATE,
        epoch=epoch,
        color=color,
        rand=rand,
        index=index,
        coin=coin,
    )


def v4_candidate(
    leader: bool = True,
    level_b: int = 0,
    color: int = 0,
    coin: str | None = None,
    duel: int | None = None,
) -> PLLState:
    """A V_A agent in epoch 4 (BackUp)."""
    return PLLState(
        leader=leader,
        status=STATUS_CANDIDATE,
        epoch=4,
        color=color,
        level_b=level_b,
        coin=coin,
        duel=duel,
    )


def timer(
    count: int = 0, color: int = 0, epoch: int = 1, coin: str | None = None
) -> PLLState:
    """A V_B timer agent (always a follower)."""
    return PLLState(
        leader=False,
        status=STATUS_TIMER,
        epoch=epoch,
        color=color,
        count=count,
        coin=coin,
    )


__all__ = [
    "initial",
    "timer",
    "v1_candidate",
    "v23_candidate",
    "v4_candidate",
    "STATUS_CANDIDATE",
    "STATUS_INITIAL",
    "STATUS_TIMER",
]
