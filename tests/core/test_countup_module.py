"""Tests for repro.core.countup_module (Algorithm 2) via PLL transitions."""

from repro.core.params import PLLParameters
from repro.core.countup_module import count_up
from repro.core.state import WorkAgent

from tests.core.helpers import timer, v1_candidate


def apply_count_up(state0, state1, m=8):
    agents = [WorkAgent(state0), WorkAgent(state1)]
    count_up(agents, PLLParameters(m=m))
    return agents


class TestTimerCounting:
    def test_both_timers_count(self):
        a, b = apply_count_up(timer(count=0), timer(count=5))
        assert (a.count, b.count) == (1, 6)

    def test_candidate_does_not_count(self):
        a, b = apply_count_up(v1_candidate(), timer(count=0))
        assert a.count is None
        assert b.count == 1

    def test_rollover_advances_color_and_ticks(self):
        m = 8
        a, _ = apply_count_up(timer(count=41 * m - 1), timer(count=0), m=m)
        assert a.count == 0
        assert a.color == 1
        assert a.tick is True

    def test_no_tick_without_rollover(self):
        a, b = apply_count_up(timer(count=3), timer(count=4))
        assert not a.tick and not b.tick


class TestColorEpidemic:
    def test_behind_agent_adopts_next_color(self):
        a, b = apply_count_up(timer(count=5, color=0), timer(count=9, color=1))
        assert a.color == 1
        assert a.tick is True
        assert a.count == 0  # timers reset their count on adoption
        assert b.color == 1 and not b.tick

    def test_candidate_adopts_without_count_reset(self):
        a, b = apply_count_up(v1_candidate(color=0), timer(count=9, color=1))
        assert a.color == 1
        assert a.tick is True
        assert a.count is None

    def test_wraparound_adoption(self):
        """color 2 meets color 0: 0 == 2+1 (mod 3), so 2 adopts 0."""
        a, b = apply_count_up(timer(count=1, color=2), timer(count=1, color=0))
        assert a.color == 0
        assert b.color == 0

    def test_two_apart_is_one_behind_cyclically(self):
        """color 0 meets color 2: the color-0 agent is NOT one behind."""
        a, b = apply_count_up(timer(count=1, color=0), timer(count=1, color=2))
        assert a.color == 0  # 0's successor is 1, not 2: no adoption by a
        assert b.color == 0  # but 2's successor IS 0: b adopts

    def test_equal_colors_no_adoption(self):
        a, b = apply_count_up(timer(count=1, color=1), timer(count=2, color=1))
        assert a.color == b.color == 1
        assert not a.tick and not b.tick

    def test_rollover_then_partner_adopts_within_same_interaction(self):
        """A rollover's new color is seen by the partner immediately."""
        m = 8
        a, b = apply_count_up(
            timer(count=41 * m - 1, color=0), timer(count=3, color=0), m=m
        )
        assert a.color == 1
        assert b.color == 1
        assert b.tick is True

    def test_adoption_is_not_chained_twice(self):
        """After one adoption the colors are equal; the other direction
        cannot then fire in the same interaction."""
        a, b = apply_count_up(timer(count=5, color=1), timer(count=5, color=2))
        assert (a.color, b.color) == (2, 2)
