"""Tests for Tournament (Algorithm 4) through full PLL transitions."""

import pytest

from repro.core.pll import PLLProtocol

from tests.core.helpers import timer, v23_candidate


@pytest.fixture
def protocol(params8):
    return PLLProtocol(params8)  # m=8 -> Phi=2, rand in [0, 4)


class TestNonceAssembly:
    def test_initiating_leader_appends_zero_bit(self, protocol):
        leader = v23_candidate(leader=True, rand=1, index=1)
        follower = v23_candidate(leader=False, rand=0, index=0)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.rand == 2  # 2*1 + 0
        assert post_leader.index == 2

    def test_responding_leader_appends_one_bit(self, protocol):
        leader = v23_candidate(leader=True, rand=1, index=1)
        follower = v23_candidate(leader=False, rand=0, index=0)
        _, post_leader = protocol.transition(follower, leader)
        assert post_leader.rand == 3  # 2*1 + 1
        assert post_leader.index == 2

    def test_finished_leader_stops_assembling(self, protocol):
        phi = protocol.params.phi
        leader = v23_candidate(leader=True, rand=3, index=phi)
        follower = v23_candidate(leader=False, rand=0, index=0)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.rand == 3
        assert post_leader.index == phi

    def test_follower_advances_index_without_bits(self, protocol):
        """DESIGN.md D3: followers progress so they can relay the epidemic."""
        follower = v23_candidate(leader=False, rand=0, index=0)
        other_follower = v23_candidate(leader=False, rand=0, index=1)
        post_a, post_b = protocol.transition(follower, other_follower)
        assert post_a.index == 1
        assert post_a.rand == 0  # followers never generate nonce bits
        assert post_b.index == 2
        assert post_b.rand == 0

    def test_no_progress_against_a_leader(self, protocol):
        """The trigger is a *follower* partner (one coin per interaction)."""
        a = v23_candidate(leader=True, rand=0, index=0)
        b = v23_candidate(leader=True, rand=0, index=1)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.index == 0
        assert post_b.index == 1

    def test_timer_partner_counts_as_follower(self, protocol):
        leader = v23_candidate(leader=True, rand=0, index=0, epoch=2)
        post_leader, _ = protocol.transition(leader, timer(epoch=2))
        assert post_leader.index == 1


class TestMaxNonceEpidemic:
    def test_smaller_nonce_leader_eliminated(self, protocol):
        phi = protocol.params.phi
        low = v23_candidate(leader=True, rand=1, index=phi)
        high = v23_candidate(leader=True, rand=3, index=phi)
        post_low, post_high = protocol.transition(low, high)
        assert post_low.leader is False
        assert post_low.rand == 3
        assert post_high.leader is True

    def test_equal_nonces_both_survive(self, protocol):
        phi = protocol.params.phi
        a = v23_candidate(leader=True, rand=2, index=phi)
        b = v23_candidate(leader=True, rand=2, index=phi)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.leader and post_b.leader

    def test_unfinished_agents_do_not_compare(self, protocol):
        phi = protocol.params.phi
        unfinished = v23_candidate(leader=True, rand=0, index=phi - 1)
        finished = v23_candidate(leader=True, rand=3, index=phi)
        post_unfinished, _ = protocol.transition(unfinished, finished)
        assert post_unfinished.leader is True

    def test_follower_relays_max_nonce(self, protocol):
        phi = protocol.params.phi
        relay = v23_candidate(leader=False, rand=3, index=phi)
        victim = v23_candidate(leader=True, rand=1, index=phi)
        _, post_victim = protocol.transition(relay, victim)
        assert post_victim.leader is False
        assert post_victim.rand == 3

    def test_follower_nonce_never_exceeds_leaders(self, protocol):
        """A follower's rand only comes from the epidemic, so a lone
        max-nonce leader can never be eliminated by a follower."""
        phi = protocol.params.phi
        follower = v23_candidate(leader=False, rand=2, index=phi)
        leader = v23_candidate(leader=True, rand=2, index=phi)
        post_follower, post_leader = protocol.transition(follower, leader)
        assert post_leader.leader is True
        assert post_follower.leader is False


class TestTwoRounds:
    def test_epoch_boundary_resets_rand_and_index(self, protocol):
        """Entering epoch 3 re-initializes the Tournament variables."""
        veteran = v23_candidate(leader=True, rand=3, index=2, epoch=2)
        herald = v23_candidate(leader=False, rand=0, index=0, epoch=3)
        post_veteran, _ = protocol.transition(veteran, herald)
        assert post_veteran.epoch == 3
        assert post_veteran.rand == 0
        assert post_veteran.index in (0, 1)  # may progress immediately

    def test_epoch_2_and_3_both_run_tournament(self, protocol):
        for epoch in (2, 3):
            leader = v23_candidate(leader=True, rand=0, index=0, epoch=epoch)
            follower = v23_candidate(leader=False, rand=0, index=1, epoch=epoch)
            post_leader, _ = protocol.transition(leader, follower)
            assert post_leader.index == 1
