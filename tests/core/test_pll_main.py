"""Tests for Algorithm 1's main transition: status, epochs, dispatch."""

import pytest

from repro.core.pll import PLLProtocol, VARIANTS
from repro.core.state import (
    EPOCH_MAX,
    PLLState,
    STATUS_CANDIDATE,
    STATUS_TIMER,
)
from repro.errors import ParameterError

from tests.core.helpers import initial, timer, v1_candidate, v23_candidate


@pytest.fixture
def protocol(params8):
    return PLLProtocol(params8)


class TestStatusAssignment:
    def test_xx_creates_candidate_and_timer(self, protocol):
        post0, post1 = protocol.transition(initial(), initial())
        assert post0.status == STATUS_CANDIDATE
        assert post0.leader is True
        assert post0.done is False
        # The fresh candidate immediately flips a head against the fresh
        # follower within the same interaction (lines 35-36):
        assert post0.level_q == 1
        assert post1.status == STATUS_TIMER
        assert post1.leader is False
        assert post1.count == 1  # CountUp already ran once

    def test_x_meets_candidate_becomes_follower(self, protocol):
        post0, _ = protocol.transition(initial(), v1_candidate())
        assert post0.status == STATUS_CANDIDATE
        assert post0.leader is False
        assert post0.done is True
        assert post0.level_q == 0

    def test_x_meets_timer_becomes_follower(self, protocol):
        _, post1 = protocol.transition(timer(), initial())
        assert post1.status == STATUS_CANDIDATE
        assert post1.leader is False
        assert post1.done is True

    def test_assigned_agents_keep_status(self, protocol):
        post0, post1 = protocol.transition(v1_candidate(), timer())
        assert post0.status == STATUS_CANDIDATE
        assert post1.status == STATUS_TIMER


class TestEpochManagement:
    def test_epochs_merge_to_maximum(self, protocol):
        behind = v1_candidate(leader=False, done=True)
        ahead = v23_candidate(leader=True, epoch=3)
        post_behind, post_ahead = protocol.transition(behind, ahead)
        assert post_behind.epoch == 3
        assert post_ahead.epoch == 3

    def test_entering_epoch2_initializes_tournament_variables(self, protocol):
        behind = v1_candidate(leader=True, level_q=7, done=True)
        ahead = v23_candidate(leader=False, epoch=2)
        post_behind, _ = protocol.transition(behind, ahead)
        assert post_behind.rand == 0
        assert post_behind.index in (0, 1)  # may progress this interaction
        assert post_behind.level_q is None  # stale group variables cleared
        assert post_behind.done is None

    def test_entering_epoch4_initializes_level_b(self, protocol):
        behind = v23_candidate(leader=True, rand=3, index=2, epoch=3)
        ahead = PLLState(
            leader=False, status=STATUS_CANDIDATE, epoch=4, color=0, level_b=2
        )
        post_behind, _ = protocol.transition(behind, ahead)
        assert post_behind.epoch == 4
        assert post_behind.level_b in (0, 2)  # 0, possibly pulled by epidemic
        assert post_behind.rand is None
        assert post_behind.index is None

    def test_timer_rollover_advances_both_epochs(self, protocol):
        cmax = protocol.params.cmax
        rolling = timer(count=cmax - 1)
        partner = v1_candidate(leader=False, done=True)
        post_rolling, post_partner = protocol.transition(rolling, partner)
        assert post_rolling.epoch == 2
        assert post_rolling.color == 1
        # Partner adopts the new color (tick) and advances too:
        assert post_partner.epoch == 2
        assert post_partner.color == 1

    def test_epoch_caps_at_four(self, protocol):
        cmax = protocol.params.cmax
        rolling = timer(count=cmax - 1, epoch=4, color=1)
        partner = timer(count=0, epoch=4, color=1)
        post_rolling, _ = protocol.transition(rolling, partner)
        assert post_rolling.epoch == EPOCH_MAX
        assert post_rolling.color == 2  # colors keep cycling

    def test_x_agent_pulled_to_late_epoch_gets_its_group(self, protocol):
        late = v23_candidate(leader=True, epoch=3)
        post_x, _ = protocol.transition(initial(), late)
        assert post_x.epoch == 3
        assert post_x.status == STATUS_CANDIDATE
        assert post_x.leader is False
        assert post_x.rand == 0  # epoch-3 group variables, not epoch-1's
        assert post_x.level_q is None


class TestVariants:
    def test_unknown_variant_rejected(self, params8):
        with pytest.raises(ParameterError):
            PLLProtocol(params8, variant="bogus")

    def test_variant_names(self, params8):
        assert PLLProtocol(params8).name == "PLL"
        assert PLLProtocol(params8, variant="no-tournament").name == "PLL[no-tournament]"
        assert set(VARIANTS) == {"full", "no-tournament", "backup-only"}

    def test_no_tournament_skips_nonce_assembly(self, params8):
        protocol = PLLProtocol(params8, variant="no-tournament")
        leader = v23_candidate(leader=True, rand=0, index=0)
        follower = v23_candidate(leader=False, rand=0, index=0)
        post_leader, _ = protocol.transition(leader, follower)
        assert post_leader.index == 0
        assert post_leader.rand == 0

    def test_backup_only_skips_quick_elimination(self, params8):
        protocol = PLLProtocol(params8, variant="backup-only")
        leader = v1_candidate(leader=True, level_q=0, done=False)
        post_leader, _ = protocol.transition(leader, timer())
        assert post_leader.level_q == 0
        assert post_leader.done is False

    def test_backup_module_active_in_all_variants(self, params8):
        from tests.core.helpers import v4_candidate

        for variant in VARIANTS:
            protocol = PLLProtocol(params8, variant=variant)
            a = v4_candidate(leader=True, level_b=1)
            b = v4_candidate(leader=True, level_b=1)
            post_a, post_b = protocol.transition(a, b)
            assert (post_a.leader, post_b.leader) == (True, False)


class TestProtocolInterface:
    def test_initial_state(self, protocol):
        assert protocol.initial_state() == PLLState.initial()

    def test_output_map(self, protocol):
        assert protocol.output(PLLState.initial()) == "L"
        assert protocol.output(timer()) == "F"

    def test_state_bound_delegates_to_params(self, protocol, params8):
        assert protocol.state_bound() == params8.state_bound()

    def test_for_population_validates(self):
        protocol = PLLProtocol.for_population(256)
        protocol.params.validate_for(256)

    def test_transition_is_pure(self, protocol):
        """Inputs are not mutated (frozen NamedTuples by construction)."""
        a, b = initial(), timer(count=5)
        protocol.transition(a, b)
        assert a == initial()
        assert b == timer(count=5)
