"""Tests for repro.core.invariants."""

import pytest

from repro.core.invariants import (
    census,
    check_at_least_one_leader,
    check_coin_balance,
    check_lemma4,
    check_state_domains,
)
from repro.core.params import PLLParameters
from repro.core.state import PLLState
from repro.errors import SimulationError

from tests.core.helpers import initial, timer, v1_candidate, v23_candidate, v4_candidate


class TestCensus:
    def test_counts_groups(self):
        config = [initial(), timer(), v1_candidate(), v1_candidate(leader=False, done=True)]
        counts = census(config)
        assert counts.v_x == 1
        assert counts.v_b == 1
        assert counts.v_a == 2
        assert counts.leaders == 2  # the X agent and the candidate
        assert counts.followers == 2

    def test_all_assigned_flag(self):
        assert not census([initial(), timer()]).all_assigned
        assert census([v1_candidate(), timer()]).all_assigned


class TestLemma4:
    def test_passes_on_balanced_configuration(self):
        config = [v1_candidate(), timer(), v1_candidate(leader=False, done=True), timer()]
        check_lemma4(config)

    def test_skips_while_unassigned_agents_remain(self):
        # Violating proportions, but an X agent means the lemma's
        # precondition is unmet: no exception.
        check_lemma4([initial(), timer(), timer(), timer()])

    def test_rejects_missing_timers(self):
        config = [v1_candidate(), v1_candidate(leader=False, done=True)]
        with pytest.raises(SimulationError):
            check_lemma4(config)

    def test_rejects_too_few_candidates(self):
        config = [v1_candidate(), timer(), timer(), timer()]
        with pytest.raises(SimulationError):
            check_lemma4(config)

    def test_rejects_too_many_leaders(self):
        config = [v1_candidate(), v1_candidate(), v1_candidate(), timer()]
        with pytest.raises(SimulationError):
            check_lemma4(config)


class TestLeaderPresence:
    def test_accepts_single_leader(self):
        check_at_least_one_leader([v1_candidate(), timer()])

    def test_rejects_zero_leaders(self):
        with pytest.raises(SimulationError):
            check_at_least_one_leader(
                [v1_candidate(leader=False, done=True), timer()]
            )


class TestStateDomains:
    @pytest.fixture
    def params(self):
        return PLLParameters(m=8)

    def test_accepts_valid_states(self, params):
        for state in (
            initial(),
            timer(count=5),
            v1_candidate(level_q=3),
            v23_candidate(rand=3, index=2, epoch=3),
            v4_candidate(level_b=7),
        ):
            check_state_domains(state, params)

    def test_rejects_count_out_of_domain(self, params):
        with pytest.raises(SimulationError):
            check_state_domains(timer(count=params.cmax), params)

    def test_rejects_leader_timer(self, params):
        bad = timer()._replace(leader=True)
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)

    def test_rejects_stale_group_variables(self, params):
        bad = v23_candidate()._replace(level_q=0)
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)

    def test_rejects_level_q_above_lmax(self, params):
        with pytest.raises(SimulationError):
            check_state_domains(v1_candidate(level_q=params.lmax + 1), params)

    def test_rejects_rand_outside_space(self, params):
        with pytest.raises(SimulationError):
            check_state_domains(
                v23_candidate(rand=params.rand_space, index=0), params
            )

    def test_rejects_unassigned_follower(self, params):
        bad = initial()._replace(leader=False)
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)

    def test_rejects_unknown_status(self, params):
        bad = initial()._replace(status="Z")
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)

    def test_rejects_epoch_out_of_range(self, params):
        bad = PLLState(leader=True, status="X", epoch=5, color=0)
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)

    def test_rejects_leader_with_coin(self, params):
        bad = v1_candidate(leader=True, coin="J")
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)

    def test_rejects_follower_with_duel(self, params):
        bad = v4_candidate(leader=False)._replace(duel=1)
        with pytest.raises(SimulationError):
            check_state_domains(bad, params)


class TestCoinBalance:
    def test_balanced_configuration(self):
        config = [
            v1_candidate(leader=False, done=True, coin="F0"),
            v1_candidate(leader=False, done=True, coin="F1"),
            v1_candidate(),
        ]
        check_coin_balance(config)

    def test_unbalanced_configuration(self):
        config = [v1_candidate(leader=False, done=True, coin="F0"), timer()]
        with pytest.raises(SimulationError):
            check_coin_balance(config)
