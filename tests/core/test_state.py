"""Tests for repro.core.state."""

from repro.core.state import (
    PLLState,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_TIMER,
    WorkAgent,
)


class TestPLLState:
    def test_initial_matches_table3(self):
        state = PLLState.initial()
        assert state.leader is True
        assert state.status == STATUS_INITIAL
        assert state.epoch == 1
        assert state.color == 0

    def test_initial_additional_variables_undefined(self):
        state = PLLState.initial()
        for field in ("count", "level_q", "done", "rand", "index", "level_b"):
            assert getattr(state, field) is None

    def test_group_predicates(self):
        assert PLLState.initial().unassigned
        timer = PLLState(leader=False, status=STATUS_TIMER, epoch=1, color=0, count=0)
        assert timer.in_v_b and not timer.in_v_a
        candidate = PLLState(
            leader=True, status=STATUS_CANDIDATE, epoch=1, color=0, level_q=0, done=False
        )
        assert candidate.in_v_a and not candidate.in_v_b

    def test_states_are_hashable_values(self):
        assert PLLState.initial() == PLLState.initial()
        assert hash(PLLState.initial()) == hash(PLLState.initial())
        assert PLLState.initial() != PLLState.initial()._replace(color=1)


class TestWorkAgent:
    def test_roundtrip_preserves_fields(self):
        state = PLLState(
            leader=False,
            status=STATUS_CANDIDATE,
            epoch=3,
            color=2,
            rand=5,
            index=2,
        )
        assert WorkAgent(state).freeze() == state

    def test_tick_starts_false(self):
        """Line 7 of Algorithm 1: tick is reset on interaction entry."""
        agent = WorkAgent(PLLState.initial())
        assert agent.tick is False

    def test_tick_not_persisted(self):
        """DESIGN.md D2: a raised tick never reaches the stored state."""
        agent = WorkAgent(PLLState.initial())
        agent.tick = True
        frozen = agent.freeze()
        assert not hasattr(frozen, "tick")

    def test_epoch_at_entry_mirrors_init_variable(self):
        """DESIGN.md D6: `init` == stored epoch at interaction entry."""
        state = PLLState(
            leader=True, status=STATUS_CANDIDATE, epoch=2, color=0, rand=0, index=0
        )
        assert WorkAgent(state).epoch_at_entry == 2

    def test_mutation_does_not_touch_source_state(self):
        state = PLLState.initial()
        agent = WorkAgent(state)
        agent.color = 2
        assert state.color == 0

    def test_group_predicates(self):
        agent = WorkAgent(PLLState.initial())
        assert agent.unassigned
        agent.status = STATUS_TIMER
        assert agent.in_v_b
        agent.status = STATUS_CANDIDATE
        assert agent.in_v_a
