"""Tests for the symmetric variant (Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coins.symmetric_coin import COIN_HEAD, COIN_J, COIN_TAIL
from repro.core.invariants import (
    check_at_least_one_leader,
    check_coin_balance,
    check_state_domains,
)
from repro.core.state import (
    PLLState,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_INITIAL_ALT,
    STATUS_TIMER,
)
from repro.core.symmetric import SymmetricPLLProtocol
from repro.engine.protocol import check_symmetry
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator
from repro.errors import ParameterError

from tests.core.helpers import initial, timer, v1_candidate, v4_candidate


@pytest.fixture
def protocol(params8):
    return SymmetricPLLProtocol(params8)


class TestStatusRules:
    def test_xx_to_yy(self, protocol):
        post0, post1 = protocol.transition(initial(), initial())
        assert post0.status == STATUS_INITIAL_ALT
        assert post1.status == STATUS_INITIAL_ALT
        assert post0.leader and post1.leader

    def test_yy_back_to_xx(self, protocol):
        y_state = initial()._replace(status=STATUS_INITIAL_ALT)
        post0, post1 = protocol.transition(y_state, y_state)
        assert post0.status == STATUS_INITIAL
        assert post1.status == STATUS_INITIAL

    def test_xy_assigns_by_state_not_role(self, protocol):
        y_state = initial()._replace(status=STATUS_INITIAL_ALT)
        # X as initiator:
        post_x, post_y = protocol.transition(initial(), y_state)
        assert post_x.status == STATUS_CANDIDATE and post_x.leader
        assert post_y.status == STATUS_TIMER and not post_y.leader
        # X as responder — same outcome per state:
        post_y2, post_x2 = protocol.transition(y_state, initial())
        assert post_x2.status == STATUS_CANDIDATE and post_x2.leader
        assert post_y2.status == STATUS_TIMER and not post_y2.leader

    def test_fresh_timer_gets_coin_j(self, protocol):
        y_state = initial()._replace(status=STATUS_INITIAL_ALT)
        _, post_timer = protocol.transition(initial(), y_state)
        assert post_timer.coin == COIN_J

    def test_late_starter_becomes_follower_with_coin(self, protocol):
        post_x, _ = protocol.transition(initial(), v1_candidate())
        assert post_x.status == STATUS_CANDIDATE
        assert not post_x.leader
        assert post_x.coin == COIN_J
        assert post_x.done is True

    def test_y_meets_assigned_converts_too(self, protocol):
        y_state = initial()._replace(status=STATUS_INITIAL_ALT)
        post_y, _ = protocol.transition(y_state, timer(coin=COIN_J))
        assert post_y.status == STATUS_CANDIDATE
        assert not post_y.leader

    def test_conversion_at_late_epoch_gets_right_group(self, protocol):
        """A Y agent already in epoch 4 converts into the epoch-4 group."""
        late_y = PLLState(
            leader=True, status=STATUS_INITIAL_ALT, epoch=4, color=0
        )
        partner = v4_candidate(leader=False, level_b=1, coin=COIN_J)
        post_y, _ = protocol.transition(late_y, partner)
        assert post_y.status == STATUS_CANDIDATE
        assert post_y.level_b is not None
        assert post_y.level_q is None


class TestSymmetricCoinFlips:
    def test_head_read_increments_level_q(self, protocol):
        leader = v1_candidate(leader=True, level_q=2, done=False)
        head_follower = v1_candidate(
            leader=False, level_q=0, done=True, coin=COIN_HEAD
        )
        post_leader, _ = protocol.transition(leader, head_follower)
        assert post_leader.level_q == 3

    def test_tail_read_stops_the_lottery(self, protocol):
        leader = v1_candidate(leader=True, level_q=2, done=False)
        tail_follower = v1_candidate(
            leader=False, level_q=0, done=True, coin=COIN_TAIL
        )
        post_leader, _ = protocol.transition(leader, tail_follower)
        assert post_leader.done is True

    def test_unsettled_coin_is_no_flip(self, protocol):
        leader = v1_candidate(leader=True, level_q=2, done=False)
        unsettled = v1_candidate(leader=False, level_q=0, done=True, coin=COIN_J)
        post_leader, _ = protocol.transition(leader, unsettled)
        assert post_leader.level_q == 2
        assert post_leader.done is False

    def test_role_does_not_matter_for_flip_value(self, protocol):
        """The same coin read gives the same result from either role."""
        leader = v1_candidate(leader=True, level_q=2, done=False)
        head = v1_candidate(leader=False, level_q=0, done=True, coin=COIN_HEAD)
        as_initiator, _ = protocol.transition(leader, head)
        _, as_responder = protocol.transition(head, leader)
        assert as_initiator.level_q == as_responder.level_q == 3

    def test_follower_pair_churns_coins(self, protocol):
        a = v1_candidate(leader=False, done=True, coin=COIN_J)
        b = v1_candidate(leader=False, done=True, coin=COIN_J)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.coin == post_b.coin == "K"

    def test_demoted_leader_gets_fresh_j_coin(self, protocol):
        low = v1_candidate(leader=True, level_q=0, done=True)
        high = v1_candidate(leader=False, level_q=5, done=True, coin=COIN_HEAD)
        post_low, post_high = protocol.transition(low, high)
        assert post_low.leader is False
        assert post_low.coin == COIN_J
        # The relaying follower's settled coin is untouched (balance!):
        assert post_high.coin == COIN_HEAD


class TestDuelBits:
    def test_equal_duel_bits_no_demotion(self, protocol):
        a = v4_candidate(leader=True, level_b=0, duel=1)
        b = v4_candidate(leader=True, level_b=0, duel=1)
        post_a, post_b = protocol.transition(a, b)
        assert post_a.leader and post_b.leader

    def test_different_duel_bits_tail_concedes(self, protocol):
        head = v4_candidate(leader=True, level_b=0, duel=1)
        tail = v4_candidate(leader=True, level_b=0, duel=0)
        post_head, post_tail = protocol.transition(head, tail)
        assert post_head.leader is True
        assert post_tail.leader is False
        # Role independence:
        post_tail2, post_head2 = protocol.transition(tail, head)
        assert post_head2.leader is True
        assert post_tail2.leader is False

    def test_duel_bit_refreshes_from_coin_reads(self, protocol):
        leader = v4_candidate(leader=True, level_b=0, duel=0)
        head_follower = v4_candidate(leader=False, level_b=0, coin=COIN_HEAD)
        post_leader, _ = protocol.transition(leader, head_follower)
        assert post_leader.duel == 1


class TestSymmetryProperty:
    def test_for_population_rejects_n2(self):
        """DESIGN.md D8: no symmetric protocol elects from 2 agents."""
        with pytest.raises(ParameterError):
            SymmetricPLLProtocol.for_population(2)

    def test_n2_never_stabilizes_structurally(self, protocol):
        """With n=2 the configuration oscillates X,X <-> Y,Y forever."""
        sim = AgentSimulator(protocol, 2, seed=0)
        sim.run(2000)
        assert sim.leader_count == 2

    @pytest.mark.parametrize("n", [3, 4, 9, 33])
    def test_stabilizes_for_n_at_least_3(self, n):
        sim = AgentSimulator(SymmetricPLLProtocol.for_population(n), n, seed=n)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_symmetry_over_reached_states(self):
        protocol = SymmetricPLLProtocol.for_population(12)
        sim = AgentSimulator(protocol, 12, seed=3)
        sim.run(30000)
        check_symmetry(protocol, sim.interner.states())

    def test_is_symmetric_flag(self, protocol):
        assert protocol.is_symmetric()

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=100,
        )
    )
    @settings(max_examples=30)
    def test_any_schedule_preserves_balance_and_domains(self, pairs):
        protocol = SymmetricPLLProtocol.for_population(5)
        sim = AgentSimulator(
            protocol, 5, scheduler=DeterministicSchedule(list(pairs))
        )
        for _ in range(len(pairs)):
            sim.step()
            config = sim.configuration()
            check_at_least_one_leader(config)
            check_coin_balance(config)
        for state in sim.interner.states():
            check_state_domains(state, protocol.params)
