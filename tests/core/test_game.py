"""Tests for the abstract competition game (Section 3.1.1)."""

import numpy as np
import pytest

from repro.analysis.distributions import survivor_law_violations
from repro.core.game import (
    play_competition_game,
    tie_survival_probability,
    winner_distribution,
)
from repro.errors import ParameterError


class TestGameMechanics:
    def test_single_player_always_wins(self):
        rng = np.random.default_rng(0)
        winners, scores = play_competition_game(1, rng)
        assert winners == 1
        assert len(scores) == 1

    def test_winner_count_in_range(self):
        rng = np.random.default_rng(1)
        for _ in range(200):
            winners, scores = play_competition_game(10, rng)
            assert 1 <= winners <= 10
            assert winners == scores.count(max(scores))

    def test_rejects_empty_game(self):
        with pytest.raises(ParameterError):
            play_competition_game(0, np.random.default_rng(0))

    def test_scores_are_geometric(self):
        """P(score = 0) = 1/2, P(score = 1) = 1/4, ..."""
        rng = np.random.default_rng(2)
        scores = []
        for _ in range(4000):
            _winners, round_scores = play_competition_game(5, rng)
            scores.extend(round_scores)
        freq0 = scores.count(0) / len(scores)
        freq1 = scores.count(1) / len(scores)
        assert freq0 == pytest.approx(0.5, abs=0.02)
        assert freq1 == pytest.approx(0.25, abs=0.02)


class TestTieSurvival:
    def test_closed_form(self):
        assert tie_survival_probability(1) == 1.0
        assert tie_survival_probability(2) == pytest.approx(1 / 3)
        assert tie_survival_probability(3) == pytest.approx(1 / 7)

    def test_bounded_by_lemma7_form(self):
        for i in range(2, 12):
            assert tie_survival_probability(i) <= 2.0 ** (1 - i)

    def test_rejects_bad_i(self):
        with pytest.raises(ParameterError):
            tie_survival_probability(0)


class TestWinnerDistribution:
    def test_satisfies_survivor_law(self):
        """The law Lemma 7 transfers to QuickElimination, on the game itself."""
        trials = 4000
        distribution = winner_distribution(64, trials, seed=0)
        assert survivor_law_violations(distribution, trials) == []

    def test_distribution_sums_to_one(self):
        distribution = winner_distribution(16, 500, seed=1)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_matches_quick_elimination_measurements(self):
        """The game's P(1 winner) matches the protocol's E6 measurement
        (~0.72 for moderate n) within statistical tolerance."""
        distribution = winner_distribution(128, 3000, seed=2)
        assert distribution[1] == pytest.approx(0.72, abs=0.05)

    def test_rejects_zero_trials(self):
        with pytest.raises(ParameterError):
            winner_distribution(8, 0)
