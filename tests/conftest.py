"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.core.symmetric import SymmetricPLLProtocol

# Property tests that drive full simulations are expensive per example;
# keep example counts moderate and deadline off (simulation times vary).
# database=None keeps hypothesis from writing a .hypothesis/ cache into
# the repository root.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    database=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def params8() -> PLLParameters:
    """Parameters sized for n <= 256 (m = 8)."""
    return PLLParameters(m=8)


@pytest.fixture
def pll8(params8: PLLParameters) -> PLLProtocol:
    """A PLL instance with m = 8."""
    return PLLProtocol(params8)


@pytest.fixture
def sym8(params8: PLLParameters) -> SymmetricPLLProtocol:
    """A symmetric PLL instance with m = 8."""
    return SymmetricPLLProtocol(params8)
