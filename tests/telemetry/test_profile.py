"""Tests for block-level stage profiles (repro.telemetry.profile)."""

import pytest

from repro.orchestration.spec import TrialSpec
from repro.telemetry.profile import (
    DISABLED,
    StageProfile,
    aggregate_profiles,
    emit_profile,
    load_profile_records,
    render_profile_table,
    top_stages,
)
from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV


class RecordingSink:
    path = "<memory>"

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class TestStageProfile:
    def test_accumulates_seconds_and_calls(self):
        profile = StageProfile(enabled=True)
        for _ in range(3):
            with profile.stage("sample"):
                pass
        with profile.stage("apply"):
            pass
        assert profile.calls == {"sample": 3, "apply": 1}
        assert set(profile.seconds) == {"sample", "apply"}
        assert all(seconds >= 0.0 for seconds in profile.seconds.values())

    def test_disabled_profile_is_a_shared_noop(self):
        with DISABLED.stage("sample"):
            pass
        assert DISABLED.seconds == {}
        assert DISABLED.calls == {}
        # The disabled path hands out one shared span object.
        assert DISABLED.stage("a") is DISABLED.stage("b")

    def test_event_shape(self):
        profile = StageProfile(enabled=True)
        with profile.stage("sample"):
            pass
        event = profile.event("batch", "pll", 256, 0, 1234)
        assert event["event"] == "profile"
        assert event["engine"] == "batch"
        assert event["stages"]["sample"]["calls"] == 1

    def test_empty_profile_has_no_event(self):
        assert StageProfile(enabled=True).event("batch", "pll", 256, 0, 0) is None

    def test_stage_spans_feed_attached_tracer(self):
        from repro.telemetry.trace import Tracer

        sink = RecordingSink()
        profile = StageProfile(enabled=True)
        profile.tracer = Tracer(sink)
        with profile.stage("sample"):
            pass
        (span,) = sink.events
        assert span["name"] == "sample" and span["cat"] == "stage"

    def test_capped_tracer_still_profiles(self):
        from repro.telemetry.trace import Tracer

        sink = RecordingSink()
        profile = StageProfile(enabled=True)
        profile.tracer = Tracer(sink, limit=0)
        with profile.stage("sample"):
            pass
        # No span emitted (cap), but the profile still accumulated and
        # the drop was counted.
        assert sink.events == []
        assert profile.calls["sample"] == 1
        assert profile.tracer.dropped == 1


class TestEmitProfile:
    def test_emits_through_given_sink(self):
        profile = StageProfile(enabled=True)
        with profile.stage("sample"):
            pass
        sink = RecordingSink()
        emit_profile(profile, "batch", "pll", 256, 0, 99, sink=sink)
        (event,) = sink.events
        assert event["event"] == "profile" and event["steps"] == 99

    def test_noop_for_disabled_or_empty(self):
        sink = RecordingSink()
        emit_profile(None, "batch", "pll", 256, 0, 0, sink=sink)
        emit_profile(DISABLED, "batch", "pll", 256, 0, 0, sink=sink)
        emit_profile(
            StageProfile(enabled=True), "batch", "pll", 256, 0, 0, sink=sink
        )
        assert sink.events == []


class TestAggregation:
    def profile_event(self, engine, n, stages, steps=100):
        return {
            "event": "profile",
            "engine": engine,
            "protocol": "pll",
            "n": n,
            "seed": 0,
            "steps": steps,
            "stages": {
                name: {"seconds": seconds, "calls": 1}
                for name, seconds in stages.items()
            },
        }

    def test_folds_cells_and_ranks_stages(self):
        events = [
            self.profile_event("batch", 256, {"sample": 0.1, "apply": 0.3}),
            self.profile_event("batch", 256, {"sample": 0.2, "apply": 0.1}),
            self.profile_event("superbatch", 512, {"detect": 1.0}),
            {"event": "heartbeat"},  # ignored
        ]
        records = aggregate_profiles(events)
        assert [(r["engine"], r["n"]) for r in records] == [
            ("batch", 256),
            ("superbatch", 512),
        ]
        batch = records[0]
        assert batch["trials"] == 2 and batch["steps"] == 200
        assert top_stages(batch) == ["apply", "sample"]
        assert batch["stages"][0]["seconds"] == pytest.approx(0.4)
        shares = [stage["share"] for stage in batch["stages"]]
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)

    def test_render_table_and_empty_message(self):
        records = aggregate_profiles(
            [self.profile_event("batch", 256, {"sample": 0.5})]
        )
        table = render_profile_table(records)
        assert "batch pll n=256" in table and "sample" in table
        assert "no profile events" in render_profile_table([])


class TestEndToEnd:
    def run_trial(self, engine, n, monkeypatch, tmp_path):
        path = tmp_path / f"{engine}.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.setenv(QUIET_ENV, "1")
        monkeypatch.setenv(EVENTS_ENV, str(path))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        spec = TrialSpec.create("pll", n, 0, engine=engine)
        from repro.orchestration.pool import execute_trial

        execute_trial(spec)
        return load_profile_records(str(path))

    def test_batch_and_superbatch_name_their_top_stages(
        self, monkeypatch, tmp_path
    ):
        # The acceptance check: the aggregated profile names the top-2
        # cost stages for a batch and a superbatch cell.
        for engine in ("batch", "superbatch"):
            records = self.run_trial(engine, 256, monkeypatch, tmp_path)
            (record,) = [r for r in records if r["engine"] == engine]
            top = top_stages(record, k=2)
            assert len(top) == 2
            assert set(top) <= {
                "sample", "apply", "detect", "commit", "null", "kernel_fill"
            }
            assert record["profiled_seconds"] > 0.0

    def test_no_profile_events_when_telemetry_off(self, monkeypatch, tmp_path):
        path = tmp_path / "off.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        monkeypatch.setenv(EVENTS_ENV, str(path))
        spec = TrialSpec.create("pll", 256, 0, engine="batch")
        from repro.orchestration.pool import execute_trial

        execute_trial(spec)
        assert not path.exists()
