"""Store-row neutrality: the telemetry switch must not change outcomes.

The PR-6 contract is that ``REPRO_TELEMETRY`` gates *wall-clock
machinery only* (heartbeats, sinks, timers — and, since PR 7, span
tracing and stage profiles): the deterministic data that feeds the
store's ``telemetry`` and ``phases`` columns is collected
unconditionally, and no engine's chain may depend on the switch.  These
tests pin that end to end: run identical specs through the real
orchestration path with the switch off and with the *full* diagnostic
tier on (telemetry + heartbeats + tracing + profile emission), and
require the stored rows — steps, parallel time, leader count, distinct
states, the telemetry JSON bytes, *and the phase-series bytes* — to be
identical (``duration`` excepted: wall clock is a runtime record, not
part of the measurement).

Heartbeat chunking is the dangerous part (the ensemble scalar finisher
runs lanes in bounded chunks when a heartbeat exists), so the on-runs
force a tiny heartbeat interval to exercise those paths for real.
"""

import pytest

from repro.orchestration.pool import run_specs
from repro.orchestration.spec import TrialSpec, trial_specs
from repro.orchestration.store import TrialStore
from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.heartbeat import HEARTBEAT_SECS_ENV
from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV
from repro.telemetry.trace import TRACE_ENV


def rows_without_runtime_records(store):
    rows = []
    for row in store.rows():
        row = dict(row)
        del row["duration"]  # wall clock legitimately differs
        rows.append(row)
    return rows


def run_to_rows(specs, monkeypatch, telemetry, tmp_path=None):
    monkeypatch.setenv(TELEMETRY_ENV, "1" if telemetry else "0")
    if telemetry:
        # Beat practically every block, silently: exercises the chunked
        # heartbeat paths without a second of sleeping or stderr noise.
        monkeypatch.setenv(HEARTBEAT_SECS_ENV, "0.000001")
        monkeypatch.setenv(QUIET_ENV, "1")
        if tmp_path is not None:
            # Full diagnostic tier: span tracing and profile emission
            # into a real sink, so the on-run pays every instrument the
            # contract claims is chain-neutral.
            monkeypatch.setenv(TRACE_ENV, "1")
            monkeypatch.setenv(EVENTS_ENV, str(tmp_path / "events.jsonl"))
    else:
        monkeypatch.delenv(TRACE_ENV, raising=False)
        monkeypatch.delenv(EVENTS_ENV, raising=False)
    with TrialStore(":memory:") as store:
        run_specs(specs, store=store)
        return rows_without_runtime_records(store)


@pytest.mark.parametrize(
    "engine,protocol,n",
    [
        ("agent", "angluin", 24),
        ("multiset", "angluin", 24),
        ("multiset", "pll", 64),
        ("batch", "pll", 256),
        ("superbatch", "pll", 256),
    ],
)
def test_store_rows_identical_off_and_on(engine, protocol, n, monkeypatch, tmp_path):
    specs = [
        TrialSpec.create(protocol, n, seed, engine=engine)
        for seed in range(3)
    ]
    off = run_to_rows(specs, monkeypatch, telemetry=False)
    on = run_to_rows(specs, monkeypatch, telemetry=True, tmp_path=tmp_path)
    assert off == on
    # The rows must actually carry counter summaries (not None == None),
    # and phase series (the probes are always-on, like the counters).
    assert all(row["telemetry"] for row in off)
    assert all(row["phases"] for row in off)


def test_ensemble_packed_rows_identical_off_and_on(monkeypatch):
    # Enough same-cell multiset specs to trigger lane packing, plus the
    # scalar finisher for stragglers — the chunked-heartbeat path.
    specs = trial_specs("angluin", 24, trials=6, engine="ensemble")
    off = run_to_rows(specs, monkeypatch, telemetry=False)
    on = run_to_rows(specs, monkeypatch, telemetry=True)
    assert off == on
    assert len(off) == 6


def test_telemetry_json_is_engine_tagged(monkeypatch):
    import json

    spec = TrialSpec.create("pll", 128, 0, engine="superbatch")
    (row,) = run_to_rows([spec], monkeypatch, telemetry=False)
    summary = json.loads(row["telemetry"])
    assert summary["engine"] == "superbatch"
    assert summary["steps"] == row["steps"]
    assert "cache" in summary
