"""Tests for hierarchical span tracing (repro.telemetry.trace)."""

import json

from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.sink import EVENTS_ENV, EventSink, QUIET_ENV
from repro.telemetry.trace import (
    SPAN_LIMIT_ENV,
    TRACE_ENV,
    Tracer,
    chrome_trace_events,
    load_events,
    make_tracer,
    tracing_enabled,
    validate_chrome_trace,
)


class RecordingSink:
    """In-memory stand-in for EventSink (same emit interface)."""

    path = "<memory>"

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class TestGating:
    def test_off_without_telemetry(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        monkeypatch.setenv(TRACE_ENV, "1")
        assert not tracing_enabled()
        assert make_tracer() is None

    def test_off_without_trace_env(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not tracing_enabled()

    def test_none_without_events_path(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        # Tracing is requested but has nowhere to write: the hot paths
        # must keep their tracer-free branch.
        assert tracing_enabled()
        assert make_tracer() is None

    def test_tracer_with_events_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(QUIET_ENV, "1")
        monkeypatch.setenv(EVENTS_ENV, str(tmp_path / "events.jsonl"))
        assert make_tracer() is not None


class TestSpans:
    def test_spans_nest_and_emit_on_close(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("trial", cat="trial", n=64) as outer:
            with tracer.span("sample", cat="stage") as inner:
                pass
        assert [event["name"] for event in sink.events] == ["sample", "trial"]
        sample, trial = sink.events
        assert sample["parent"] == trial["span_id"]
        assert trial["parent"] is None
        assert trial["n"] == 64
        assert trial["dur"] >= sample["dur"] >= 0.0
        assert inner.span_id != outer.span_id

    def test_nesting_spans_multiple_tracers(self):
        # The orchestration layer and the engines hold separate Tracer
        # instances; the open-span stack is process-global so their
        # spans still form one hierarchy.
        sink = RecordingSink()
        orchestration, engine = Tracer(sink), Tracer(sink)
        with orchestration.span("campaign", cat="campaign") as campaign:
            with engine.span("trial", cat="trial") as trial:
                pass
        assert trial.parent == campaign.span_id

    def test_span_ids_never_repeat(self):
        sink = RecordingSink()
        ids = set()
        for _ in range(3):
            # Fresh tracers model a killed-and-resumed campaign within
            # one process: the id counter is process-global, so ids in
            # an appended-to event file never collide.
            tracer = Tracer(sink)
            with tracer.span("trial", cat="trial"):
                pass
            ids.add(sink.events[-1]["span_id"])
        assert len(ids) == 3

    def test_stage_spans_capped_and_drops_reported(self):
        sink = RecordingSink()
        tracer = Tracer(sink, limit=2)
        for _ in range(5):
            with tracer.span("sample", cat="stage"):
                pass
        assert tracer.emitted == 2
        assert tracer.dropped == 3
        with tracer.span("trial", cat="trial"):
            pass
        trial = sink.events[-1]
        assert trial["name"] == "trial"
        assert trial["dropped_stage_spans"] == 3

    def test_trial_spans_exempt_from_cap(self):
        sink = RecordingSink()
        tracer = Tracer(sink, limit=0)
        with tracer.span("trial", cat="trial"):
            pass
        assert [event["name"] for event in sink.events] == ["trial"]

    def test_span_limit_env_override(self, monkeypatch):
        from repro.telemetry.trace import DEFAULT_SPAN_LIMIT

        monkeypatch.setenv(SPAN_LIMIT_ENV, "7")
        assert Tracer(RecordingSink()).limit == 7
        monkeypatch.setenv(SPAN_LIMIT_ENV, "not-a-number")
        assert Tracer(RecordingSink()).limit == DEFAULT_SPAN_LIMIT


class TestChromeExport:
    def test_spans_become_complete_events(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("trial", cat="trial", protocol="pll", n=64):
            pass
        (chrome,) = chrome_trace_events(sink.events)
        assert chrome["ph"] == "X"
        assert chrome["name"] == "trial"
        assert chrome["dur"] >= 1  # microseconds, floored at 1
        assert chrome["args"]["protocol"] == "pll"
        assert chrome["args"]["n"] == 64

    def test_heartbeats_become_counters(self):
        events = [
            {"event": "heartbeat", "ts": 12.5, "steps_per_sec": 1e6, "pid": 9},
            {"event": "profile", "stages": {}},  # no timeline shape
        ]
        (counter,) = chrome_trace_events(events)
        assert counter["ph"] == "C"
        assert counter["ts"] == 12_500_000
        assert counter["args"]["steps_per_sec"] == 1e6

    def test_validate_accepts_export(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("trial", cat="trial"):
            pass
        payload = {"traceEvents": chrome_trace_events(sink.events)}
        assert validate_chrome_trace(payload) == []

    def test_validate_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        broken = {"traceEvents": [{"ph": "X", "name": "x", "ts": 1}]}
        errors = validate_chrome_trace(broken)
        assert any("dur" in error for error in errors)


class TestEventFileRoundTrip:
    def test_load_events_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "span", "name": "a"}\n'
            "\n"
            "{torn line\n"
            '["not", "an", "object"]\n'
            '{"event": "heartbeat"}\n'
        )
        events = load_events(str(path))
        assert [event["event"] for event in events] == ["span", "heartbeat"]

    def test_sink_to_chrome_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(str(path), echo=False)
        tracer = Tracer(sink)
        with tracer.span("trial", cat="trial", n=32):
            with tracer.span("sample", cat="stage"):
                pass
        sink.close()
        events = load_events(str(path))
        assert all(event["event"] == "span" for event in events)
        payload = {"traceEvents": chrome_trace_events(events)}
        assert validate_chrome_trace(payload) == []
        # The export is plain JSON-serializable.
        json.dumps(payload)


class TestTracedRunByteIdentity:
    def test_traced_superbatch_trial_exports_valid_chrome_trace(
        self, monkeypatch, tmp_path
    ):
        # The acceptance path end-to-end in-process: trace a superbatch
        # PLL trial, export, validate.
        from repro.orchestration.pool import execute_trial
        from repro.orchestration.spec import TrialSpec

        path = tmp_path / "events.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(QUIET_ENV, "1")
        monkeypatch.setenv(EVENTS_ENV, str(path))
        spec = TrialSpec.create("pll", 256, 0, engine="superbatch")
        outcome = execute_trial(spec)
        assert outcome.steps > 0
        events = load_events(str(path))
        spans = [event for event in events if event["event"] == "span"]
        names = {span["name"] for span in spans}
        assert "trial" in names
        assert {"sample", "apply", "detect"} <= names  # engine stages
        (trial_span,) = [span for span in spans if span["name"] == "trial"]
        # Every stage span's ancestor chain reaches the trial span
        # (kernel_fill spans legitimately nest inside apply/commit).
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            if span["cat"] != "stage":
                continue
            while span["parent"] is not None:
                span = by_id[span["parent"]]
            assert span["span_id"] == trial_span["span_id"]
        payload = {"traceEvents": chrome_trace_events(events)}
        assert validate_chrome_trace(payload) == []
