"""Tests for the per-cell runtime profile (repro.telemetry.report)."""

import json

import pytest

from repro.orchestration.spec import TrialOutcome, TrialSpec
from repro.orchestration.store import TrialStore
from repro.telemetry.report import REPORT_SCHEMA, build_report, render_report


def put_trial(store, protocol, n, engine, seed, steps, duration, telemetry):
    spec = TrialSpec.create(protocol, n, seed, engine=engine)
    store.put(
        spec,
        TrialOutcome(
            seed=seed,
            steps=steps,
            parallel_time=steps / n,
            leader_count=1,
            distinct_states=8,
            duration=duration,
            telemetry=telemetry,
        ),
    )


def cache_json(hits, misses):
    return json.dumps(
        {"engine": "multiset", "cache": {"hits": hits, "misses": misses}}
    )


class TestBuildReport:
    def test_groups_per_cell_with_percentiles(self):
        with TrialStore(":memory:") as store:
            for seed, steps, duration in (
                (0, 1000, 0.5),
                (1, 2000, 1.0),
                (2, 3000, 1.5),
            ):
                put_trial(
                    store, "pll", 64, "multiset", seed, steps, duration,
                    cache_json(90, 10),
                )
            put_trial(store, "angluin", 32, "agent", 0, 500, 0.25, None)
            report = build_report(store)
        assert report["schema"] == REPORT_SCHEMA
        assert report["trials"] == 4
        cells = {
            (cell["protocol"], cell["n"], cell["engine"]): cell
            for cell in report["cells"]
        }
        assert set(cells) == {("pll", 64, "multiset"), ("angluin", 32, "agent")}
        pll = cells[("pll", 64, "multiset")]
        assert pll["trials"] == pll["timed_trials"] == 3
        assert pll["duration_sec"]["p50"] == pytest.approx(1.0)
        assert pll["total_duration_sec"] == pytest.approx(3.0)
        assert pll["steps_per_sec"]["p50"] == pytest.approx(2000.0)
        assert pll["steps"]["min"] == 1000.0 and pll["steps"]["max"] == 3000.0
        assert pll["cache_hit_rate"] == pytest.approx(0.9)

    def test_untimed_rows_are_counted_but_not_profiled(self):
        # Rows migrated from a pre-duration store carry duration=0.0;
        # they must not poison the wall-clock statistics.
        with TrialStore(":memory:") as store:
            put_trial(store, "pll", 64, "batch", 0, 1000, 0.0, None)
            put_trial(store, "pll", 64, "batch", 1, 1200, 0.6, None)
            report = build_report(store)
        (cell,) = report["cells"]
        assert cell["trials"] == 2
        assert cell["timed_trials"] == 1
        assert cell["duration_sec"]["min"] == pytest.approx(0.6)

    def test_cells_without_timed_trials_have_no_duration_block(self):
        with TrialStore(":memory:") as store:
            put_trial(store, "pll", 64, "batch", 0, 1000, 0.0, None)
            report = build_report(store)
        (cell,) = report["cells"]
        assert "duration_sec" not in cell
        assert "cache_hit_rate" not in cell

    def test_malformed_telemetry_json_is_skipped(self):
        with TrialStore(":memory:") as store:
            put_trial(store, "pll", 64, "batch", 0, 1000, 0.5, "{not json")
            report = build_report(store)
        (cell,) = report["cells"]
        assert "cache_hit_rate" not in cell

    def test_empty_store_renders_cleanly(self):
        with TrialStore(":memory:") as store:
            report = build_report(store)
        assert report["trials"] == 0
        assert report["cells"] == []

    def test_parallel_time_percentiles(self):
        with TrialStore(":memory:") as store:
            for seed, steps, duration in (
                (0, 1000, 0.5),
                (1, 2000, 1.0),
                (2, 3000, 1.5),
            ):
                put_trial(
                    store, "pll", 64, "multiset", seed, steps, duration, None
                )
            report = build_report(store)
        (cell,) = report["cells"]
        # Every trial above simulates (steps/n)/duration = 2000/64
        # units of parallel time per wall-clock second.
        assert cell["parallel_time_per_sec"]["p50"] == pytest.approx(2000 / 64)
        assert cell["parallel_time_per_sec"]["p95"] == pytest.approx(2000 / 64)

    def test_render_json_is_stable(self):
        with TrialStore(":memory:") as store:
            put_trial(store, "pll", 64, "batch", 0, 1000, 0.5, None)
            rendered = render_report(build_report(store), fmt="json")
        payload = json.loads(rendered)
        assert payload["schema"] == REPORT_SCHEMA
        # Stable key order: re-rendering the parsed payload is identical.
        assert json.dumps(payload, indent=2, sort_keys=True) == rendered

    def test_render_text_table(self):
        with TrialStore(":memory:") as store:
            put_trial(
                store, "pll", 64, "batch", 0, 1000, 0.5, cache_json(90, 10)
            )
            rendered = render_report(build_report(store))
        assert "pll" in rendered and "batch" in rendered
        # Text, not JSON: the default format is the human-readable table.
        with pytest.raises(json.JSONDecodeError):
            json.loads(rendered)

    def test_render_rejects_unknown_format(self):
        with TrialStore(":memory:") as store:
            report = build_report(store)
        with pytest.raises(ValueError):
            render_report(report, fmt="yaml")
