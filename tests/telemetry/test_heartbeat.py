"""Tests for heartbeats and the JSONL event sink."""

import json
import time

from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.heartbeat import (
    HEARTBEAT_SECS_ENV,
    Heartbeat,
    make_heartbeat,
)
from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV, EventSink, make_sink


class CollectingSink:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def fast_heartbeat(max_steps=None, interval=0.0):
    return Heartbeat(
        engine="superbatch",
        protocol="pll",
        n=1000,
        seed=7,
        max_steps=max_steps,
        interval=interval,
        sink=CollectingSink(),
    )


class TestMakeHeartbeat:
    def test_none_when_telemetry_disabled(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert make_heartbeat("agent", "pll", 64, 0, None) is None

    def test_none_when_ctor_override_disables(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert make_heartbeat("agent", "pll", 64, 0, None, enabled=False) is None

    def test_none_when_interval_is_non_positive(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        monkeypatch.setenv(HEARTBEAT_SECS_ENV, "0")
        assert make_heartbeat("agent", "pll", 64, 0, None) is None

    def test_built_when_enabled(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        monkeypatch.setenv(HEARTBEAT_SECS_ENV, "2.5")
        beat = make_heartbeat("batch", "pll", 64, 3, 1000)
        assert beat is not None
        assert beat.interval == 2.5

    def test_garbage_interval_falls_back_to_default(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        monkeypatch.setenv(HEARTBEAT_SECS_ENV, "not-a-float")
        beat = make_heartbeat("batch", "pll", 64, 3, 1000)
        assert beat is not None
        assert beat.interval == 1.0


class TestHeartbeat:
    def test_respects_the_interval(self):
        beat = fast_heartbeat(interval=3600.0)
        beat.maybe_beat(10)
        beat.maybe_beat(20)
        assert beat.sink.events == []

    def test_emits_identity_progress_and_eta(self):
        beat = fast_heartbeat(max_steps=1000)
        time.sleep(0.001)
        beat.maybe_beat(500)
        (event,) = beat.sink.events
        assert event["event"] == "heartbeat"
        assert event["engine"] == "superbatch"
        assert event["protocol"] == "pll"
        assert event["seed"] == 7
        assert event["steps"] == 500
        assert event["steps_per_sec"] > 0
        assert event["eta_sec"] is not None and event["eta_sec"] >= 0.0

    def test_eta_is_none_without_a_budget(self):
        beat = fast_heartbeat(max_steps=None)
        time.sleep(0.001)
        beat.maybe_beat(500)
        (event,) = beat.sink.events
        assert event["eta_sec"] is None

    def test_counts_beats(self):
        beat = fast_heartbeat(max_steps=100)
        for steps in (10, 20, 30):
            time.sleep(0.001)
            beat.maybe_beat(steps)
        assert beat.beats == 3


class TestEventSink:
    def test_appends_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(str(path), echo=False)
        sink.emit({"event": "heartbeat", "steps": 1})
        sink.emit({"event": "heartbeat", "steps": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["steps"] for line in lines] == [1, 2]

    def test_no_path_means_no_file(self):
        sink = EventSink(None, echo=False)
        sink.emit({"event": "heartbeat", "steps": 1})  # must not raise

    def test_write_failure_degrades_to_warning(self, tmp_path, capsys):
        sink = EventSink(str(tmp_path / "no" / "such" / "dir.jsonl"), echo=False)
        sink.emit({"event": "heartbeat", "steps": 1})
        assert sink.path is None  # disabled after the first failure
        assert "telemetry" in capsys.readouterr().err

    def test_heartbeats_echo_to_stderr(self, capsys):
        sink = EventSink(None, echo=True)
        sink.emit(
            {
                "event": "heartbeat",
                "protocol": "pll",
                "n": 64,
                "engine": "agent",
                "steps": 1234,
                "elapsed": 2.0,
                "steps_per_sec": 617.0,
            }
        )
        err = capsys.readouterr().err
        assert "heartbeat" in err and "1,234 steps" in err

    def test_non_heartbeat_events_do_not_echo(self, capsys):
        sink = EventSink(None, echo=True)
        sink.emit({"event": "trial-done"})
        assert capsys.readouterr().err == ""

    def test_make_sink_reads_the_environment(self, monkeypatch, tmp_path):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv(EVENTS_ENV, str(path))
        monkeypatch.setenv(QUIET_ENV, "1")
        sink = make_sink()
        assert sink.path == str(path)
        assert sink.echo is False
