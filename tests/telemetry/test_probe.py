"""Tests for protocol phase probes (repro.telemetry.probe)."""

import json

import pytest

from repro.telemetry.probe import (
    DEFAULT_MAX_SAMPLES,
    PhaseProbe,
    PhaseSeries,
    make_phase_series,
    phase_probe_for,
    poll_mask,
    render_phases,
)


def counting_probe():
    return PhaseProbe(
        {
            "total": lambda counts, n: sum(counts.values()),
            "zeros": lambda counts, n: counts.get(0, 0),
        }
    )


class TestPhaseSeries:
    def test_samples_on_stride_schedule(self):
        series = PhaseSeries(counting_probe(), n=80)  # stride 10
        for step in range(0, 35):
            series.poll(step, lambda: {0: 3, 1: 2})
        payload = json.loads(series.to_json())
        assert payload["features"] == ["total", "zeros"]
        assert [row[0] for row in payload["samples"]] == [0, 10, 20, 30]
        assert payload["samples"][0][1:] == [5, 3]

    def test_finish_pins_terminal_configuration(self):
        series = PhaseSeries(counting_probe(), n=80)
        series.poll(0, lambda: {0: 5})
        series.finish(7, lambda: {1: 5})
        payload = json.loads(series.to_json())
        assert [row[0] for row in payload["samples"]] == [0, 7]
        # finish() at an already-sampled step does not duplicate.
        series.finish(7, lambda: {1: 5})
        assert len(json.loads(series.to_json())["samples"]) == 2

    def test_stride_doubling_bounds_the_buffer(self):
        series = PhaseSeries(counting_probe(), n=8, max_samples=8)  # stride 1
        for step in range(1000):
            series.poll(step, lambda: {0: 8})
        assert len(series) < 8
        assert series.stride > 1
        # The first sample always survives the decimation.
        payload = json.loads(series.to_json())
        assert payload["samples"][0][0] == 0

    def test_to_json_is_canonical_and_deterministic(self):
        def run():
            series = PhaseSeries(counting_probe(), n=16)
            for step in range(0, 100):
                series.poll(step, lambda: {0: 10, 1: 6})
            series.finish(120, lambda: {1: 16})
            return series.to_json()

        first, second = run(), run()
        assert first == second
        # Canonical form: no whitespace, sorted keys.
        assert " " not in first
        assert first == json.dumps(
            json.loads(first), sort_keys=True, separators=(",", ":")
        )

    def test_empty_series_serializes_to_none(self):
        assert PhaseSeries(counting_probe(), n=16).to_json() is None


class TestPollMask:
    def test_none_keeps_historical_mask(self):
        assert poll_mask(None) == (1 << 14) - 1

    def test_small_populations_get_fine_masks(self):
        series = PhaseSeries(counting_probe(), n=64)  # stride 8
        assert poll_mask(series) == (1 << 8) - 1

    def test_large_populations_cap_at_historical_mask(self):
        series = PhaseSeries(counting_probe(), n=1 << 20)
        assert poll_mask(series) == (1 << 14) - 1

    def test_mask_is_power_of_two_minus_one(self):
        for n in (2, 100, 5000, 1 << 16):
            mask = poll_mask(PhaseSeries(counting_probe(), n=n))
            assert mask & (mask + 1) == 0


class TestProbeResolution:
    def test_pll_probe_comes_from_protocol(self):
        from repro.core.pll import PLLProtocol

        probe = phase_probe_for(PLLProtocol.for_population(64))
        assert probe is not None
        assert "epidemic" in probe.feature_names
        assert "lottery_live" in probe.feature_names

    def test_make_phase_series_none_for_probeless_protocol(self):
        class Bare:
            def phase_probe(self):
                return None

            def compile_kernel(self):
                return None

        assert make_phase_series(Bare(), 64) is None


class TestRenderPhases:
    def test_renders_one_row_per_feature(self):
        series = PhaseSeries(counting_probe(), n=80)
        for step in range(0, 100):
            series.poll(step, lambda: {0: step // 2, 1: 1})
        rendered = render_phases(series.to_json())
        assert "total" in rendered and "zeros" in rendered
        assert "n=80" in rendered


class TestLemma2Epidemic:
    def test_superbatch_pll_epidemic_curve(self):
        """Acceptance pin: the PLL phase timeline reproduces Lemma 2.

        The epoch >= 2 epidemic spreads by one-way infection, so its
        occupancy count must be monotone nondecreasing over the sampled
        steps and must saturate at n — the whole population is reached.
        Pinned cell: superbatch PLL n=1024 seed=1 (a count-level run,
        so the probe is exercised through the block engine's poll
        sites, not the scalar loop).
        """
        from repro.orchestration.pool import build_simulator
        from repro.core.pll import PLLProtocol

        n = 1024
        sim = build_simulator(
            PLLProtocol.for_population(n), n, seed=1, engine="superbatch"
        )
        sim.run_until_stabilized()
        payload = json.loads(sim.phases_json())
        assert payload["n"] == n
        index = payload["features"].index("epidemic") + 1
        epidemic = [row[index] for row in payload["samples"]]
        assert epidemic[0] == 0  # nobody starts past epoch 1
        assert all(a <= b for a, b in zip(epidemic, epidemic[1:]))
        assert epidemic[-1] == n  # Lemma 2: the epidemic reaches everyone
        # The series is bounded no matter how long stabilization took.
        assert len(epidemic) < DEFAULT_MAX_SAMPLES
