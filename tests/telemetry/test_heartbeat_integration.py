"""Heartbeats observed through real engine runs and the JSONL stream.

The acceptance shape from the issue: a long superbatch run must emit a
stream of heartbeat events whose step counts are monotone and whose ETA
is finite.  Production demonstrates this at n=10^7 with the default 1 s
interval; the test forces a microscopic interval so a sub-second run at
test scale crosses the same code paths the same number of times.
"""

import json

import pytest

from repro.orchestration.pool import build_simulator
from repro.orchestration.registry import build_protocol
from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.heartbeat import HEARTBEAT_SECS_ENV
from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV


def run_with_event_stream(
    engine, protocol_name, n, seed, tmp_path, monkeypatch
):
    events_path = tmp_path / "events.jsonl"
    monkeypatch.setenv(TELEMETRY_ENV, "1")
    monkeypatch.setenv(HEARTBEAT_SECS_ENV, "0.000001")
    monkeypatch.setenv(QUIET_ENV, "1")
    monkeypatch.setenv(EVENTS_ENV, str(events_path))
    protocol = build_protocol(protocol_name, n)
    sim = build_simulator(protocol, n, seed=seed, engine=engine)
    steps = sim.run_until_stabilized()
    events = [
        json.loads(line) for line in events_path.read_text().splitlines()
    ]
    return steps, [event for event in events if event["event"] == "heartbeat"]


@pytest.mark.parametrize(
    "engine,protocol,n,seed",
    [
        # (n, seed) is chosen per engine so the run crosses the engine's
        # beat-poll cadence (2^14 steps for scalar loops, 2^16-step chunks
        # for the ensemble lane facade) at least three times before
        # stabilizing; convergence time varies widely by seed, so these
        # seeds pin known-long runs.
        ("agent", "pll", 1024, 1),
        ("multiset", "pll", 1024, 0),
        ("batch", "pll", 512, 0),
        ("superbatch", "pll", 2048, 0),
        ("ensemble", "pll", 4096, 2),
    ],
)
def test_heartbeats_are_monotone_with_finite_eta(
    engine, protocol, n, seed, tmp_path, monkeypatch
):
    steps, beats = run_with_event_stream(
        engine, protocol, n, seed, tmp_path, monkeypatch
    )
    assert len(beats) >= 3
    reported = [beat["steps"] for beat in beats]
    assert reported == sorted(reported)
    assert all(step <= steps for step in reported)
    for beat in beats:
        assert beat["n"] == n
        assert beat["steps_per_sec"] >= 0
        # The stabilization loop always knows its budget, so every beat
        # carries a finite ETA.
        assert beat["max_steps"] is not None
        assert beat["eta_sec"] is not None
        assert 0.0 <= beat["eta_sec"] < float("inf")


def test_no_events_when_telemetry_is_off(tmp_path, monkeypatch):
    events_path = tmp_path / "events.jsonl"
    monkeypatch.setenv(TELEMETRY_ENV, "0")
    monkeypatch.setenv(HEARTBEAT_SECS_ENV, "0.000001")
    monkeypatch.setenv(EVENTS_ENV, str(events_path))
    protocol = build_protocol("pll", 256)
    sim = build_simulator(protocol, 256, seed=0, engine="superbatch")
    sim.run_until_stabilized()
    assert not events_path.exists()
