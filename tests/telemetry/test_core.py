"""Tests for the telemetry primitives (repro.telemetry.core)."""

import json

from repro.telemetry.core import (
    TELEMETRY_ENV,
    Counter,
    Gauge,
    PhaseTimer,
    TrialTelemetry,
    cache_summary,
    telemetry_enabled,
    trial_telemetry_json,
)


class TestEnablementSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert telemetry_enabled() is True

    def test_falsy_values_disable(self, monkeypatch):
        for raw in ("0", "false", "FALSE", "off", "no", "", "  0  "):
            monkeypatch.setenv(TELEMETRY_ENV, raw)
            assert telemetry_enabled() is False, repr(raw)

    def test_truthy_values_enable(self, monkeypatch):
        for raw in ("1", "true", "on", "yes", "anything"):
            monkeypatch.setenv(TELEMETRY_ENV, raw)
            assert telemetry_enabled() is True, repr(raw)

    def test_override_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert telemetry_enabled(True) is True
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert telemetry_enabled(False) is False

    def test_switch_is_read_at_use_time(self, monkeypatch):
        # No import-time caching: the same process can flip the switch.
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert telemetry_enabled() is False
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert telemetry_enabled() is True


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter("blocks")
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_disabled_counter_stays_zero(self):
        counter = Counter("blocks", enabled=False)
        counter.add(100)
        assert counter.value == 0

    def test_gauge_is_last_value_wins(self):
        gauge = Gauge("lead")
        gauge.set(2.0)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_disabled_gauge_never_updates(self):
        gauge = Gauge("lead", enabled=False)
        gauge.set(3.0)
        assert gauge.value == 0.0

    def test_phase_timer_accumulates_per_phase(self):
        timer = PhaseTimer()
        with timer.phase("sample"):
            pass
        with timer.phase("sample"):
            pass
        with timer.phase("apply"):
            pass
        assert set(timer.totals) == {"sample", "apply"}
        assert all(total >= 0.0 for total in timer.totals.values())

    def test_disabled_phase_timer_records_nothing(self):
        timer = PhaseTimer(enabled=False)
        with timer.phase("sample"):
            pass
        assert timer.totals == {}


class FakeStats:
    hits = 10
    misses = 3
    bypasses = 2
    dense_hits = 7


class FakeSim:
    def telemetry_summary(self):
        return {"engine": "fake", "steps": 42, "cache": {"hits": 1}}


class TestTrialTelemetry:
    def test_capture_wraps_the_engine_summary(self):
        captured = TrialTelemetry.capture(FakeSim())
        assert captured.data["engine"] == "fake"

    def test_capture_returns_none_without_a_summary(self):
        assert TrialTelemetry.capture(object()) is None

    def test_json_is_canonical(self):
        # Sorted keys, compact separators: two runs collecting the same
        # counters must serialize to the same bytes (the store-row
        # neutrality property rides on this).
        a = TrialTelemetry({"b": 2, "a": 1}).to_json()
        b = TrialTelemetry({"a": 1, "b": 2}).to_json()
        assert a == b == '{"a":1,"b":2}'

    def test_roundtrips_through_json(self):
        original = TrialTelemetry({"engine": "x", "steps": 3})
        assert TrialTelemetry.from_json(original.to_json()).data == original.data

    def test_trial_telemetry_json_is_switch_independent(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        off = trial_telemetry_json(FakeSim())
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        on = trial_telemetry_json(FakeSim())
        assert off == on
        assert json.loads(off)["steps"] == 42

    def test_trial_telemetry_json_none_for_plain_objects(self):
        assert trial_telemetry_json(object()) is None


class TestCacheSummary:
    def test_reads_the_counter_fields_as_ints(self):
        assert cache_summary(FakeStats()) == {
            "hits": 10,
            "misses": 3,
            "bypasses": 2,
            "dense_hits": 7,
        }

    def test_missing_fields_default_to_zero(self):
        assert cache_summary(object()) == {
            "hits": 0,
            "misses": 0,
            "bypasses": 0,
            "dense_hits": 0,
        }
