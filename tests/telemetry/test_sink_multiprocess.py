"""Event-sink integrity under the multiprocessing pool.

The sink's contract (one O_APPEND write per complete line) is what lets
``jobs>1`` workers share a single event file.  These tests run real
campaigns through the pool with the full diagnostic tier on and check
the stream end to end: every line parses as JSON, every trial's stage
spans nest under that trial's span, and a killed-and-resumed campaign
appending to the same file never reuses a span id.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.orchestration.pool import run_specs
from repro.orchestration.spec import TrialSpec
from repro.orchestration.store import TrialStore
from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV, EventSink
from repro.telemetry.trace import TRACE_ENV, load_events

REPO_SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


def trace_env(monkeypatch, path):
    monkeypatch.setenv(TELEMETRY_ENV, "1")
    monkeypatch.setenv(TRACE_ENV, "1")
    monkeypatch.setenv(QUIET_ENV, "1")
    monkeypatch.setenv(EVENTS_ENV, str(path))


def specs_for(seeds, engine="batch", n=128):
    return [
        TrialSpec.create("pll", n, seed, engine=engine) for seed in seeds
    ]


def test_jobs4_campaign_stream_is_well_formed_jsonl(monkeypatch, tmp_path):
    path = tmp_path / "events.jsonl"
    trace_env(monkeypatch, path)
    with TrialStore(":memory:") as store:
        run_specs(specs_for(range(8)), store=store, jobs=4)
    # Parse every raw line strictly: a torn write would fail json.loads,
    # unlike load_events which tolerates malformed lines by design.
    lines = path.read_text().splitlines()
    assert lines
    events = [json.loads(line) for line in lines]
    spans = [event for event in events if event.get("event") == "span"]
    trial_spans = [span for span in spans if span["name"] == "trial"]
    assert len(trial_spans) == 8
    # Worker processes appended to the same file.
    assert len({span["pid"] for span in spans}) >= 1


def test_trial_stage_spans_nest_under_their_trial(monkeypatch, tmp_path):
    path = tmp_path / "events.jsonl"
    trace_env(monkeypatch, path)
    with TrialStore(":memory:") as store:
        run_specs(specs_for([0]), store=store, jobs=1)
    spans = [
        event
        for event in load_events(str(path))
        if event.get("event") == "span"
    ]
    (trial,) = [span for span in spans if span["name"] == "trial"]
    stages = [span for span in spans if span["cat"] == "stage"]
    assert stages
    # Every stage span roots at the trial span: direct children name it
    # as parent, nested stages (kernel_fill inside apply/commit) reach
    # it through their ancestor chain.
    by_id = {span["span_id"]: span for span in spans}
    for stage in stages:
        walk = stage
        while walk["parent"] is not None:
            walk = by_id[walk["parent"]]
        assert walk["span_id"] == trial["span_id"]
    assert {stage["pid"] for stage in stages} == {trial["pid"]}


def test_pid_placeholder_expands_per_process(monkeypatch, tmp_path):
    trace_env(monkeypatch, tmp_path / "events-{pid}.jsonl")
    with TrialStore(":memory:") as store:
        run_specs(specs_for(range(2)), store=store, jobs=1)
    files = list(tmp_path.glob("events-*.jsonl"))
    assert files
    for file in files:
        # The placeholder expanded to digits, not the literal "{pid}".
        assert "{pid}" not in file.name
        assert file.name[len("events-") : -len(".jsonl")].isdigit()


def test_resumed_campaign_never_reuses_span_ids(tmp_path):
    """A killed-and-resumed campaign appends without id collisions.

    Two separate interpreter invocations (fresh pids, fresh counters)
    run overlapping campaigns against the same store and event file —
    the resume path after a kill.  Every span id in the combined stream
    must be unique: ids are ``pid-counter``, so distinct processes can
    never collide, and within a process the counter is monotone.
    """
    store_path = tmp_path / "store.sqlite"
    events_path = tmp_path / "events.jsonl"
    script = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.orchestration.pool import run_specs\n"
        "from repro.orchestration.spec import TrialSpec\n"
        "from repro.orchestration.store import TrialStore\n"
        "specs = [TrialSpec.create('pll', 128, seed, engine='batch')"
        " for seed in range({seeds})]\n"
        "with TrialStore({store!r}) as store:\n"
        "    run_specs(specs, store=store)\n"
    )
    env = {
        "PATH": "/usr/bin:/bin",
        TELEMETRY_ENV: "1",
        TRACE_ENV: "1",
        QUIET_ENV: "1",
        EVENTS_ENV: str(events_path),
    }
    # First run covers seeds 0-1 and is "killed" after finishing them;
    # the resume runs seeds 0-3 (0-1 replay from the store, 2-3 fresh).
    for seeds in (2, 4):
        subprocess.run(
            [
                sys.executable,
                "-c",
                script.format(
                    src=REPO_SRC, store=str(store_path), seeds=seeds
                ),
            ],
            env=env,
            check=True,
            timeout=120,
        )
    spans = [
        event
        for event in load_events(str(events_path))
        if event.get("event") == "span"
    ]
    trial_spans = [span for span in spans if span["name"] == "trial"]
    assert len(trial_spans) == 4  # 2 from the first run, 2 fresh
    span_ids = [span["span_id"] for span in spans]
    assert len(span_ids) == len(set(span_ids))
    assert len({span["pid"] for span in spans}) == 2


def test_concurrent_sinks_interleave_whole_lines(tmp_path):
    # The primitive under all of the above: O_APPEND single-write lines
    # from two handles on one path interleave without tearing.
    path = tmp_path / "shared.jsonl"
    first = EventSink(str(path), echo=False)
    second = EventSink(str(path), echo=False)
    payload = {"event": "span", "blob": "x" * 512}
    for _ in range(50):
        first.emit(dict(payload, origin=1))
        second.emit(dict(payload, origin=2))
    first.close()
    second.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 100
    origins = [json.loads(line)["origin"] for line in lines]
    assert origins.count(1) == origins.count(2) == 50
