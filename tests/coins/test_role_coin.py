"""Tests for repro.coins.role_coin."""

from repro.coins.role_coin import HEADS, TAILS, CoinSequenceRecorder, role_bit
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator
from repro.protocols.angluin import AngluinProtocol


class TestRoleBit:
    def test_initiator_is_head(self):
        assert role_bit(True) == HEADS

    def test_responder_is_tail(self):
        assert role_bit(False) == TAILS

    def test_symbols(self):
        assert HEADS == 1
        assert TAILS == 0


class TestCoinSequenceRecorder:
    def run_with_recorder(self, pairs, n=4):
        sim = AgentSimulator(
            AngluinProtocol(), n, scheduler=DeterministicSchedule(pairs)
        )
        recorder = CoinSequenceRecorder()
        sim.add_hook(recorder)
        sim.run(len(pairs))
        return recorder

    def test_records_role_bits(self):
        recorder = self.run_with_recorder([(0, 1), (1, 0), (0, 2)])
        assert recorder.sequences[0] == [HEADS, TAILS, HEADS]
        assert recorder.sequences[1] == [TAILS, HEADS]
        assert recorder.sequences[2] == [TAILS]

    def test_step_bits_are_anti_correlated(self):
        """The two participants of one interaction see opposite bits."""
        recorder = self.run_with_recorder([(0, 1), (2, 3), (3, 1)])
        for u, v in recorder.pairs_per_step:
            assert u != v  # roles are distinct, bits opposite by design

    def test_heads_fraction(self):
        recorder = self.run_with_recorder([(0, 1), (0, 2), (1, 0)])
        assert recorder.heads_fraction(0) == 2 / 3

    def test_heads_fraction_of_silent_agent(self):
        recorder = self.run_with_recorder([(0, 1)])
        assert recorder.heads_fraction(3) == 0.0

    def test_longest_head_run(self):
        recorder = self.run_with_recorder([(0, 1), (0, 2), (1, 0), (0, 3)])
        # Agent 0: H, H, T, H -> longest run 2.
        assert recorder.longest_head_run(0) == 2

    def test_fairness_under_random_scheduler(self):
        sim = AgentSimulator(AngluinProtocol(), 8, seed=13)
        recorder = CoinSequenceRecorder()
        sim.add_hook(recorder)
        sim.run(20000)
        fraction = recorder.heads_fraction(0)
        assert abs(fraction - 0.5) < 0.03
