"""Tests for repro.coins.symmetric_coin."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.coins.symmetric_coin import (
    COIN_HEAD,
    COIN_J,
    COIN_K,
    COIN_STATUSES,
    COIN_TAIL,
    coin_counts_balanced,
    coin_flip_value,
    pair_coins,
)

coin_strategy = st.sampled_from(COIN_STATUSES)


class TestPairRules:
    def test_jj_to_kk(self):
        assert pair_coins(COIN_J, COIN_J) == (COIN_K, COIN_K)

    def test_kk_to_jj(self):
        assert pair_coins(COIN_K, COIN_K) == (COIN_J, COIN_J)

    def test_jk_settles(self):
        assert pair_coins(COIN_J, COIN_K) == (COIN_HEAD, COIN_TAIL)

    def test_kj_settles_role_agnostically(self):
        """The J party becomes F0 regardless of argument order."""
        assert pair_coins(COIN_K, COIN_J) == (COIN_TAIL, COIN_HEAD)

    def test_settled_coins_are_absorbing(self):
        for other in COIN_STATUSES:
            assert pair_coins(COIN_HEAD, other) == (COIN_HEAD, other)
            assert pair_coins(other, COIN_TAIL) == (other, COIN_TAIL)

    @given(coin_strategy)
    def test_equal_pairs_stay_equal(self, coin):
        """The symmetry property on the coin sub-automaton."""
        a, b = pair_coins(coin, coin)
        assert a == b


class TestFlipValues:
    def test_head_value(self):
        assert coin_flip_value(COIN_HEAD) == 1

    def test_tail_value(self):
        assert coin_flip_value(COIN_TAIL) == 0

    def test_unsettled_values(self):
        assert coin_flip_value(COIN_J) is None
        assert coin_flip_value(COIN_K) is None
        assert coin_flip_value(None) is None


class TestBalanceInvariant:
    def test_balanced_empty(self):
        assert coin_counts_balanced([])

    def test_balanced_with_nones(self):
        assert coin_counts_balanced([None, COIN_J, COIN_K])

    def test_unbalanced(self):
        assert not coin_counts_balanced([COIN_HEAD])

    def test_balanced_pairs(self):
        assert coin_counts_balanced([COIN_HEAD, COIN_TAIL, COIN_HEAD, COIN_TAIL])

    @given(st.lists(st.integers(0, 200), max_size=50))
    def test_random_churn_preserves_balance(self, pair_indices):
        """Any sequence of pairwise interactions keeps #F0 == #F1."""
        coins = [COIN_J] * 21
        for raw in pair_indices:
            u = raw % len(coins)
            v = (raw // len(coins) + u + 1) % len(coins)
            if u == v:
                continue
            coins[u], coins[v] = pair_coins(coins[u], coins[v])
            assert coin_counts_balanced(coins)

    def test_settled_fraction_grows(self):
        """Under random churn, coins settle (F0/F1 absorb the population)."""
        rng = np.random.default_rng(0)
        n = 40
        coins = [COIN_J] * n
        for _ in range(4000):
            u, v = rng.choice(n, size=2, replace=False)
            coins[u], coins[v] = pair_coins(coins[u], coins[v])
        settled = sum(1 for c in coins if c in (COIN_HEAD, COIN_TAIL))
        assert settled >= n - 2  # at most one J/K leftover pair-parity-wise
