"""Tests for the E13 robustness experiment internals."""

import numpy as np

from repro.core.invariants import check_state_domains
from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.experiments.robustness import scrambled_epoch4_configuration


class TestScrambledConfigurations:
    def test_configuration_is_domain_valid(self):
        protocol = PLLProtocol.for_population(32)
        rng = np.random.default_rng(0)
        config = scrambled_epoch4_configuration(
            32, leaders=8, rng=rng, params=protocol.params
        )
        assert len(config) == 32
        for state in set(config):
            check_state_domains(state, protocol.params)

    def test_requested_leader_count(self):
        protocol = PLLProtocol.for_population(16)
        rng = np.random.default_rng(1)
        config = scrambled_epoch4_configuration(
            16, leaders=4, rng=rng, params=protocol.params
        )
        assert sum(1 for state in config if state.leader) == 4

    def test_everyone_in_epoch_4(self):
        protocol = PLLProtocol.for_population(16)
        rng = np.random.default_rng(2)
        config = scrambled_epoch4_configuration(
            16, leaders=2, rng=rng, params=protocol.params
        )
        assert all(state.epoch == 4 for state in config)

    def test_stabilizes_from_scrambled_start(self):
        """Lemma 10's regime: pinned levels, only line 58 can act."""
        protocol = PLLProtocol.for_population(16)
        rng = np.random.default_rng(3)
        sim = AgentSimulator(protocol, 16, seed=4)
        sim.load_configuration(
            scrambled_epoch4_configuration(
                16, leaders=4, rng=rng, params=protocol.params
            )
        )
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_leader_count_monotone_from_scrambled_start(self):
        protocol = PLLProtocol.for_population(12)
        rng = np.random.default_rng(5)
        sim = AgentSimulator(protocol, 12, seed=6)
        sim.load_configuration(
            scrambled_epoch4_configuration(
                12, leaders=3, rng=rng, params=protocol.params
            )
        )
        previous = sim.leader_count
        for _ in range(4000):
            sim.step()
            assert 1 <= sim.leader_count <= previous
            previous = sim.leader_count
