"""Smoke tests: every registered experiment runs at tiny scale.

These guarantee EXPERIMENTS.md can always be regenerated; the paper-level
consistency columns are asserted only where tiny trial counts cannot make
them flaky (structural facts like zero-leader counts).
"""

import pytest

from repro.experiments import all_experiments, get_experiment

TINY = 0.05


@pytest.mark.parametrize("experiment_id", sorted(all_experiments()))
def test_experiment_runs_and_renders(experiment_id):
    _spec, run = get_experiment(experiment_id)
    result = run(scale=TINY, seed=1)
    assert result.rows, f"{experiment_id} produced no rows"
    text = result.render()
    assert result.spec.paper_claim in text
    for header in result.headers:
        assert header in text


def test_lemma7_never_eliminates_all_leaders():
    _spec, run = get_experiment("E6")
    result = run(scale=TINY, seed=2, n=32)
    assert any("zero-leader runs: 0" in note for note in result.notes)


def test_lemma12_rows_report_no_zero_leader_runs():
    _spec, run = get_experiment("E8")
    result = run(scale=TINY, seed=2)
    assert all(row["zero-leader runs"] == 0 for row in result.rows)


def test_theorem1_reports_ratio_column():
    _spec, run = get_experiment("E9")
    result = run(scale=TINY, seed=0)
    ratios = result.column("trimmed / lg n")
    assert all(ratio > 0 for ratio in ratios)


def test_results_record_scale_and_seed():
    _spec, run = get_experiment("E3")
    result = run(scale=TINY, seed=9)
    assert result.scale == TINY
    assert result.seed == 9
