"""Tests for repro.experiments.runner."""

import pytest

from repro.engine.kernel.multiset import KernelMultisetSimulator
from repro.engine.multiset import MultisetSimulator
from repro.engine.simulator import AgentSimulator
from repro.errors import ConvergenceError, ExperimentError
from repro.experiments.runner import make_simulator, stabilization_trials
from repro.orchestration.context import execution_context
from repro.orchestration.store import TrialStore
from repro.protocols.angluin import AngluinProtocol


class TestMakeSimulator:
    def test_agent_engine(self):
        sim = make_simulator(AngluinProtocol(), 8, seed=0, engine="agent")
        assert isinstance(sim, AgentSimulator)

    def test_multiset_engine(self):
        # Angluin compiles a kernel, so the multiset engine resolves to
        # the kernel-backed sorted-slot implementation of the same chain.
        sim = make_simulator(AngluinProtocol(), 8, seed=0, engine="multiset")
        assert isinstance(sim, KernelMultisetSimulator)

    def test_multiset_engine_without_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        sim = make_simulator(AngluinProtocol(), 8, seed=0, engine="multiset")
        assert isinstance(sim, MultisetSimulator)

    def test_unknown_engine(self):
        with pytest.raises(ExperimentError):
            make_simulator(AngluinProtocol(), 8, seed=0, engine="quantum")


class TestStabilizationTrials:
    def test_runs_requested_trials(self):
        outcomes = stabilization_trials(AngluinProtocol, 8, trials=5, base_seed=3)
        assert len(outcomes) == 5

    def test_every_trial_stabilizes(self):
        outcomes = stabilization_trials(AngluinProtocol, 12, trials=4)
        assert all(outcome.leader_count == 1 for outcome in outcomes)

    def test_seeds_are_derived_sequentially(self):
        outcomes = stabilization_trials(AngluinProtocol, 8, trials=3, base_seed=7)
        assert [o.seed for o in outcomes] == [7, 8, 9]

    def test_reproducible_per_seed(self):
        a = stabilization_trials(AngluinProtocol, 8, trials=2, base_seed=5)
        b = stabilization_trials(AngluinProtocol, 8, trials=2, base_seed=5)
        assert [o.steps for o in a] == [o.steps for o in b]

    def test_parallel_time_consistent_with_steps(self):
        outcomes = stabilization_trials(AngluinProtocol, 10, trials=2)
        for outcome in outcomes:
            assert outcome.parallel_time == pytest.approx(outcome.steps / 10)

    def test_rejects_zero_trials(self):
        with pytest.raises(ExperimentError):
            stabilization_trials(AngluinProtocol, 8, trials=0)

    def test_multiset_engine_trials(self):
        outcomes = stabilization_trials(
            AngluinProtocol, 10, trials=2, engine="multiset"
        )
        assert all(outcome.leader_count == 1 for outcome in outcomes)

    def test_convergence_error_names_the_seed(self):
        with pytest.raises(ConvergenceError, match="seed 4"):
            stabilization_trials(
                AngluinProtocol, 16, trials=1, base_seed=4, max_steps=5
            )


class TestDeclarativeTrials:
    def test_named_protocol_matches_factory(self):
        by_name = stabilization_trials("angluin", 8, trials=3, base_seed=5)
        by_factory = stabilization_trials(
            AngluinProtocol, 8, trials=3, base_seed=5
        )
        assert by_name == by_factory

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError):
            stabilization_trials("quantum", 8, trials=1)

    def test_params_require_a_named_protocol(self):
        with pytest.raises(ExperimentError):
            stabilization_trials(
                AngluinProtocol, 8, trials=1, params={"variant": "full"}
            )

    def test_context_overrides_trial_count(self):
        with execution_context(trials=2):
            outcomes = stabilization_trials("angluin", 8, trials=5)
        assert len(outcomes) == 2

    def test_context_overrides_engine(self):
        # The context's engine must replace the caller's explicit choice:
        # overriding agent -> multiset yields the multiset trajectory, not
        # the agent one (their chains differ per seed).
        agent = stabilization_trials("angluin", 8, trials=1, engine="agent")
        with execution_context(engine="multiset"):
            overridden = stabilization_trials(
                "angluin", 8, trials=1, engine="agent"
            )
        forced = stabilization_trials("angluin", 8, trials=1, engine="multiset")
        assert overridden == forced
        assert overridden != agent

    def test_factory_path_ignores_context_overrides(self):
        # Documented contract: only registry-named protocols honor the
        # execution context; factory callables keep their explicit args.
        plain = stabilization_trials(AngluinProtocol, 8, trials=3)
        with execution_context(trials=1, engine="multiset"):
            under_context = stabilization_trials(AngluinProtocol, 8, trials=3)
        assert under_context == plain

    def test_context_store_caches_between_calls(self):
        with TrialStore(":memory:") as store:
            with execution_context(store=store):
                first = stabilization_trials("angluin", 8, trials=3)
                assert len(store) == 3
                second = stabilization_trials("angluin", 8, trials=3)
        assert first == second
