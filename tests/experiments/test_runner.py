"""Tests for repro.experiments.runner."""

import pytest

from repro.engine.multiset import MultisetSimulator
from repro.engine.simulator import AgentSimulator
from repro.errors import ExperimentError
from repro.experiments.runner import make_simulator, stabilization_trials
from repro.protocols.angluin import AngluinProtocol


class TestMakeSimulator:
    def test_agent_engine(self):
        sim = make_simulator(AngluinProtocol(), 8, seed=0, engine="agent")
        assert isinstance(sim, AgentSimulator)

    def test_multiset_engine(self):
        sim = make_simulator(AngluinProtocol(), 8, seed=0, engine="multiset")
        assert isinstance(sim, MultisetSimulator)

    def test_unknown_engine(self):
        with pytest.raises(ExperimentError):
            make_simulator(AngluinProtocol(), 8, seed=0, engine="quantum")


class TestStabilizationTrials:
    def test_runs_requested_trials(self):
        outcomes = stabilization_trials(AngluinProtocol, 8, trials=5, base_seed=3)
        assert len(outcomes) == 5

    def test_every_trial_stabilizes(self):
        outcomes = stabilization_trials(AngluinProtocol, 12, trials=4)
        assert all(outcome.leader_count == 1 for outcome in outcomes)

    def test_seeds_are_derived_sequentially(self):
        outcomes = stabilization_trials(AngluinProtocol, 8, trials=3, base_seed=7)
        assert [o.seed for o in outcomes] == [7, 8, 9]

    def test_reproducible_per_seed(self):
        a = stabilization_trials(AngluinProtocol, 8, trials=2, base_seed=5)
        b = stabilization_trials(AngluinProtocol, 8, trials=2, base_seed=5)
        assert [o.steps for o in a] == [o.steps for o in b]

    def test_parallel_time_consistent_with_steps(self):
        outcomes = stabilization_trials(AngluinProtocol, 10, trials=2)
        for outcome in outcomes:
            assert outcome.parallel_time == pytest.approx(outcome.steps / 10)

    def test_rejects_zero_trials(self):
        with pytest.raises(ExperimentError):
            stabilization_trials(AngluinProtocol, 8, trials=0)

    def test_multiset_engine_trials(self):
        outcomes = stabilization_trials(
            AngluinProtocol, 10, trials=2, engine="multiset"
        )
        assert all(outcome.leader_count == 1 for outcome in outcomes)
