"""Tests for repro.experiments.hooks."""

from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.experiments.hooks import ColorGenerationTracker, EpochEntryTracker


class TestColorGenerationTracker:
    def run_tracked(self, n=16, steps=40000, seed=0):
        protocol = PLLProtocol.for_population(n)
        sim = AgentSimulator(protocol, n, seed=seed)
        tracker = ColorGenerationTracker(n)
        sim.add_hook(tracker)
        sim.run(steps)
        return sim, tracker

    def test_generation_zero_at_start(self):
        tracker = ColorGenerationTracker(4)
        assert tracker.first_step[0] == 0
        assert tracker.all_step[0] == 0
        assert tracker.max_generation == 0

    def test_generations_advance_during_run(self):
        _sim, tracker = self.run_tracked()
        assert tracker.max_generation >= 1

    def test_first_step_precedes_all_step(self):
        _sim, tracker = self.run_tracked()
        for generation, first in tracker.first_step.items():
            if generation in tracker.all_step and generation > 0:
                assert first <= tracker.all_step[generation]

    def test_generation_matches_color_mod3(self):
        sim, tracker = self.run_tracked()
        for agent in range(sim.n):
            generation = tracker.generation_of(agent)
            assert sim.state_of(agent).color == generation % 3

    def test_first_steps_are_increasing_in_generation(self):
        _sim, tracker = self.run_tracked(steps=80000)
        generations = sorted(tracker.first_step)
        steps = [tracker.first_step[g] for g in generations]
        assert steps == sorted(steps)


class TestEpochEntryTracker:
    def test_epoch_one_at_start(self):
        tracker = EpochEntryTracker()
        assert tracker.reached(1)
        assert not tracker.reached(2)

    def test_detects_epoch_progression(self):
        n = 16
        protocol = PLLProtocol.for_population(n)
        sim = AgentSimulator(protocol, n, seed=1)
        tracker = EpochEntryTracker()
        sim.add_hook(tracker)
        sim.run(
            300 * protocol.params.m * n,
            until=lambda s: tracker.reached(4),
            check_every=64,
        )
        assert tracker.reached(2)
        assert tracker.reached(3)
        assert tracker.reached(4)
        assert (
            tracker.first_step[2]
            < tracker.first_step[3]
            < tracker.first_step[4]
        )
