"""Tests for repro.experiments.spec and the registry."""

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.experiments.spec import (
    ExperimentResult,
    ExperimentSpec,
    register,
    scaled,
)
from repro.errors import ExperimentError


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = set(all_experiments())
        assert ids == {f"E{i}" for i in range(1, 15)}

    def test_lookup_is_case_insensitive(self):
        spec, run = get_experiment("e9")
        assert spec.id == "E9"
        assert callable(run)

    def test_unknown_id_raises_with_known_list(self):
        with pytest.raises(ExperimentError) as excinfo:
            get_experiment("E99")
        assert "E9" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        spec = ExperimentSpec(
            id="E9", title="dup", paper_artifact="x", paper_claim="y", bench="z"
        )
        with pytest.raises(ExperimentError):
            register(spec)(lambda **kw: None)

    def test_every_spec_names_paper_artifact_and_bench(self):
        for spec, _run in all_experiments().values():
            assert spec.paper_artifact
            assert spec.paper_claim
            assert spec.bench.startswith("benchmarks/")


class TestExperimentResult:
    def make_result(self):
        spec = ExperimentSpec(
            id="EX", title="t", paper_artifact="a", paper_claim="c", bench="b"
        )
        return ExperimentResult(
            spec=spec,
            headers=["n", "value"],
            rows=[{"n": 1, "value": 2.0}, {"n": 2, "value": 3.0}],
            notes=["a note"],
        )

    def test_render_contains_claim_and_table(self):
        text = self.make_result().render()
        assert "paper claim" in text
        assert "note: a note" in text
        assert "value" in text

    def test_column_extraction(self):
        assert self.make_result().column("value") == [2.0, 3.0]

    def test_unknown_column_raises(self):
        with pytest.raises(ExperimentError):
            self.make_result().column("bogus")


class TestScaled:
    def test_scales_and_rounds(self):
        # round() uses banker's rounding: 10 * 0.25 = 2.5 -> 2.
        assert scaled([10, 100], 0.25) == [2, 25]
        assert scaled([10, 100], 0.3) == [3, 30]

    def test_respects_minimum(self):
        assert scaled([10], 0.01) == [1]
        assert scaled([10], 0.01, minimum=2) == [2]

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ExperimentError):
            scaled([10], 0)
