"""SchedulerSpec validation, exchangeability, and the degradation ladder."""

import pytest

from repro.errors import ExperimentError
from repro.orchestration.spec import TrialSpec, trial_specs
from repro.schedulers.spec import (
    FAMILIES,
    GRAPH_FAMILIES,
    SchedulerSpec,
    resolve_schedule_engine,
)


class TestCreateValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ExperimentError, match="unknown scheduler family"):
            SchedulerSpec.create("star")

    def test_foreign_parameter_rejected_per_family(self):
        with pytest.raises(ExperimentError, match="takes no 'degree'"):
            SchedulerSpec.create("ring", degree=4)
        with pytest.raises(ExperimentError, match="takes no 'weights'"):
            SchedulerSpec.create("torus", weights={"L": 2.0})

    def test_weighted_needs_positive_finite_weights(self):
        with pytest.raises(ExperimentError, match="non-empty weights"):
            SchedulerSpec.create("weighted")
        with pytest.raises(ExperimentError, match="positive and finite"):
            SchedulerSpec.create("weighted", weights={"L": 0.0})
        with pytest.raises(ExperimentError, match="positive and finite"):
            SchedulerSpec.create("weighted", weights={"L": float("inf")})

    def test_regular_degree_must_be_even(self):
        with pytest.raises(ExperimentError, match="even"):
            SchedulerSpec.create("regular", degree=3)

    def test_single_clique_takes_no_bridges(self):
        with pytest.raises(ExperimentError, match="complete graph"):
            SchedulerSpec.create("cliques", cliques=1, bridges=2)

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ExperimentError, match="unknown scheduler spec"):
            SchedulerSpec.from_mapping({"family": "ring", "radius": 2})

    def test_coerce_passes_none_and_specs_through(self):
        spec = SchedulerSpec.create("ring")
        assert SchedulerSpec.coerce(None) is None
        assert SchedulerSpec.coerce(spec) is spec
        assert SchedulerSpec.coerce({"family": "ring"}) == spec


class TestValidateAgainst:
    def test_square_torus_needs_a_perfect_square(self):
        torus = SchedulerSpec.create("torus")
        torus.validate_against(64)
        with pytest.raises(ExperimentError, match="perfect-square"):
            torus.validate_against(60)

    def test_explicit_rows_must_divide_n(self):
        torus = SchedulerSpec.create("torus", rows=4)
        torus.validate_against(32)
        with pytest.raises(ExperimentError, match="torus"):
            torus.validate_against(30)

    def test_regular_degree_needs_enough_agents(self):
        with pytest.raises(ExperimentError, match="degree 8"):
            SchedulerSpec.create("regular", degree=8).validate_against(8)

    def test_cliques_must_split_evenly(self):
        spec = SchedulerSpec.create("cliques", cliques=4, bridges=4)
        spec.validate_against(64)
        with pytest.raises(ExperimentError, match="does not split"):
            spec.validate_against(30)


class TestExchangeability:
    def test_every_family_is_classified(self):
        for family in ("uniform", "weighted"):
            assert SchedulerSpec(family=family).exchangeable
        for family in GRAPH_FAMILIES:
            assert not SchedulerSpec(family=family).exchangeable
        assert set(GRAPH_FAMILIES) < set(FAMILIES)

    def test_canonical_omits_default_fields(self):
        # regular with graph_seed=0 and with the field absent are the
        # same spec, so they must canonicalize (and hash) identically.
        explicit = SchedulerSpec.create("regular", degree=4, graph_seed=0)
        implicit = SchedulerSpec.create("regular", degree=4)
        assert explicit == implicit
        assert explicit.canonical() == {"family": "regular", "degree": 4}

    def test_describe_labels(self):
        assert SchedulerSpec.create("ring").describe() == "ring"
        assert (
            SchedulerSpec.create("weighted", weights={"L": 4.0}).describe()
            == "weighted(L=4)"
        )
        assert (
            SchedulerSpec.create("cliques", cliques=4, bridges=4).describe()
            == "cliques(4,b=4)"
        )


class TestDegradationLadder:
    def test_exchangeable_specs_keep_the_resolved_engine(self):
        weighted = SchedulerSpec.create("weighted", weights={"L": 2.0})
        for engine in ("multiset", "batch", "superbatch"):
            assert resolve_schedule_engine(weighted, engine) == engine
        assert resolve_schedule_engine(None, "superbatch") == "superbatch"

    def test_graph_specs_degrade_to_agent(self):
        ring = SchedulerSpec.create("ring")
        for engine in ("multiset", "batch", "superbatch", "ensemble"):
            assert resolve_schedule_engine(ring, engine) == "agent"

    def test_auto_trial_specs_ride_the_ladder(self):
        (spec,) = trial_specs(
            "fast-nonce",
            64,
            1,
            engine="auto",
            params={"bits": 48},
            scheduler={"family": "ring"},
        )
        assert spec.engine == "agent"
        (weighted,) = trial_specs(
            "pll",
            64,
            1,
            engine="auto",
            scheduler={"family": "weighted", "weights": {"L": 2.0}},
        )
        assert weighted.engine != "agent"

    def test_count_level_engine_with_graph_spec_rejected(self):
        # Asking for a count-level engine by name with an
        # identity-dependent schedule is a contradiction, not a silent
        # degradation.
        with pytest.raises(ExperimentError, match="agent"):
            TrialSpec.create(
                "pll", 64, 0, engine="multiset", scheduler={"family": "ring"}
            )

    def test_partition_fault_with_scheduler_rejected(self):
        with pytest.raises(ExperimentError, match="partition"):
            TrialSpec.create(
                "pll",
                64,
                0,
                engine="multiset",
                scheduler={"family": "weighted", "weights": {"L": 2.0}},
                fault_plan=[
                    {
                        "kind": "partition",
                        "at_step": 32,
                        "count": 4,
                        "duration": 50,
                    }
                ],
            )
