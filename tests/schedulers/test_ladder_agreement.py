"""KS agreement across the scheduler degradation ladder.

The ladder's soundness claim is distributional: a state-weighted spec
must induce the *same* stabilization-time law on every count-level
engine (superbatch and batch thin whole blocks, multiset thins per
step), and a graph spec's degraded per-agent run must match a direct
scheduler-driven run of the same graph.  Both claims are graded with
two-sample Kolmogorov-Smirnov tests at fixed seeds (strict
alpha = 0.001: deterministic, failing only if a code change actually
shifts a distribution) — the ``tests/engine/test_superbatch_agree.py``
methodology.

The uniform family's stronger, exact claim — an explicit
``{"family": "uniform"}`` spec is *bit-identical* to ``scheduler=None``
on every engine — is pinned here too.
"""

import numpy as np
import pytest

from repro.analysis.stats import ks_critical_value, ks_statistic
from repro.engine.scheduler import RestrictedScheduler
from repro.engine.simulator import AgentSimulator
from repro.orchestration.pool import build_simulator
from repro.orchestration.registry import build_protocol
from repro.schedulers.spec import SchedulerSpec
from repro.schedulers.weighted import (
    WeightedBatchSimulator,
    WeightedMultisetSimulator,
    WeightedSuperBatchSimulator,
)

#: Leaders meet 4x more often than weight-1 agents: accelerates the
#: elimination phases, so the pinned trials stay fast while still
#: exercising every thinning path (acceptance < 1 on most pairs).
WEIGHTS = {"L": 4.0}


def weighted_times(engine_cls, protocol_name, n, trials, seed0):
    times = []
    for trial in range(trials):
        sim = engine_cls(
            build_protocol(protocol_name, n), n, WEIGHTS, seed=seed0 + trial
        )
        sim.run_until_stabilized()
        times.append(sim.parallel_time)
    return np.asarray(times)


def assert_same_distribution(first, second, label):
    statistic = ks_statistic(first, second)
    threshold = ks_critical_value(len(first), len(second), alpha=0.001)
    assert statistic < threshold, (
        f"{label}: KS statistic {statistic:.3f} exceeds {threshold:.3f} "
        f"(medians {np.median(first):.2f} vs {np.median(second):.2f})"
    )


class TestWeightedLadderAgreesOnPLL:
    N = 32
    TRIALS = 40

    @pytest.fixture(scope="class")
    def samples(self):
        return {
            "multiset": weighted_times(
                WeightedMultisetSimulator, "pll", self.N, self.TRIALS, 1000
            ),
            "batch": weighted_times(
                WeightedBatchSimulator, "pll", self.N, self.TRIALS, 2000
            ),
            "superbatch": weighted_times(
                WeightedSuperBatchSimulator, "pll", self.N, self.TRIALS, 3000
            ),
        }

    def test_superbatch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["superbatch"],
            samples["multiset"],
            "pll weighted superbatch/multiset",
        )

    def test_batch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["batch"],
            samples["multiset"],
            "pll weighted batch/multiset",
        )

    def test_every_trial_elects_one_leader(self):
        sim = WeightedSuperBatchSimulator(
            build_protocol("pll", self.N), self.N, WEIGHTS, seed=3000
        )
        sim.run_until_stabilized()
        assert sim.leader_count == 1


class TestWeightedLadderAgreesOnAngluin:
    N = 24
    TRIALS = 48

    @pytest.fixture(scope="class")
    def samples(self):
        return {
            "multiset": weighted_times(
                WeightedMultisetSimulator, "angluin", self.N, self.TRIALS, 1000
            ),
            "batch": weighted_times(
                WeightedBatchSimulator, "angluin", self.N, self.TRIALS, 2000
            ),
            "superbatch": weighted_times(
                WeightedSuperBatchSimulator,
                "angluin",
                self.N,
                self.TRIALS,
                3000,
            ),
        }

    def test_superbatch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["superbatch"],
            samples["multiset"],
            "angluin weighted superbatch/multiset",
        )

    def test_batch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["batch"],
            samples["multiset"],
            "angluin weighted batch/multiset",
        )


class TestGraphDegradationAgreesWithDirectDrive:
    """The degraded per-agent path vs driving the scheduler by hand.

    ``cliques=1`` is the complete graph, whose directed edge multiset is
    exactly the uniform scheduler's support — and
    :class:`RestrictedScheduler` over the full population reproduces
    that distribution through an entirely different code path.  The
    built (ladder) simulator and the hand-assembled one must therefore
    induce the same stabilization-time law.
    """

    N = 32
    TRIALS = 40

    @pytest.fixture(scope="class")
    def samples(self):
        spec = SchedulerSpec.create("cliques", cliques=1)
        ladder = []
        for trial in range(self.TRIALS):
            sim = build_simulator(
                build_protocol("pll", self.N),
                self.N,
                seed=1000 + trial,
                engine="agent",
                scheduler=spec,
            )
            sim.run_until_stabilized()
            ladder.append(sim.parallel_time)
        direct = []
        for trial in range(self.TRIALS):
            sim = AgentSimulator(
                build_protocol("pll", self.N),
                self.N,
                seed=2000 + trial,
                scheduler=RestrictedScheduler(
                    self.N, range(self.N), seed=2000 + trial
                ),
            )
            sim.run_until_stabilized()
            direct.append(sim.parallel_time)
        return np.asarray(ladder), np.asarray(direct)

    def test_degraded_run_matches_direct_drive(self, samples):
        ladder, direct = samples
        assert_same_distribution(
            ladder, direct, "complete-graph ladder/direct"
        )


class TestUniformSpecBitIdentity:
    """An explicit uniform spec must be *bit-identical* to ``None``."""

    N = 64
    SEED = 42

    @pytest.mark.parametrize(
        "engine", ["agent", "multiset", "batch", "superbatch"]
    )
    def test_same_trajectory_on_every_engine(self, engine):
        uniform = SchedulerSpec.create("uniform")
        baseline = build_simulator(
            build_protocol("pll", self.N), self.N, seed=self.SEED, engine=engine
        )
        spelled = build_simulator(
            build_protocol("pll", self.N),
            self.N,
            seed=self.SEED,
            engine=engine,
            scheduler=uniform,
        )
        baseline.run_until_stabilized()
        spelled.run_until_stabilized()
        assert baseline.steps == spelled.steps
        assert baseline.leader_count == spelled.leader_count
