"""Scheduler-spec hash neutrality: ``scheduler=None`` keeps every hash.

Spec content hashes name store rows, so if attaching the ``scheduler``
field had leaked into the canonical form of uniform-schedule specs,
every existing trial store would silently re-execute from scratch.  The
hashes pinned here are the same pre-fault-subsystem values
``tests/faults/test_hash_neutrality.py`` pins (computed on the
telemetry-PR checkout, before either optional field existed): any drift
is a breaking store-format change, not a test to update casually.
"""

import json

from repro.orchestration.pool import run_specs
from repro.orchestration.spec import TrialSpec
from repro.orchestration.store import TrialStore
from repro.schedulers.spec import SchedulerSpec

#: (protocol, n, seed, engine, content hash) computed before the faults
#: and schedulers subsystems existed.
PINNED = [
    ("pll", 24, 0, "agent", "9031ef2f5f5975a7e7c3dbf66231e7c89e0b097e443e82480e4265ac03f160d0"),
    ("angluin", 24, 0, "agent", "2b89b4add69decaa5cb1ce0f555ef52d4f06cfa982f1cba64f6c6e99b5e80c10"),
    ("angluin", 24, 1, "multiset", "e7e64675722ac4d62c82a805585aad97aef099268dbf61c9143d9a9b82ac3e2f"),
    ("pll", 64, 0, "multiset", "d6a1d72586450b4d90b9af62f2a7f618656d0383e0e71bae6a8c4075c7ad8d1c"),
    ("pll", 256, 0, "batch", "7f4405a8297491412e7e7f2ac84dcd8e7afbdae60494418c10ed5570e68e6596"),
    ("pll", 256, 2, "superbatch", "a0af4d2e9d15987feed5f35fc3915252f9185ec208679ca8037c9b28e3baace1"),
    ("pll", 1000000, 0, "superbatch", "de168ad1a1d9dd51aa3370fd7a9597a13d37124350fdaa4971702bf6b90370cf"),
]

PINNED_WITH_PARAMS = (
    "9264bd608de717cd994087e74d07c45625571d0d7a5f24e0a2d32fb45fbfa736"
)

WEIGHTED = SchedulerSpec.create("weighted", weights={"L": 4.0})


class TestUniformSpecHashes:
    def test_pre_scheduler_hashes_unchanged(self):
        for protocol, n, seed, engine, expected in PINNED:
            spec = TrialSpec.create(protocol, n, seed, engine=engine)
            assert spec.content_hash() == expected, (protocol, n, seed, engine)

    def test_params_spec_hash_unchanged(self):
        spec = TrialSpec.create(
            "pll",
            128,
            3,
            engine="multiset",
            params={"variant": "no-backup"},
            max_steps=500000,
        )
        assert spec.content_hash() == PINNED_WITH_PARAMS

    def test_canonical_form_has_no_scheduler_key(self):
        canonical = TrialSpec.create("pll", 64, 0, engine="multiset").canonical()
        assert "scheduler" not in canonical

    def test_explicit_uniform_spec_normalizes_to_none(self):
        # Both spellings of the paper's scheduler must hash (and
        # therefore cache) identically: the explicit baseline cell of a
        # grid is the same trial as the default.
        implicit = TrialSpec.create("pll", 64, 0, engine="multiset")
        explicit = TrialSpec.create(
            "pll", 64, 0, engine="multiset", scheduler={"family": "uniform"}
        )
        assert explicit.scheduler is None
        assert explicit.content_hash() == implicit.content_hash()


class TestScheduledSpecIdentity:
    def test_spec_enters_the_canonical_form(self):
        spec = TrialSpec.create(
            "pll", 64, 0, engine="multiset", scheduler=WEIGHTED
        )
        assert spec.canonical()["scheduler"] == WEIGHTED.canonical()

    def test_scheduled_hash_differs_from_uniform(self):
        uniform = TrialSpec.create("pll", 64, 0, engine="multiset")
        weighted = TrialSpec.create(
            "pll", 64, 0, engine="multiset", scheduler=WEIGHTED
        )
        assert uniform.content_hash() != weighted.content_hash()

    def test_equivalent_specs_hash_identically(self):
        from_spec = TrialSpec.create(
            "pll", 64, 0, engine="multiset", scheduler=WEIGHTED
        )
        from_mapping = TrialSpec.create(
            "pll",
            64,
            0,
            engine="multiset",
            scheduler={"family": "weighted", "weights": {"L": 4.0}},
        )
        assert from_spec.content_hash() == from_mapping.content_hash()

    def test_spec_json_round_trip_preserves_scheduler(self):
        spec = TrialSpec.create(
            "fast-nonce",
            64,
            0,
            engine="agent",
            params={"bits": 48},
            scheduler={"family": "ring"},
        )
        restored = TrialSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()


class TestStoreRowNeutrality:
    def test_uniform_rows_carry_no_scheduler_record(self):
        specs = [TrialSpec.create("angluin", 24, seed) for seed in range(2)]
        with TrialStore(":memory:") as store:
            run_specs(specs, store=store)
            rows = list(store.rows())
        assert all(row["scheduler"] is None for row in rows)

    def test_scheduled_rows_carry_the_record(self):
        spec = TrialSpec.create(
            "angluin",
            24,
            0,
            engine="multiset",
            scheduler={"family": "weighted", "weights": {"L": 4.0}},
        )
        with TrialStore(":memory:") as store:
            run_specs([spec], store=store)
            (row,) = store.rows()
        record = json.loads(row["scheduler"])
        assert record["spec"] == spec.scheduler.canonical()
        assert "degraded_from" not in record  # exchangeable: no ladder drop

    def test_degraded_rows_record_the_engine_they_left(self):
        # A graph spec at a size whose default engine is count-level:
        # auto resolution degrades to agent and the row says so.
        spec = TrialSpec.create(
            "fast-nonce",
            64,
            0,
            engine="agent",
            params={"bits": 48},
            scheduler={"family": "ring"},
        )
        with TrialStore(":memory:") as store:
            run_specs([spec], store=store)
            (row,) = store.rows()
        record = json.loads(row["scheduler"])
        assert record["spec"] == {"family": "ring"}
        assert record["degraded_from"] == "multiset"
