"""Tests for repro.engine.metrics."""

import pytest

from repro.engine.metrics import InteractionCounter, StateChangeCounter, parallel_time
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator
from repro.protocols.angluin import AngluinProtocol


class TestParallelTime:
    def test_division(self):
        assert parallel_time(300, 100) == 3.0

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            parallel_time(10, 0)


class TestInteractionCounter:
    def test_counts_both_participants(self):
        sim = AgentSimulator(
            AngluinProtocol(),
            4,
            scheduler=DeterministicSchedule([(0, 1), (0, 2)]),
        )
        counter = InteractionCounter(4)
        sim.add_hook(counter)
        sim.run(2)
        assert counter.counts.tolist() == [2, 1, 1, 0]

    def test_all_touched(self):
        sim = AgentSimulator(
            AngluinProtocol(),
            4,
            scheduler=DeterministicSchedule([(0, 1), (2, 3)]),
        )
        counter = InteractionCounter(4)
        sim.add_hook(counter)
        sim.step()
        assert not counter.all_touched
        sim.step()
        assert counter.all_touched

    def test_min_count(self):
        counter = InteractionCounter(3)
        sim = AgentSimulator(
            AngluinProtocol(), 3, scheduler=DeterministicSchedule([(0, 1)])
        )
        sim.add_hook(counter)
        sim.run(1)
        assert counter.min_count == 0


class TestStateChangeCounter:
    def test_distinguishes_effective_and_null(self):
        sim = AgentSimulator(
            AngluinProtocol(),
            3,
            scheduler=DeterministicSchedule([(0, 1), (0, 1)]),
        )
        counter = StateChangeCounter()
        sim.add_hook(counter)
        sim.run(2)  # first demotes agent 1; second is a null L-F meeting
        assert counter.effective == 1
        assert counter.null == 1
        assert counter.total == 2
