"""Statistical agreement of the super-batch engine with the others.

The super-batch engine samples the scheduler entirely at the count
level — exact birthday run lengths, hypergeometric pair multisets,
count-level collision replay — so a bias in any of those samplers would
surface as a shifted stabilization-time distribution.  As with the
batch engine, agreement is enforced with two-sample Kolmogorov–Smirnov
tests at fixed seeds (strict alpha = 0.001: deterministic, failing only
if a code change actually shifts a distribution).
"""

import numpy as np
import pytest

from repro.analysis.stats import ks_critical_value, ks_statistic
from repro.core.pll import PLLProtocol
from repro.engine import BatchSimulator, MultisetSimulator
from repro.engine.superbatch import SuperBatchSimulator
from repro.protocols.angluin import AngluinProtocol


def stabilization_times(engine_cls, protocol_factory, n, trials, seed0):
    times = []
    for trial in range(trials):
        sim = engine_cls(protocol_factory(), n, seed=seed0 + trial)
        sim.run_until_stabilized()
        times.append(sim.parallel_time)
    return np.asarray(times)


def assert_same_distribution(first, second, label):
    statistic = ks_statistic(first, second)
    threshold = ks_critical_value(len(first), len(second), alpha=0.001)
    assert statistic < threshold, (
        f"{label}: KS statistic {statistic:.3f} exceeds {threshold:.3f} "
        f"(medians {np.median(first):.2f} vs {np.median(second):.2f})"
    )


class TestSuperBatchAgreesOnAngluin:
    N = 24
    TRIALS = 48

    @pytest.fixture(scope="class")
    def samples(self):
        return {
            "multiset": stabilization_times(
                MultisetSimulator, AngluinProtocol, self.N, self.TRIALS, 1000
            ),
            "batch": stabilization_times(
                BatchSimulator, AngluinProtocol, self.N, self.TRIALS, 2000
            ),
            "superbatch": stabilization_times(
                SuperBatchSimulator, AngluinProtocol, self.N, self.TRIALS, 3000
            ),
        }

    def test_superbatch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["superbatch"],
            samples["multiset"],
            "angluin superbatch/multiset",
        )

    def test_superbatch_vs_batch(self, samples):
        assert_same_distribution(
            samples["superbatch"], samples["batch"], "angluin superbatch/batch"
        )


class TestSuperBatchAgreesOnPLL:
    N = 32
    TRIALS = 40

    @pytest.fixture(scope="class")
    def samples(self):
        factory = lambda: PLLProtocol.for_population(self.N)  # noqa: E731
        return {
            "multiset": stabilization_times(
                MultisetSimulator, factory, self.N, self.TRIALS, 1000
            ),
            "batch": stabilization_times(
                BatchSimulator, factory, self.N, self.TRIALS, 2000
            ),
            "superbatch": stabilization_times(
                SuperBatchSimulator, factory, self.N, self.TRIALS, 3000
            ),
        }

    def test_superbatch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["superbatch"],
            samples["multiset"],
            "pll superbatch/multiset",
        )

    def test_superbatch_vs_batch(self, samples):
        assert_same_distribution(
            samples["superbatch"], samples["batch"], "pll superbatch/batch"
        )

    def test_every_trial_elects_one_leader(self, samples):
        # The KS comparison is meaningless if the engine "stabilized"
        # into a different predicate; spot-check it directly.
        sim = SuperBatchSimulator(
            PLLProtocol.for_population(self.N), self.N, seed=3000
        )
        sim.run_until_stabilized()
        assert sim.leader_count == 1
