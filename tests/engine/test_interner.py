"""Tests for repro.engine.interner."""

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.interner import StateInterner


class TestInternBasics:
    def test_first_state_gets_id_zero(self):
        interner = StateInterner()
        assert interner.intern("a") == 0

    def test_ids_are_dense_and_sequential(self):
        interner = StateInterner()
        assert [interner.intern(s) for s in ("a", "b", "c")] == [0, 1, 2]

    def test_interning_twice_returns_same_id(self):
        interner = StateInterner()
        first = interner.intern(("x", 1))
        second = interner.intern(("x", 1))
        assert first == second

    def test_state_of_inverts_intern(self):
        interner = StateInterner()
        sid = interner.intern(("tuple", 42))
        assert interner.state_of(sid) == ("tuple", 42)

    def test_len_counts_distinct_states(self):
        interner = StateInterner()
        for state in ("a", "b", "a", "c", "b"):
            interner.intern(state)
        assert len(interner) == 3

    def test_contains(self):
        interner = StateInterner()
        interner.intern("present")
        assert "present" in interner
        assert "absent" not in interner

    def test_id_of_returns_none_for_unknown(self):
        interner = StateInterner()
        assert interner.id_of("never seen") is None

    def test_id_of_known_state(self):
        interner = StateInterner()
        sid = interner.intern("known")
        assert interner.id_of("known") == sid

    def test_iter_yields_states_in_id_order(self):
        interner = StateInterner()
        for state in ("z", "y", "x"):
            interner.intern(state)
        assert list(interner) == ["z", "y", "x"]

    def test_states_returns_copy(self):
        interner = StateInterner()
        interner.intern("a")
        snapshot = interner.states()
        snapshot.append("bogus")
        assert len(interner) == 1

    def test_map_ids_builds_side_table(self):
        interner = StateInterner()
        for value in (10, 20, 30):
            interner.intern(value)
        assert interner.map_ids(lambda s: s * 2) == [20, 40, 60]

    def test_distinct_hashables_do_not_collide(self):
        interner = StateInterner()
        a = interner.intern((1, 2))
        b = interner.intern((1, 3))
        assert a != b


class TestInternProperties:
    @given(st.lists(st.one_of(st.integers(), st.text(), st.tuples(st.integers()))))
    def test_roundtrip(self, states):
        interner = StateInterner()
        ids = [interner.intern(state) for state in states]
        for state, sid in zip(states, ids):
            assert interner.state_of(sid) == state
            assert interner.id_of(state) == interner.intern(state)

    @given(st.lists(st.integers(), min_size=1))
    def test_id_space_is_dense(self, states):
        interner = StateInterner()
        for state in states:
            interner.intern(state)
        assert sorted({interner.intern(s) for s in states}) == list(
            range(len(set(states)))
        )
