"""Tests for RestrictedScheduler and mid-run scheduler swaps."""

import pytest

from repro.core.pll import PLLProtocol
from repro.engine.scheduler import RandomScheduler, RestrictedScheduler
from repro.engine.simulator import AgentSimulator
from repro.errors import ScheduleError
from repro.protocols.angluin import AngluinProtocol


class TestRestrictedScheduler:
    def test_pairs_stay_inside_partition(self):
        scheduler = RestrictedScheduler(10, allowed=[2, 5, 7], seed=0)
        for u, v in scheduler.pairs(500):
            assert u in (2, 5, 7)
            assert v in (2, 5, 7)
            assert u != v

    def test_all_member_pairs_occur(self):
        scheduler = RestrictedScheduler(6, allowed=[0, 3, 4], seed=1)
        seen = set(scheduler.pairs(600))
        assert len(seen) == 6  # 3 * 2 ordered pairs

    def test_rejects_tiny_partition(self):
        with pytest.raises(ScheduleError):
            RestrictedScheduler(10, allowed=[3], seed=0)

    def test_rejects_members_out_of_range(self):
        with pytest.raises(ScheduleError):
            RestrictedScheduler(5, allowed=[0, 7], seed=0)

    def test_duplicate_members_rejected(self):
        """Duplicates used to be silently deduplicated; now they are an
        error — a doubled entry cannot mean a doubled interaction rate."""
        with pytest.raises(ScheduleError, match="duplicate"):
            RestrictedScheduler(5, allowed=[1, 1, 2], seed=0)

    def test_deterministic_under_seed(self):
        first = RestrictedScheduler(20, allowed=[1, 4, 9, 16], seed=7)
        second = RestrictedScheduler(20, allowed=[1, 4, 9, 16], seed=7)
        assert list(first.pairs(300)) == list(second.pairs(300))

    def test_different_seeds_diverge(self):
        first = RestrictedScheduler(20, allowed=[1, 4, 9, 16], seed=7)
        second = RestrictedScheduler(20, allowed=[1, 4, 9, 16], seed=8)
        assert list(first.pairs(300)) != list(second.pairs(300))

    def test_complete_graph_matches_random_scheduler(self):
        """allowed=everyone is the uniform scheduler: identical streams.

        The member list is the identity map, and the inner generator is
        seeded the same way, so this is exact equality, not just
        distributional agreement.
        """
        restricted = RestrictedScheduler(12, allowed=range(12), seed=5)
        uniform = RandomScheduler(12, seed=5)
        assert list(restricted.pairs(1000)) == list(uniform.pairs(1000))


class TestSchedulerSwap:
    def test_partitioned_population_cannot_stabilize(self):
        """Only the clique interacts: outsiders stay leaders forever."""
        sim = AgentSimulator(
            AngluinProtocol(),
            12,
            scheduler=RestrictedScheduler(12, allowed=range(4), seed=0),
        )
        sim.run(5000)
        assert sim.leader_count == 9  # 8 isolated leaders + 1 clique winner

    def test_heal_then_stabilize(self):
        sim = AgentSimulator(
            AngluinProtocol(),
            12,
            scheduler=RestrictedScheduler(12, allowed=range(4), seed=0),
        )
        sim.run(2000)
        sim.set_scheduler(RandomScheduler(12, seed=1))
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_pll_partition_heals_to_unique_leader(self):
        """The E13 scenario end-to-end at small size."""
        protocol = PLLProtocol.for_population(16)
        sim = AgentSimulator(
            protocol,
            16,
            scheduler=RestrictedScheduler(16, allowed=range(4), seed=2),
        )
        sim.run(4 * protocol.params.cmax * 4)
        sim.set_scheduler(RandomScheduler(16, seed=3))
        sim.run_until_stabilized()
        assert sim.leader_count == 1
