"""Compiled-kernel correctness: agreement, equivalence, cache semantics.

The compiled kernels (:mod:`repro.engine.kernel`) are a pure execution
path — they must be *invisible* in every observable: the packed codecs
round-trip states exactly, the vectorized deltas agree with the Python
``transition`` on every pair, engines produce byte-identical
trajectories on either path, and the kernel cache interns exactly the
states the interner+cache path would.  These tests pin all of that.
"""

import numpy as np
import pytest

from repro.core.pll import PLLProtocol, VARIANTS
from repro.core.symmetric import SymmetricPLLProtocol
from repro.engine.batch import BatchSimulator
from repro.engine.interner import StateInterner
from repro.engine.kernel import (
    CompiledKernel,
    KernelTransitionCache,
    compiled_kernel_for,
    make_transition_cache,
)
from repro.engine.kernel.multiset import KernelMultisetSimulator
from repro.engine.multiset import MultisetSimulator
from repro.engine.protocol import LEADER
from repro.engine.simulator import AgentSimulator
from repro.orchestration.registry import build_protocol, protocol_names
from repro.protocols.angluin import AngluinProtocol

#: Registry names expected to compile kernels (the ISSUE 4 opt-in set;
#: ``lottery`` rides along because it *is* PLL's no-tournament variant).
KERNELIZED = (
    "pll",
    "pll-symmetric",
    "pll-no-tournament",
    "pll-backup-only",
    "lottery",
    "angluin",
    "approximate-majority",
    "exact-majority",
    "size-estimation",
    "countup-timer",
)

#: Registry names that deliberately keep the interner+cache path.
UNKERNELIZED = ("fast-nonce", "loose")


def reachable_states(protocol, n, seed, steps=4000):
    """States reached by a short real trajectory (always well-formed)."""
    sim = AgentSimulator(protocol, n, seed=seed, use_kernel=False)
    sim.run(steps)
    return sim.interner.states()


def assert_agreement(protocol, states, rng, pairs=4000, exhaustive=False):
    """Kernel apply_codes must equal transition() on the given states."""
    kernel = compiled_kernel_for(protocol)
    assert kernel is not None
    for state in states:
        assert kernel.decode(kernel.encode(state)) == state
    codes = np.array([kernel.encode(state) for state in states], dtype=np.int64)
    count = len(states)
    if exhaustive:
        index0 = np.repeat(np.arange(count), count)
        index1 = np.tile(np.arange(count), count)
    else:
        index0 = rng.integers(0, count, size=pairs)
        index1 = rng.integers(0, count, size=pairs)
    post0, post1 = kernel.apply_codes(codes[index0], codes[index1])
    for a, b, q0, q1 in zip(
        index0.tolist(), index1.tolist(), post0.tolist(), post1.tolist()
    ):
        expected = protocol.transition(states[a], states[b])
        got = (kernel.decode(q0), kernel.decode(q1))
        assert got == expected, (
            f"{protocol.name}: T({states[a]!r}, {states[b]!r}) = "
            f"{expected!r}, kernel produced {got!r}"
        )


class TestRegistryCoverage:
    @pytest.mark.parametrize("name", KERNELIZED)
    def test_registry_protocol_compiles_a_kernel(self, name):
        assert compiled_kernel_for(build_protocol(name, 64)) is not None

    @pytest.mark.parametrize("name", UNKERNELIZED)
    def test_uncompiled_protocols_keep_the_cached_path(self, name):
        protocol = build_protocol(name, 64)
        assert compiled_kernel_for(protocol) is None
        cache = make_transition_cache(protocol, StateInterner())
        assert not isinstance(cache, KernelTransitionCache)

    def test_expected_names_cover_the_kernelized_registry(self):
        # New registry protocols must be sorted into one of the two
        # lists above (and gain agreement coverage when they opt in).
        # Names starting with "_" are fixtures other test modules
        # register and are not part of the shipped registry.
        shipped = {
            name for name in protocol_names() if not name.startswith("_")
        }
        assert set(KERNELIZED) | set(UNKERNELIZED) == shipped


class TestExhaustiveSmallDomainAgreement:
    """Every ordered pair over the protocol's full (small) state space."""

    def test_angluin(self):
        assert_agreement(
            AngluinProtocol(), [True, False], None, exhaustive=True
        )

    @pytest.mark.parametrize("name", ["approximate-majority", "exact-majority"])
    def test_majority(self, name):
        protocol = build_protocol(name, 16)
        kernel = compiled_kernel_for(protocol)
        states = [kernel.decode(code) for code in range(kernel.num_codes)]
        assert_agreement(protocol, states, None, exhaustive=True)

    def test_size_estimation(self):
        protocol = build_protocol("size-estimation", 16, {"level_cap": 4})
        kernel = compiled_kernel_for(protocol)
        states = [kernel.decode(code) for code in range(kernel.num_codes)]
        assert_agreement(protocol, states, None, exhaustive=True)

    def test_countup_timer(self):
        protocol = build_protocol("countup-timer", 16, {"cmax": 5})
        # The full code space includes ticks_seen up to the huge default
        # cap; enumerate the reachable low-tick slice exhaustively.
        from repro.sync.countup import TimerState

        states = [
            TimerState(count, color, ticks)
            for count in range(5)
            for color in range(3)
            for ticks in range(4)
        ]
        assert_agreement(protocol, states, None, exhaustive=True)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_pll_small_params(self, variant):
        protocol = PLLProtocol.for_population(4, variant=variant)
        rng = np.random.default_rng(5)
        states = protocol.compile_kernel().sample_states(rng, 60)
        states.append(protocol.initial_state())
        assert_agreement(protocol, states, rng, exhaustive=True)

    def test_symmetric_pll_small_params(self):
        protocol = SymmetricPLLProtocol.for_population(4)
        rng = np.random.default_rng(6)
        states = protocol.compile_kernel().sample_states(rng, 60)
        states.append(protocol.initial_state())
        assert_agreement(protocol, states, rng, exhaustive=True)


class TestRandomizedWideDomainAgreement:
    """Sampled pairs over wide parameterizations (the campaign regime)."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_pll_wide(self, variant):
        protocol = PLLProtocol.for_population(1024, variant=variant)
        rng = np.random.default_rng(11)
        states = protocol.compile_kernel().sample_states(rng, 400)
        states += reachable_states(
            PLLProtocol.for_population(1024, variant=variant), 64, seed=3
        )
        assert_agreement(protocol, states, rng, pairs=3000)

    def test_symmetric_pll_wide(self):
        protocol = SymmetricPLLProtocol.for_population(1024)
        rng = np.random.default_rng(12)
        states = protocol.compile_kernel().sample_states(rng, 400)
        states += reachable_states(
            SymmetricPLLProtocol.for_population(1024), 64, seed=3
        )
        assert_agreement(protocol, states, rng, pairs=3000)

    def test_countup_timer_wide(self):
        protocol = build_protocol("countup-timer", 1 << 16)
        states = reachable_states(
            build_protocol("countup-timer", 1 << 16), 48, seed=1
        )
        assert_agreement(
            protocol, states, np.random.default_rng(13), pairs=2000
        )

    def test_size_estimation_wide(self):
        protocol = build_protocol("size-estimation", 1 << 16)
        states = reachable_states(
            build_protocol("size-estimation", 1 << 16), 48, seed=2
        )
        assert_agreement(
            protocol, states, np.random.default_rng(14), pairs=2000
        )


class TestFeatureExtractors:
    @pytest.mark.parametrize(
        "name", ["pll", "pll-symmetric", "angluin"]
    )
    def test_leader_feature_matches_output(self, name):
        protocol = build_protocol(name, 64)
        kernel = compiled_kernel_for(protocol)
        states = reachable_states(build_protocol(name, 64), 32, seed=4)
        codes = np.array([kernel.encode(s) for s in states])
        marks = kernel.feature_values("leader", codes)
        for state, mark in zip(states, marks.tolist()):
            assert (protocol.output(state) == LEADER) == bool(mark)

    def test_unknown_feature_raises(self):
        kernel = compiled_kernel_for(AngluinProtocol())
        with pytest.raises(Exception):
            kernel.feature_values("no-such-feature", np.array([0]))


class TestTrajectoryEquivalence:
    """Kernel-backed vs interner-backed engines: byte-identical runs."""

    @pytest.mark.parametrize(
        "name,n", [("pll", 256), ("angluin", 128)]
    )
    @pytest.mark.parametrize("seed", [0, 7])
    def test_multiset_engines_agree_exactly(self, name, n, seed):
        cached = MultisetSimulator(
            build_protocol(name, n), n, seed=seed, use_kernel=False
        )
        kerneled = KernelMultisetSimulator(build_protocol(name, n), n, seed=seed)
        assert cached.run_until_stabilized() == kerneled.run_until_stabilized()
        assert cached.state_counts() == kerneled.state_counts()
        assert cached.distinct_states_seen() == kerneled.distinct_states_seen()
        assert cached.leader_count == kerneled.leader_count == 1
        assert cached.output_counts == kerneled.output_counts

    def test_multiset_checkpoints_agree_mid_run(self):
        cached = MultisetSimulator(
            build_protocol("pll", 512), 512, seed=3, use_kernel=False
        )
        kerneled = KernelMultisetSimulator(build_protocol("pll", 512), 512, seed=3)
        for _ in range(10):
            cached.run(700)
            kerneled.run(700)
            assert cached.steps == kerneled.steps
            assert cached.state_counts() == kerneled.state_counts()
            assert cached.state_id_counts() == kerneled.state_id_counts()

    @pytest.mark.parametrize("seed", [0, 5])
    def test_batch_paths_agree_exactly(self, seed):
        cached = BatchSimulator(
            build_protocol("pll", 1024), 1024, seed=seed, use_kernel=False
        )
        kerneled = BatchSimulator(
            build_protocol("pll", 1024), 1024, seed=seed, use_kernel=True
        )
        assert cached.run_until_stabilized() == kerneled.run_until_stabilized()
        assert cached.state_counts() == kerneled.state_counts()
        assert cached.stats.total_steps == kerneled.stats.total_steps

    def test_agent_paths_agree_exactly(self):
        cached = AgentSimulator(
            build_protocol("pll-symmetric", 64), 64, seed=9, use_kernel=False
        )
        kerneled = AgentSimulator(
            build_protocol("pll-symmetric", 64), 64, seed=9, use_kernel=True
        )
        cached.run(20_000)
        kerneled.run(20_000)
        assert cached.configuration() == kerneled.configuration()

    def test_kernel_multiset_load_counts_matches(self):
        protocol = build_protocol("angluin", 64)
        cached = MultisetSimulator(
            build_protocol("angluin", 64), 64, seed=2, use_kernel=False
        )
        kerneled = KernelMultisetSimulator(build_protocol("angluin", 64), 64, seed=2)
        counts = {True: 10, False: 54}
        cached.load_counts(counts)
        kerneled.load_counts(counts)
        assert kerneled.leader_count == 10
        assert cached.run_until_stabilized() == kerneled.run_until_stabilized()


class TestKernelTransitionCache:
    def test_interns_only_requested_posts(self):
        # The universe resolves whole regions, but the engine interner
        # must only ever see posts of pairs actually requested — that
        # is what keeps distinct_states_seen() identical to the
        # interner+cache path.
        protocol = PLLProtocol.for_population(64)
        interner = StateInterner()
        cache = KernelTransitionCache(protocol, interner)
        initial = interner.intern(protocol.initial_state())
        post0, post1 = cache.apply(initial, initial)
        mirror = StateInterner()
        reference = make_transition_cache(
            PLLProtocol.for_population(64), mirror, use_kernel=False
        )
        mirror.intern(protocol.initial_state())
        assert (post0, post1) == reference.apply(initial, initial)
        assert len(interner) == len(mirror)

    def test_apply_block_matches_scalar_apply(self):
        protocol = PLLProtocol.for_population(128)
        states = reachable_states(PLLProtocol.for_population(128), 32, seed=6)
        interner = StateInterner()
        cache = KernelTransitionCache(protocol, interner)
        for state in states:
            interner.intern(state)
        rng = np.random.default_rng(0)
        pre0 = rng.integers(0, len(states), size=500)
        pre1 = rng.integers(0, len(states), size=500)
        out0, out1 = cache.apply_block(pre0, pre1)
        for a, b, q0, q1 in zip(
            pre0.tolist(), pre1.tolist(), out0.tolist(), out1.tolist()
        ):
            assert cache.apply(a, b) == (q0, q1)

    def test_wide_fallback_beyond_pair_bound(self):
        protocol = build_protocol("countup-timer", 64, {"cmax": 40})
        interner = StateInterner()
        cache = KernelTransitionCache(protocol, interner, pair_bound=8)
        sim_states = reachable_states(
            build_protocol("countup-timer", 64, {"cmax": 40}), 16, seed=0
        )
        for state in sim_states:
            interner.intern(state)
        assert len(interner) > 8
        pairs = [(0, 1), (3, 5), (2, 2), (0, 1)]
        for a, b in pairs:
            expected = protocol.transition(
                interner.state_of(a), interner.state_of(b)
            )
            q0, q1 = cache.apply(a, b)
            assert (
                interner.state_of(q0),
                interner.state_of(q1),
            ) == expected
        assert not cache.dense_enabled
        assert cache.stats.hits >= 1  # the repeated pair hit the memo

    def test_stats_and_len_accounting(self):
        protocol = AngluinProtocol()
        interner = StateInterner()
        cache = KernelTransitionCache(protocol, interner)
        leader = interner.intern(True)
        cache.apply(leader, leader)
        assert cache.stats.misses == 1
        cache.apply(leader, leader)
        assert cache.stats.hits == 1
        assert cache.stats.dense_hits == 1
        assert len(cache) == 1

    def test_shared_kernel_reuses_compiled_tables(self):
        first = compiled_kernel_for(PLLProtocol.for_population(256))
        second = compiled_kernel_for(PLLProtocol.for_population(256))
        assert first is second
        different = compiled_kernel_for(PLLProtocol.for_population(1 << 12))
        assert different is not first

    def test_private_kernels_stay_private(self):
        protocol = PLLProtocol.for_population(256)
        private = CompiledKernel(protocol, protocol.compile_kernel())
        assert private is not compiled_kernel_for(protocol)


class TestKernelKillSwitch:
    def test_env_disables_kernel_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "0")
        cache = make_transition_cache(AngluinProtocol(), StateInterner())
        assert not isinstance(cache, KernelTransitionCache)

    def test_forced_kernel_for_uncompiled_protocol_raises(self):
        protocol = build_protocol("fast-nonce", 64)
        with pytest.raises(ValueError):
            make_transition_cache(
                protocol, StateInterner(), use_kernel=True
            )
