"""Tests for repro.engine.batch (sampling helpers and BatchSimulator)."""

import numpy as np
import pytest

from repro.core.pll import PLLProtocol
from repro.engine.batch import BatchSimulator
from repro.engine.batch.sampling import (
    draw_interaction_pairs,
    first_collision,
    sample_block_states,
)
from repro.engine.convergence import SilenceDetector
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.errors import ConvergenceError, SimulationError
from repro.protocols.angluin import AngluinProtocol
from repro.protocols.majority import ApproximateMajority


class TestSampling:
    def test_pairs_are_distinct_and_in_range(self):
        rng = np.random.default_rng(0)
        initiators, responders = draw_interaction_pairs(rng, 10, 5000)
        assert initiators.min() >= 0 and initiators.max() < 10
        assert responders.min() >= 0 and responders.max() < 10
        assert not (initiators == responders).any()

    def test_responder_covers_all_other_agents(self):
        """The shift trick must reach indices both below and above."""
        rng = np.random.default_rng(1)
        initiators, responders = draw_interaction_pairs(rng, 3, 3000)
        for agent in range(3):
            others = set(responders[initiators == agent].tolist())
            assert others == {0, 1, 2} - {agent}

    def test_first_collision_none(self):
        initiators = np.array([0, 2, 4])
        responders = np.array([1, 3, 5])
        assert first_collision(initiators, responders) == (3, -1)

    def test_first_collision_on_initiator(self):
        # picks: 0 1 | 1 3  -> flat index 2 repeats agent 1
        initiators = np.array([0, 1])
        responders = np.array([1, 3])
        assert first_collision(initiators, responders) == (1, 2)

    def test_first_collision_on_responder(self):
        # picks: 0 1 | 2 0  -> flat index 3 repeats agent 0
        initiators = np.array([0, 2])
        responders = np.array([1, 0])
        assert first_collision(initiators, responders) == (1, 3)

    def test_first_collision_reports_earliest(self):
        # two collisions; the one at flat index 2 (agent 1) wins
        initiators = np.array([0, 1, 0])
        responders = np.array([1, 2, 3])
        assert first_collision(initiators, responders) == (1, 2)

    def test_block_states_match_requested_slots_and_counts(self):
        rng = np.random.default_rng(2)
        counts = np.array([5, 0, 3, 2], dtype=np.int64)
        states = sample_block_states(rng, counts, 6)
        assert states.shape == (6,)
        drawn = np.bincount(states, minlength=4)
        assert (drawn <= counts).all()
        assert drawn.sum() == 6

    def test_block_states_exhaustive_draw_is_the_population(self):
        rng = np.random.default_rng(3)
        counts = np.array([4, 6], dtype=np.int64)
        states = sample_block_states(rng, counts, 10)
        assert np.bincount(states, minlength=2).tolist() == [4, 6]


class TestBatchSimulatorBasics:
    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            BatchSimulator(AngluinProtocol(), 1)

    def test_initial_configuration(self):
        sim = BatchSimulator(AngluinProtocol(), 16, seed=0)
        assert sim.steps == 0
        assert sim.leader_count == 16  # Angluin starts everyone as leader
        assert sim.count_of(True) == 16
        assert sim.count_of("never-seen") == 0

    def test_run_executes_exactly_max_steps(self):
        sim = BatchSimulator(AngluinProtocol(), 64, seed=1)
        assert sim.run(777) == 777
        assert sim.steps == 777

    def test_population_is_conserved(self):
        sim = BatchSimulator(PLLProtocol.for_population(128), 128, seed=2)
        sim.run(5000)
        assert sum(sim.state_counts().values()) == 128
        assert sum(sim.output_counts.values()) == 128
        assert all(count > 0 for count in sim.state_id_counts().values())

    def test_same_seed_same_trajectory(self):
        def outcome(seed):
            sim = BatchSimulator(PLLProtocol.for_population(64), 64, seed=seed)
            steps = sim.run_until_stabilized()
            return steps, dict(sim.output_counts)

        assert outcome(7) == outcome(7)

    def test_n2_population_runs(self):
        sim = BatchSimulator(AngluinProtocol(), 2, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_describe_mentions_protocol_and_n(self):
        sim = BatchSimulator(AngluinProtocol(), 8, seed=0)
        text = sim.describe()
        assert "n=8" in text and sim.protocol.name in text


class TestBatchLoadCounts:
    def test_load_counts_replaces_configuration(self):
        sim = BatchSimulator(MaxPropagationProtocol(), 32, seed=0)
        sim.load_counts({0: 31, 1: 1})
        assert sim.count_of(1) == 1
        assert sim.output_counts["1"] == 1

    def test_load_counts_validates_total(self):
        sim = BatchSimulator(MaxPropagationProtocol(), 32, seed=0)
        with pytest.raises(SimulationError):
            sim.load_counts({0: 3})

    def test_load_counts_rejects_negative(self):
        sim = BatchSimulator(MaxPropagationProtocol(), 32, seed=0)
        with pytest.raises(SimulationError):
            sim.load_counts({0: 33, 1: -1})


class TestBatchStabilization:
    def test_angluin_stabilizes_to_one_leader(self):
        for seed in range(4):
            sim = BatchSimulator(AngluinProtocol(), 48, seed=seed)
            steps = sim.run_until_stabilized()
            assert sim.leader_count == 1
            assert steps == sim.steps > 0

    def test_pll_stabilizes_to_one_leader(self):
        sim = BatchSimulator(PLLProtocol.for_population(128), 128, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_stabilized_before_start_returns_current_steps(self):
        sim = BatchSimulator(AngluinProtocol(), 24, seed=0)
        first = sim.run_until_stabilized()
        assert sim.run_until_stabilized() == first  # already stable: no-op

    def test_budget_overrun_raises_convergence_error(self):
        sim = BatchSimulator(AngluinProtocol(), 64, seed=0)
        with pytest.raises(ConvergenceError):
            sim.run_until_stabilized(max_steps=5)
        assert sim.steps == 5  # budget respected exactly

    def test_until_predicate_stops_run(self):
        sim = BatchSimulator(AngluinProtocol(), 64, seed=3)
        executed = sim.run(
            10_000_000, until=lambda s: s.leader_count <= 32
        )
        assert sim.leader_count <= 32
        assert executed < 10_000_000

    def test_silence_detector_on_epidemic(self):
        """Full infection is silent; the generic detector path finds it."""
        sim = BatchSimulator(MaxPropagationProtocol(), 64, seed=1)
        sim.load_counts({0: 63, 1: 1})
        sim.run_until_stabilized(detector=SilenceDetector())
        assert sim.count_of(1) == 64


class TestBatchNullFastPath:
    def test_consensus_tail_is_skipped_geometrically(self):
        sim = BatchSimulator(ApproximateMajority(), 500, seed=3)
        sim.load_counts({"x": 350, "y": 150})
        assert sim.run(2_000_000) == 2_000_000
        assert sim.output_counts.get("x", 0) == 500  # consensus reached
        # The overwhelming majority of post-consensus steps must come from
        # the geometric skip, not from sampled blocks.
        assert sim.stats.null_skipped_steps > 1_500_000

    def test_skip_respects_step_budget_exactly(self):
        sim = BatchSimulator(ApproximateMajority(), 100, seed=0)
        sim.load_counts({"x": 100})  # silent from the start
        sim.run(12345)  # warms up, then skips the silent remainder
        assert sim.steps == 12345

    def test_counts_untouched_by_silent_skip(self):
        sim = BatchSimulator(ApproximateMajority(), 100, seed=0)
        sim.load_counts({"x": 60, "b": 40})
        sim.run(3_000_000)
        assert sum(sim.output_counts.values()) == 100
        assert sim.output_counts.get("x", 0) == 100


class TestBatchStats:
    def test_stats_account_for_every_step(self):
        sim = BatchSimulator(PLLProtocol.for_population(256), 256, seed=5)
        sim.run(20000)
        assert sim.stats.total_steps == sim.steps == 20000
        assert sim.stats.blocks > 0
        assert sim.stats.mean_block > 1
