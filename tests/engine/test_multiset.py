"""Tests for repro.engine.multiset."""

import pytest

from repro.engine.convergence import SilenceDetector
from repro.engine.multiset import MultisetSimulator
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.errors import ConvergenceError, SimulationError
from repro.protocols.angluin import AngluinProtocol


class TestConstruction:
    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            MultisetSimulator(AngluinProtocol(), 1)

    def test_initial_counts(self):
        sim = MultisetSimulator(AngluinProtocol(), 10, seed=0)
        assert sim.state_counts() == {True: 10}
        assert sim.leader_count == 10


class TestStepSemantics:
    def test_population_size_is_conserved(self):
        sim = MultisetSimulator(AngluinProtocol(), 9, seed=0)
        for _ in range(500):
            sim.step()
            assert sum(sim.state_id_counts().values()) == 9

    def test_output_counts_match_state_counts(self):
        sim = MultisetSimulator(AngluinProtocol(), 12, seed=1)
        sim.run(300)
        counts = sim.state_counts()
        assert sim.output_counts["L"] == counts.get(True, 0)
        assert sim.output_counts["F"] == counts.get(False, 0)

    def test_step_returns_pre_and_post_ids(self):
        sim = MultisetSimulator(AngluinProtocol(), 4, seed=0)
        pre0, pre1, post0, post1 = sim.step()
        # From the all-leader configuration the only transition is L,L->L,F.
        assert sim.interner.state_of(pre0) is True
        assert sim.interner.state_of(pre1) is True
        assert sim.interner.state_of(post0) is True
        assert sim.interner.state_of(post1) is False

    def test_leader_count_monotone(self):
        sim = MultisetSimulator(AngluinProtocol(), 20, seed=2)
        previous = sim.leader_count
        for _ in range(2000):
            sim.step()
            assert sim.leader_count <= previous
            previous = sim.leader_count

    def test_count_of_unseen_state_is_zero(self):
        sim = MultisetSimulator(MaxPropagationProtocol(), 5, seed=0)
        assert sim.count_of(1) == 0

    def test_parallel_time(self):
        sim = MultisetSimulator(AngluinProtocol(), 10, seed=0)
        sim.run(25)
        assert sim.parallel_time == pytest.approx(2.5)


class TestStabilization:
    def test_stabilizes_to_single_leader(self):
        sim = MultisetSimulator(AngluinProtocol(), 25, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_seeded_reproducibility(self):
        a = MultisetSimulator(AngluinProtocol(), 16, seed=5)
        b = MultisetSimulator(AngluinProtocol(), 16, seed=5)
        assert a.run_until_stabilized() == b.run_until_stabilized()

    def test_budget_exhaustion_raises(self):
        sim = MultisetSimulator(AngluinProtocol(), 64, seed=0)
        with pytest.raises(ConvergenceError):
            sim.run_until_stabilized(max_steps=2)

    def test_silence_detector_path(self):
        sim = MultisetSimulator(AngluinProtocol(), 8, seed=3)
        sim.run_until_stabilized(SilenceDetector(), check_every=25)
        assert sim.leader_count == 1


class TestLoadCounts:
    def test_load_counts_replaces_configuration(self):
        sim = MultisetSimulator(AngluinProtocol(), 6, seed=0)
        sim.load_counts({True: 2, False: 4})
        assert sim.leader_count == 2
        assert sim.state_counts() == {True: 2, False: 4}

    def test_load_counts_must_sum_to_n(self):
        sim = MultisetSimulator(AngluinProtocol(), 6, seed=0)
        with pytest.raises(SimulationError):
            sim.load_counts({True: 1})

    def test_load_counts_rejects_negative(self):
        sim = MultisetSimulator(AngluinProtocol(), 6, seed=0)
        with pytest.raises(SimulationError):
            sim.load_counts({True: 7, False: -1})

    def test_load_counts_drops_zero_entries(self):
        sim = MultisetSimulator(AngluinProtocol(), 6, seed=0)
        sim.load_counts({True: 6, False: 0})
        assert sim.state_id_counts() == {sim.interner.id_of(True): 6}

    def test_run_after_load(self):
        sim = MultisetSimulator(AngluinProtocol(), 6, seed=0)
        sim.load_counts({True: 3, False: 3})
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_describe(self):
        sim = MultisetSimulator(AngluinProtocol(), 6, seed=0)
        assert "n=6" in sim.describe()

    def test_epidemic_protocol_completes(self):
        sim = MultisetSimulator(MaxPropagationProtocol(), 30, seed=1)
        sim.load_counts({0: 29, 1: 1})
        sim.run(100000, until=lambda s: s.count_of(0) == 0, check_every=10)
        assert sim.count_of(1) == 30
