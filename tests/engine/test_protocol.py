"""Tests for repro.engine.protocol."""

import pytest

from repro.engine.protocol import (
    FOLLOWER,
    LEADER,
    LeaderElectionProtocol,
    check_symmetry,
)
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.errors import ProtocolError
from repro.protocols.angluin import AngluinProtocol


class TestOutputSymbols:
    def test_symbols_differ(self):
        assert LEADER != FOLLOWER

    def test_leader_symbol_is_paper_notation(self):
        assert LEADER == "L"
        assert FOLLOWER == "F"


class TestLeaderElectionProtocol:
    def test_is_leader_state(self):
        protocol = AngluinProtocol()
        assert protocol.is_leader_state(True)
        assert not protocol.is_leader_state(False)

    def test_monotone_flag_defaults_true(self):
        assert AngluinProtocol().monotone_leader

    def test_repr_mentions_name(self):
        assert "angluin2006" in repr(AngluinProtocol())

    def test_state_bound_default_is_none(self):
        class Minimal(LeaderElectionProtocol):
            name = "minimal"

            def initial_state(self):
                return 0

            def transition(self, initiator, responder):
                return initiator, responder

            def output(self, state):
                return LEADER

        assert Minimal().state_bound() is None
        assert not Minimal().is_symmetric()


class TestCheckSymmetry:
    def test_symmetric_protocol_passes(self):
        check_symmetry(MaxPropagationProtocol(), [0, 1])

    def test_asymmetric_protocol_fails(self):
        # Angluin's (L, L) -> (L, F) breaks p = q => p' = q'.
        with pytest.raises(ProtocolError) as excinfo:
            check_symmetry(AngluinProtocol(), [True])
        assert "not symmetric" in str(excinfo.value)

    def test_asymmetric_protocol_passes_on_safe_states(self):
        # Symmetry violation only shows on the leader pair.
        check_symmetry(AngluinProtocol(), [False])
