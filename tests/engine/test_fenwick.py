"""Tests for repro.engine.fenwick."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.fenwick import FenwickTree


class TestFenwickBasics:
    def test_starts_empty(self):
        tree = FenwickTree(8)
        assert tree.total == 0
        assert tree.weights() == [0] * 8

    def test_add_and_get(self):
        tree = FenwickTree(8)
        tree.add(3, 5)
        assert tree.get(3) == 5
        assert tree.get(2) == 0

    def test_total_tracks_sum(self):
        tree = FenwickTree(8)
        tree.add(0, 2)
        tree.add(7, 3)
        tree.add(0, -1)
        assert tree.total == 4

    def test_prefix_sum(self):
        tree = FenwickTree(8)
        for i in range(8):
            tree.add(i, i + 1)
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(3) == 1 + 2 + 3 + 4
        assert tree.prefix_sum(7) == 36

    def test_prefix_sum_past_end_is_total(self):
        tree = FenwickTree(4)
        tree.add(2, 9)
        assert tree.prefix_sum(100) == 9

    def test_negative_index_raises(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(-1, 1)

    def test_grows_automatically(self):
        tree = FenwickTree(2)
        tree.add(10, 7)
        assert tree.get(10) == 7
        assert tree.total == 7

    def test_growth_preserves_existing_weights(self):
        tree = FenwickTree(2)
        tree.add(0, 3)
        tree.add(1, 4)
        tree.add(63, 1)
        assert tree.get(0) == 3
        assert tree.get(1) == 4
        assert tree.total == 8


class TestFenwickFind:
    def test_find_single_weight(self):
        tree = FenwickTree(8)
        tree.add(5, 10)
        for cumulative in range(10):
            assert tree.find(cumulative) == 5

    def test_find_respects_boundaries(self):
        tree = FenwickTree(8)
        tree.add(1, 2)
        tree.add(4, 3)
        assert tree.find(0) == 1
        assert tree.find(1) == 1
        assert tree.find(2) == 4
        assert tree.find(4) == 4

    def test_find_out_of_range_raises(self):
        tree = FenwickTree(4)
        tree.add(0, 2)
        with pytest.raises(ValueError):
            tree.find(2)
        with pytest.raises(ValueError):
            tree.find(-1)

    def test_sampling_matches_weights(self):
        """Inverse-CDF sampling hits each index proportionally."""
        weights = [1, 0, 3, 6]
        tree = FenwickTree(4)
        for i, w in enumerate(weights):
            tree.add(i, w)
        rng = np.random.default_rng(0)
        draws = 20000
        counts = [0] * 4
        for _ in range(draws):
            counts[tree.find(int(rng.integers(0, tree.total)))] += 1
        assert counts[1] == 0
        for i, w in enumerate(weights):
            assert abs(counts[i] / draws - w / 10) < 0.02


class TestFenwickEdgeCases:
    def test_find_on_empty_tree_raises(self):
        tree = FenwickTree(8)
        with pytest.raises(ValueError):
            tree.find(0)

    def test_find_after_draining_to_zero_raises(self):
        tree = FenwickTree(4)
        tree.add(2, 5)
        tree.add(2, -5)
        assert tree.total == 0
        with pytest.raises(ValueError):
            tree.find(0)

    def test_zero_delta_is_a_no_op(self):
        tree = FenwickTree(4)
        tree.add(1, 3)
        tree.add(1, 0)
        tree.add(3, 0)
        assert tree.total == 3
        assert tree.weights() == [0, 3, 0, 0]

    def test_zero_delta_past_capacity_still_grows(self):
        tree = FenwickTree(2)
        tree.add(9, 0)
        assert len(tree) >= 10
        assert tree.total == 0

    def test_negative_delta_decrements_weight(self):
        tree = FenwickTree(4)
        tree.add(0, 5)
        tree.add(0, -3)
        assert tree.get(0) == 2
        assert tree.total == 2
        assert tree.find(1) == 0

    def test_negative_delta_shifts_sampling_mass(self):
        tree = FenwickTree(4)
        tree.add(0, 2)
        tree.add(2, 1)
        tree.add(0, -2)  # all mass now at index 2
        assert tree.find(0) == 2

    def test_growth_past_initial_capacity_keeps_find_consistent(self):
        tree = FenwickTree(2)
        tree.add(0, 1)
        tree.add(1, 1)
        tree.add(40, 3)  # multiple doublings: 2 -> 64
        assert len(tree) == 64
        assert tree.find(0) == 0
        assert tree.find(1) == 1
        for cumulative in (2, 3, 4):
            assert tree.find(cumulative) == 40
        assert tree.prefix_sum(63) == tree.total == 5

    def test_growth_with_unit_initial_size(self):
        tree = FenwickTree(1)
        tree.add(0, 2)
        tree.add(5, 7)
        assert tree.get(0) == 2
        assert tree.get(5) == 7
        assert tree.total == 9


class TestFenwickProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 10)),
            max_size=60,
        )
    )
    def test_matches_naive_model(self, operations):
        """A Fenwick tree agrees with a plain list under adds/queries."""
        tree = FenwickTree(4)
        model = [0] * 64
        for index, delta in operations:
            tree.add(index, delta)
            model[index] += delta
        for index in range(41):
            assert tree.get(index) == model[index]
            assert tree.prefix_sum(index) == sum(model[: index + 1])
        assert tree.total == sum(model)

    @given(st.lists(st.integers(1, 9), min_size=1, max_size=20))
    def test_find_is_inverse_of_prefix_sum(self, weights):
        tree = FenwickTree(4)
        for i, w in enumerate(weights):
            tree.add(i, w)
        for cumulative in range(tree.total):
            index = tree.find(cumulative)
            below = tree.prefix_sum(index - 1) if index else 0
            assert below <= cumulative < tree.prefix_sum(index)
