"""Tests for repro.engine.scheduler."""

from collections import Counter

import numpy as np
import pytest

from repro.engine.scheduler import DeterministicSchedule, RandomScheduler
from repro.errors import ScheduleError


class TestRandomScheduler:
    def test_rejects_tiny_population(self):
        with pytest.raises(ScheduleError):
            RandomScheduler(1)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ScheduleError):
            RandomScheduler(4, batch_size=0)

    def test_pairs_are_distinct_agents(self):
        scheduler = RandomScheduler(5, seed=0)
        for u, v in scheduler.pairs(2000):
            assert u != v

    def test_pairs_are_in_range(self):
        scheduler = RandomScheduler(7, seed=1)
        for u, v in scheduler.pairs(2000):
            assert 0 <= u < 7
            assert 0 <= v < 7

    def test_seeded_runs_are_reproducible(self):
        a = list(RandomScheduler(6, seed=42).pairs(500))
        b = list(RandomScheduler(6, seed=42).pairs(500))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(RandomScheduler(6, seed=1).pairs(100))
        b = list(RandomScheduler(6, seed=2).pairs(100))
        assert a != b

    def test_batches_refill_transparently(self):
        scheduler = RandomScheduler(4, seed=0, batch_size=8)
        pairs = list(scheduler.pairs(50))  # crosses several batch boundaries
        assert len(pairs) == 50

    def test_accepts_external_generator(self):
        rng = np.random.default_rng(3)
        scheduler = RandomScheduler(4, seed=rng)
        assert scheduler.rng is rng

    def test_uniformity_over_ordered_pairs(self):
        """Chi-square check: all n(n-1) ordered pairs equally likely."""
        n = 4
        draws = 60000
        scheduler = RandomScheduler(n, seed=7)
        counts = Counter(scheduler.pairs(draws))
        assert len(counts) == n * (n - 1)
        expected = draws / (n * (n - 1))
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        # 11 degrees of freedom; mean 11, std ~4.7 — 40 is > 6 sigma.
        assert chi2 < 40

    def test_initiator_role_is_uniform(self):
        """Each agent is the initiator in ~1/n of steps (coin fairness)."""
        n = 8
        draws = 40000
        scheduler = RandomScheduler(n, seed=11)
        initiators = Counter(u for u, _ in scheduler.pairs(draws))
        for agent in range(n):
            frequency = initiators[agent] / draws
            assert abs(frequency - 1 / n) < 0.01


class TestDeterministicSchedule:
    def test_replays_in_order(self):
        schedule = DeterministicSchedule([(0, 1), (2, 3), (1, 0)])
        assert schedule.next_pair() == (0, 1)
        assert schedule.next_pair() == (2, 3)
        assert schedule.next_pair() == (1, 0)

    def test_exhaustion_raises(self):
        schedule = DeterministicSchedule([(0, 1)])
        schedule.next_pair()
        with pytest.raises(ScheduleError):
            schedule.next_pair()

    def test_reset_rewinds(self):
        schedule = DeterministicSchedule([(0, 1), (1, 2)])
        schedule.next_pair()
        schedule.reset()
        assert schedule.next_pair() == (0, 1)

    def test_remaining(self):
        schedule = DeterministicSchedule([(0, 1), (1, 2)])
        assert schedule.remaining == 2
        schedule.next_pair()
        assert schedule.remaining == 1

    def test_validated_rejects_self_pair(self):
        with pytest.raises(ScheduleError):
            DeterministicSchedule.validated([(1, 1)], n=4)

    def test_validated_rejects_out_of_range(self):
        with pytest.raises(ScheduleError):
            DeterministicSchedule.validated([(0, 4)], n=4)

    def test_validated_accepts_good_schedule(self):
        schedule = DeterministicSchedule.validated([(0, 1), (3, 2)], n=4)
        assert len(schedule) == 2
