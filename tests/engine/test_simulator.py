"""Tests for repro.engine.simulator."""

import pytest

from repro.engine.convergence import MonotoneLeaderStabilization, SilenceDetector
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.errors import ConvergenceError, SimulationError
from repro.protocols.angluin import AngluinProtocol


def deterministic_sim(pairs, n=4, protocol=None):
    return AgentSimulator(
        protocol or AngluinProtocol(),
        n,
        scheduler=DeterministicSchedule.validated(pairs, n),
    )


class TestConstruction:
    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            AgentSimulator(AngluinProtocol(), 1)

    def test_everyone_starts_in_initial_state(self):
        sim = AgentSimulator(AngluinProtocol(), 5, seed=0)
        assert sim.configuration() == [True] * 5

    def test_initial_output_counts(self):
        sim = AgentSimulator(AngluinProtocol(), 5, seed=0)
        assert sim.output_counts == {"L": 5}
        assert sim.leader_count == 5


class TestStepSemantics:
    def test_step_applies_ordered_transition(self):
        sim = deterministic_sim([(2, 3)])
        sim.step()
        # Initiator 2 stays leader, responder 3 demoted.
        assert sim.output_of(2) == "L"
        assert sim.output_of(3) == "F"

    def test_step_returns_the_pair(self):
        sim = deterministic_sim([(1, 0)])
        assert sim.step() == (1, 0)

    def test_steps_counter(self):
        sim = deterministic_sim([(0, 1), (2, 3)])
        sim.step()
        sim.step()
        assert sim.steps == 2

    def test_parallel_time(self):
        sim = deterministic_sim([(0, 1), (2, 3)])
        sim.step()
        sim.step()
        assert sim.parallel_time == pytest.approx(0.5)

    def test_output_counts_updated_incrementally(self):
        sim = deterministic_sim([(0, 1), (0, 2)])
        sim.step()
        assert sim.output_counts == {"L": 3, "F": 1}
        sim.step()
        assert sim.output_counts == {"L": 2, "F": 2}

    def test_null_transitions_leave_counts_alone(self):
        sim = deterministic_sim([(0, 1), (0, 1)])
        sim.step()
        before = dict(sim.output_counts)
        sim.step()  # leader-follower: no change in Angluin
        assert dict(sim.output_counts) == before


class TestRun:
    def test_run_executes_exactly_max_steps(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        executed = sim.run(17)
        assert executed == 17
        assert sim.steps == 17

    def test_run_until_predicate_stops_early(self):
        sim = AgentSimulator(AngluinProtocol(), 8, seed=1)
        sim.run(100000, until=lambda s: s.leader_count <= 4)
        assert sim.leader_count == 4

    def test_run_until_checks_before_first_step(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        executed = sim.run(100, until=lambda s: True)
        assert executed == 0

    def test_run_check_every_skips_polls(self):
        sim = AgentSimulator(AngluinProtocol(), 8, seed=1)
        polls = []
        sim.run(10, until=lambda s: polls.append(s.steps) or False, check_every=5)
        # One pre-check at step 0, then every 5 steps.
        assert polls == [0, 5, 10]


class TestStabilization:
    def test_stabilizes_to_single_leader(self):
        sim = AgentSimulator(AngluinProtocol(), 16, seed=0)
        sim.run_until_stabilized()
        assert sim.leader_count == 1

    def test_returns_total_steps(self):
        sim = AgentSimulator(AngluinProtocol(), 8, seed=0)
        steps = sim.run_until_stabilized()
        assert steps == sim.steps

    def test_raises_on_budget_exhaustion(self):
        sim = AgentSimulator(AngluinProtocol(), 64, seed=0)
        with pytest.raises(ConvergenceError):
            sim.run_until_stabilized(max_steps=3)

    def test_already_stable_returns_immediately(self):
        sim = AgentSimulator(AngluinProtocol(), 8, seed=0)
        sim.run_until_stabilized()
        steps = sim.steps
        assert sim.run_until_stabilized() == steps

    def test_custom_detector_target(self):
        sim = AgentSimulator(AngluinProtocol(), 16, seed=2)
        sim.run_until_stabilized(MonotoneLeaderStabilization(target=4))
        assert sim.leader_count == 4

    def test_silence_detector_path(self):
        sim = AgentSimulator(AngluinProtocol(), 8, seed=3)
        sim.run_until_stabilized(SilenceDetector(), check_every=50)
        assert sim.leader_count == 1


class TestHooks:
    def test_hook_sees_pre_and_post_ids(self):
        observed = []

        def hook(sim, u, v, pre0, pre1, post0, post1):
            observed.append((u, v, pre0, pre1, post0, post1))

        sim = deterministic_sim([(0, 1)])
        sim.add_hook(hook)
        sim.step()
        (u, v, pre0, pre1, post0, post1) = observed[0]
        assert (u, v) == (0, 1)
        assert sim.interner.state_of(pre0) is True
        assert sim.interner.state_of(post1) is False

    def test_remove_hook(self):
        calls = []
        hook = lambda *args: calls.append(1)  # noqa: E731
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.add_hook(hook)
        sim.step()
        sim.remove_hook(hook)
        sim.step()
        assert len(calls) == 1


class TestConfigurationManagement:
    def test_load_configuration(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([False, False, True, False])
        assert sim.leader_count == 1
        assert sim.output_counts == {"L": 1, "F": 3}

    def test_load_rejects_wrong_length(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        with pytest.raises(SimulationError):
            sim.load_configuration([True, False])

    def test_state_counts(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, False, False, False])
        assert sim.state_counts() == {True: 1, False: 3}

    def test_agents_with_output(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([False, True, False, True])
        assert sim.agents_with_output("L") == [1, 3]

    def test_describe_mentions_protocol_and_outputs(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        text = sim.describe()
        assert "angluin2006" in text
        assert "n=4" in text

    def test_distinct_states_seen(self):
        sim = AgentSimulator(MaxPropagationProtocol(), 4, seed=0)
        assert sim.distinct_states_seen() == 1  # only the all-zero state
        sim.load_configuration([0, 0, 0, 1])
        sim.run(50)
        assert sim.distinct_states_seen() == 2
