"""Tests for repro.engine.population."""

from repro.engine.population import Configuration
from repro.protocols.angluin import AngluinProtocol


class TestConfiguration:
    def test_uniform_builds_c_init(self):
        config = Configuration.uniform(True, 5)
        assert config.n == 5
        assert all(state is True for state in config.states)

    def test_of_copies_iterable(self):
        config = Configuration.of(iter([True, False, True]))
        assert config.states == (True, False, True)

    def test_counts(self):
        config = Configuration.of([True, False, True])
        assert config.counts() == {True: 2, False: 1}

    def test_outputs(self):
        config = Configuration.of([True, False, False])
        assert config.outputs(AngluinProtocol()) == {"L": 1, "F": 2}

    def test_leaders_indices(self):
        config = Configuration.of([False, True, False, True])
        assert config.leaders(AngluinProtocol()) == [1, 3]

    def test_replace_returns_new_configuration(self):
        config = Configuration.of([True, True])
        updated = config.replace({0: False})
        assert updated.states == (False, True)
        assert config.states == (True, True)

    def test_apply_runs_deterministic_schedule(self):
        config = Configuration.uniform(True, 3)
        protocol = AngluinProtocol()
        # (0,1): 0 stays leader, 1 demoted; (0,2): 2 demoted.
        final = config.apply(protocol, [(0, 1), (0, 2)])
        assert final.leaders(protocol) == [0]

    def test_apply_on_empty_schedule_is_identity(self):
        config = Configuration.uniform(True, 3)
        assert config.apply(AngluinProtocol(), []).states == config.states

    def test_apply_respects_roles(self):
        config = Configuration.uniform(True, 2)
        protocol = AngluinProtocol()
        # The responder is demoted, so order matters.
        assert config.apply(protocol, [(1, 0)]).leaders(protocol) == [1]

    def test_frozen(self):
        config = Configuration.uniform(True, 2)
        try:
            config.states = ()  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised
