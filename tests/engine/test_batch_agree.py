"""Statistical agreement of the batch engine with the other two.

All three engines realize the same Markov chain on configurations, so
their stabilization-time distributions must be indistinguishable.  The
batch engine's block sampling (hypergeometric state assignment, birthday
collision correction, geometric null skipping) is where a subtle bias
would hide, so unlike the mean-comparison tripwires in
``test_engines_agree`` these tests compare whole *distributions* with a
two-sample Kolmogorov–Smirnov test at fixed seeds per trial.

The KS level is strict (alpha = 0.001) and the seeds are fixed, so the
tests are deterministic: they fail only if a code change actually shifts
a distribution, not by draw-to-draw luck.
"""

import numpy as np
import pytest

from repro.analysis.stats import ks_critical_value, ks_statistic
from repro.core.pll import PLLProtocol
from repro.engine import AgentSimulator, BatchSimulator, MultisetSimulator
from repro.protocols.angluin import AngluinProtocol


def stabilization_times(engine_cls, protocol_factory, n, trials, seed0):
    times = []
    for trial in range(trials):
        sim = engine_cls(protocol_factory(), n, seed=seed0 + trial)
        sim.run_until_stabilized()
        times.append(sim.parallel_time)
    return np.asarray(times)


def assert_same_distribution(first, second, label):
    statistic = ks_statistic(first, second)
    threshold = ks_critical_value(len(first), len(second), alpha=0.001)
    assert statistic < threshold, (
        f"{label}: KS statistic {statistic:.3f} exceeds {threshold:.3f} "
        f"(medians {np.median(first):.2f} vs {np.median(second):.2f})"
    )


class TestBatchAgreesOnAngluin:
    N = 24
    TRIALS = 48

    @pytest.fixture(scope="class")
    def samples(self):
        return {
            "agent": stabilization_times(
                AgentSimulator, AngluinProtocol, self.N, self.TRIALS, 0
            ),
            "multiset": stabilization_times(
                MultisetSimulator, AngluinProtocol, self.N, self.TRIALS, 1000
            ),
            "batch": stabilization_times(
                BatchSimulator, AngluinProtocol, self.N, self.TRIALS, 2000
            ),
        }

    def test_batch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["batch"], samples["multiset"], "angluin batch/multiset"
        )

    def test_batch_vs_agent(self, samples):
        assert_same_distribution(
            samples["batch"], samples["agent"], "angluin batch/agent"
        )


class TestBatchAgreesOnPLL:
    N = 32
    TRIALS = 40

    @pytest.fixture(scope="class")
    def samples(self):
        factory = lambda: PLLProtocol.for_population(self.N)  # noqa: E731
        return {
            "agent": stabilization_times(
                AgentSimulator, factory, self.N, self.TRIALS, 0
            ),
            "multiset": stabilization_times(
                MultisetSimulator, factory, self.N, self.TRIALS, 1000
            ),
            "batch": stabilization_times(
                BatchSimulator, factory, self.N, self.TRIALS, 2000
            ),
        }

    def test_batch_vs_multiset(self, samples):
        assert_same_distribution(
            samples["batch"], samples["multiset"], "pll batch/multiset"
        )

    def test_batch_vs_agent(self, samples):
        assert_same_distribution(
            samples["batch"], samples["agent"], "pll batch/agent"
        )

    def test_every_trial_elects_one_leader(self, samples):
        # The KS comparison is meaningless if any engine "stabilized"
        # into a different predicate; spot-check the batch engine.
        sim = BatchSimulator(PLLProtocol.for_population(self.N), self.N, seed=2000)
        sim.run_until_stabilized()
        assert sim.leader_count == 1
