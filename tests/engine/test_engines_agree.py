"""Statistical agreement between the agent-based and multiset engines.

Both engines realize the same Markov chain on configurations; their
stabilization-time distributions must agree.  These tests compare means
over modest trial counts with generous tolerances — they are regression
tripwires for sampling bugs (e.g. a biased second draw), not precise
distributional tests.
"""

import numpy as np

from repro.core.pll import PLLProtocol
from repro.engine.multiset import MultisetSimulator
from repro.engine.simulator import AgentSimulator
from repro.protocols.angluin import AngluinProtocol


def mean_stabilization(engine_cls, protocol_factory, n, trials, seed0):
    times = []
    for trial in range(trials):
        sim = engine_cls(protocol_factory(), n, seed=seed0 + trial)
        sim.run_until_stabilized()
        times.append(sim.parallel_time)
    return float(np.mean(times))


class TestEnginesAgree:
    def test_angluin_means_agree(self):
        n, trials = 24, 40
        agent = mean_stabilization(AgentSimulator, AngluinProtocol, n, trials, 0)
        multiset = mean_stabilization(MultisetSimulator, AngluinProtocol, n, trials, 1000)
        # Expected time ~ n; allow 35% relative gap at these trial counts.
        assert abs(agent - multiset) / max(agent, multiset) < 0.35

    def test_pll_means_agree(self):
        n, trials = 32, 25
        factory = lambda: PLLProtocol.for_population(32)  # noqa: E731
        agent = mean_stabilization(AgentSimulator, factory, n, trials, 0)
        multiset = mean_stabilization(MultisetSimulator, factory, n, trials, 1000)
        # PLL times are bimodal; compare on a log scale with slack.
        assert 0.25 < agent / multiset < 4.0

    def test_epidemic_spread_rate_agrees(self):
        """Half-infection time of the epidemic protocol matches across engines."""
        from repro.epidemic.epidemic import MaxPropagationProtocol

        n, trials = 64, 30

        def half_time(engine_cls, seed0):
            times = []
            for trial in range(trials):
                sim = engine_cls(MaxPropagationProtocol(), n, seed=seed0 + trial)
                if isinstance(sim, MultisetSimulator):
                    sim.load_counts({0: n - 1, 1: 1})
                else:
                    sim.load_configuration([1] + [0] * (n - 1))
                sim.run(
                    10_000_000,
                    until=lambda s: s.output_counts.get("1", 0) >= n // 2,
                    check_every=4,
                )
                times.append(sim.parallel_time)
            return float(np.mean(times))

        agent = half_time(AgentSimulator, 0)
        multiset = half_time(MultisetSimulator, 500)
        assert abs(agent - multiset) / max(agent, multiset) < 0.2
