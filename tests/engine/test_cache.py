"""Tests for repro.engine.cache."""

import numpy as np
import pytest

from repro.engine.cache import DENSE_STATE_BOUND, TransitionCache
from repro.engine.interner import StateInterner
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.protocols.angluin import AngluinProtocol


def make_cache(max_entries: int = 1 << 20):
    protocol = AngluinProtocol()
    interner = StateInterner()
    leader = interner.intern(True)
    follower = interner.intern(False)
    return TransitionCache(protocol, interner, max_entries), leader, follower


class TestCacheCorrectness:
    def test_applies_protocol_transition(self):
        cache, leader, follower = make_cache()
        assert cache.apply(leader, leader) == (leader, follower)

    def test_null_transition_returns_same_ids(self):
        cache, leader, follower = make_cache()
        assert cache.apply(follower, follower) == (follower, follower)

    def test_order_matters(self):
        cache, leader, follower = make_cache()
        assert cache.apply(leader, follower) == (leader, follower)
        assert cache.apply(follower, leader) == (follower, leader)

    def test_result_matches_direct_computation_for_new_states(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        zero = interner.intern(0)
        one = interner.intern(1)
        assert cache.apply(zero, one) == (one, one)

    def test_new_post_states_are_interned(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        zero = interner.intern(0)
        # 1 has never been interned; the transition creates it... but
        # (0, 0) -> (0, 0), so nothing new:
        cache.apply(zero, zero)
        assert len(interner) == 1


class TestCacheStatistics:
    def test_miss_then_hit(self):
        cache, leader, follower = make_cache()
        cache.apply(leader, leader)
        assert (cache.stats.misses, cache.stats.hits) == (1, 0)
        cache.apply(leader, leader)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)

    def test_len_tracks_stored_pairs(self):
        cache, leader, follower = make_cache()
        cache.apply(leader, leader)
        cache.apply(leader, follower)
        cache.apply(leader, leader)
        assert len(cache) == 2

    def test_hit_rate(self):
        cache, leader, follower = make_cache()
        assert cache.stats.hit_rate == 0.0
        cache.apply(leader, leader)
        cache.apply(leader, leader)
        cache.apply(leader, leader)
        assert cache.stats.hit_rate == 2 / 3

    def test_bounded_cache_bypasses_beyond_cap(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # stored
        cache.apply(leader, follower)  # bypassed
        assert len(cache) == 1
        assert cache.stats.bypasses == 1

    def test_bypassed_transitions_still_correct(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(follower, follower)
        assert cache.apply(leader, leader) == (leader, follower)
        assert cache.apply(leader, leader) == (leader, follower)

    def test_lookups_total(self):
        cache, leader, follower = make_cache()
        for _ in range(5):
            cache.apply(leader, follower)
        assert cache.stats.lookups == 5


class TestCacheTinyBound:
    """Behavior at a tiny ``cache_entries`` bound (the eviction policy is
    insert-until-full, then compute-without-storing)."""

    def test_zero_capacity_never_stores(self):
        cache, leader, follower = make_cache(max_entries=0)
        for _ in range(3):
            assert cache.apply(leader, leader) == (leader, follower)
        assert len(cache) == 0
        assert cache.stats.bypasses == 3
        assert cache.stats.hits == cache.stats.misses == 0

    def test_stored_pairs_keep_hitting_after_the_bound(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # occupies the single slot
        cache.apply(follower, leader)  # bypassed
        assert cache.apply(leader, leader) == (leader, follower)
        assert cache.stats.hits == 1

    def test_bypassed_pair_is_recomputed_every_time(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)
        for _ in range(4):
            cache.apply(follower, leader)
        assert cache.stats.bypasses == 4
        assert len(cache) == 1

    def test_full_cache_hit_rate_unaffected_by_bypasses(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # miss, stored
        cache.apply(leader, leader)  # hit
        cache.apply(follower, leader)  # bypass
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_max_entries_property_reflects_bound(self):
        cache, _, _ = make_cache(max_entries=7)
        assert cache.max_entries == 7


class TestDenseFastPath:
    """The (S, S) pair-indexed mirror for small interned state spaces."""

    def test_second_lookup_is_a_dense_hit(self):
        cache, leader, follower = make_cache()
        cache.apply(leader, leader)  # miss, stored in dict + dense
        assert cache.apply(leader, leader) == (leader, follower)
        assert cache.stats.dense_hits == 1
        assert cache.stats.hits == 1  # dense hits are hits

    def test_dense_disabled_beyond_the_state_bound(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        for value in range(DENSE_STATE_BOUND + 8):
            interner.intern(value)
        assert cache.dense_enabled  # not yet consulted past the bound
        zero, one = 0, 1
        cache.apply(zero, one)  # miss: _store_dense sees the wide space
        assert not cache.dense_enabled
        # Correctness is unaffected: the dict keeps answering.
        assert cache.apply(zero, one) == (one, one)
        assert cache.stats.hits >= 1
        assert cache.stats.dense_hits == 0

    def test_apply_block_matches_scalar_apply(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        for value in range(6):
            interner.intern(value)
        rng = np.random.default_rng(0)
        pre0 = rng.integers(0, 6, size=64)
        pre1 = rng.integers(0, 6, size=64)
        out0, out1 = cache.apply_block(pre0, pre1)
        reference = TransitionCache(protocol, interner)
        for i in range(64):
            want = reference.apply(int(pre0[i]), int(pre1[i]))
            assert (int(out0[i]), int(out1[i])) == want

    def test_apply_block_handles_empty_input(self):
        cache, _leader, _follower = make_cache()
        out0, out1 = cache.apply_block(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert out0.shape == (0,) and out1.shape == (0,)

    def test_apply_block_works_past_the_dense_bound(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        wide = DENSE_STATE_BOUND + 16
        for value in range(wide):
            interner.intern(value)
        pre0 = np.arange(wide - 8, wide, dtype=np.int64)
        pre1 = np.arange(wide - 8, wide, dtype=np.int64)[::-1].copy()
        out0, out1 = cache.apply_block(pre0, pre1)
        for i in range(8):
            want0, want1 = protocol.transition(
                interner.state_of(int(pre0[i])),
                interner.state_of(int(pre1[i])),
            )
            assert interner.state_of(int(out0[i])) == want0
            assert interner.state_of(int(out1[i])) == want1

    def test_dense_respects_the_entry_bound(self):
        # A bypassed pair (dict full) must not sneak into the dense mirror
        # either — the eviction discipline stays observable.
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # stored
        cache.apply(follower, leader)  # bypassed
        cache.apply(follower, leader)  # must be recomputed, not dense-hit
        assert cache.stats.bypasses == 2
        assert cache.stats.dense_hits == 0

    def test_apply_block_counts_each_distinct_pair_once(self):
        # A block containing an unstorable pair (dict full) must not
        # double-compute or double-count it: one bypass per block.
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # occupies the single dict slot
        pre0 = np.array([leader, follower], dtype=np.int64)
        pre1 = np.array([leader, leader], dtype=np.int64)
        before = cache.stats.bypasses
        cache.apply_block(pre0, pre1)
        assert cache.stats.bypasses == before + 1


class TestConfigurableDenseBound:
    """The dense-mirror bound is a knob (ISSUE 4): ctor arg, env, default."""

    def test_default_bound_covers_pll_at_n_1024(self):
        # The raise to 512 exists for exactly this regime: PLL reaches
        # ~275 states at n=1024 and used to drop the mirror at 256.
        assert DENSE_STATE_BOUND == 512

    def test_ctor_bound_overrides_the_default(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner, dense_bound=4)
        for value in range(6):
            interner.intern(value)
        cache.apply(0, 1)
        assert not cache.dense_enabled
        assert cache.apply(0, 1) == (1, 1)  # dict path still answers

    def test_zero_bound_disables_the_mirror_outright(self):
        protocol = MaxPropagationProtocol()
        cache = TransitionCache(protocol, StateInterner(), dense_bound=0)
        assert not cache.dense_enabled

    def test_env_override_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_STATE_BOUND", "4")
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        for value in range(6):
            interner.intern(value)
        cache.apply(0, 1)
        assert not cache.dense_enabled

    def test_garbage_env_falls_back_to_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_STATE_BOUND", "not-a-number")
        cache = TransitionCache(MaxPropagationProtocol(), StateInterner())
        assert cache.dense_enabled
