"""Tests for repro.engine.cache."""

import pytest

from repro.engine.cache import TransitionCache
from repro.engine.interner import StateInterner
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.protocols.angluin import AngluinProtocol


def make_cache(max_entries: int = 1 << 20):
    protocol = AngluinProtocol()
    interner = StateInterner()
    leader = interner.intern(True)
    follower = interner.intern(False)
    return TransitionCache(protocol, interner, max_entries), leader, follower


class TestCacheCorrectness:
    def test_applies_protocol_transition(self):
        cache, leader, follower = make_cache()
        assert cache.apply(leader, leader) == (leader, follower)

    def test_null_transition_returns_same_ids(self):
        cache, leader, follower = make_cache()
        assert cache.apply(follower, follower) == (follower, follower)

    def test_order_matters(self):
        cache, leader, follower = make_cache()
        assert cache.apply(leader, follower) == (leader, follower)
        assert cache.apply(follower, leader) == (follower, leader)

    def test_result_matches_direct_computation_for_new_states(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        zero = interner.intern(0)
        one = interner.intern(1)
        assert cache.apply(zero, one) == (one, one)

    def test_new_post_states_are_interned(self):
        protocol = MaxPropagationProtocol()
        interner = StateInterner()
        cache = TransitionCache(protocol, interner)
        zero = interner.intern(0)
        # 1 has never been interned; the transition creates it... but
        # (0, 0) -> (0, 0), so nothing new:
        cache.apply(zero, zero)
        assert len(interner) == 1


class TestCacheStatistics:
    def test_miss_then_hit(self):
        cache, leader, follower = make_cache()
        cache.apply(leader, leader)
        assert (cache.stats.misses, cache.stats.hits) == (1, 0)
        cache.apply(leader, leader)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)

    def test_len_tracks_stored_pairs(self):
        cache, leader, follower = make_cache()
        cache.apply(leader, leader)
        cache.apply(leader, follower)
        cache.apply(leader, leader)
        assert len(cache) == 2

    def test_hit_rate(self):
        cache, leader, follower = make_cache()
        assert cache.stats.hit_rate == 0.0
        cache.apply(leader, leader)
        cache.apply(leader, leader)
        cache.apply(leader, leader)
        assert cache.stats.hit_rate == 2 / 3

    def test_bounded_cache_bypasses_beyond_cap(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # stored
        cache.apply(leader, follower)  # bypassed
        assert len(cache) == 1
        assert cache.stats.bypasses == 1

    def test_bypassed_transitions_still_correct(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(follower, follower)
        assert cache.apply(leader, leader) == (leader, follower)
        assert cache.apply(leader, leader) == (leader, follower)

    def test_lookups_total(self):
        cache, leader, follower = make_cache()
        for _ in range(5):
            cache.apply(leader, follower)
        assert cache.stats.lookups == 5


class TestCacheTinyBound:
    """Behavior at a tiny ``cache_entries`` bound (the eviction policy is
    insert-until-full, then compute-without-storing)."""

    def test_zero_capacity_never_stores(self):
        cache, leader, follower = make_cache(max_entries=0)
        for _ in range(3):
            assert cache.apply(leader, leader) == (leader, follower)
        assert len(cache) == 0
        assert cache.stats.bypasses == 3
        assert cache.stats.hits == cache.stats.misses == 0

    def test_stored_pairs_keep_hitting_after_the_bound(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # occupies the single slot
        cache.apply(follower, leader)  # bypassed
        assert cache.apply(leader, leader) == (leader, follower)
        assert cache.stats.hits == 1

    def test_bypassed_pair_is_recomputed_every_time(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)
        for _ in range(4):
            cache.apply(follower, leader)
        assert cache.stats.bypasses == 4
        assert len(cache) == 1

    def test_full_cache_hit_rate_unaffected_by_bypasses(self):
        cache, leader, follower = make_cache(max_entries=1)
        cache.apply(leader, leader)  # miss, stored
        cache.apply(leader, leader)  # hit
        cache.apply(follower, leader)  # bypass
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_max_entries_property_reflects_bound(self):
        cache, _, _ = make_cache(max_entries=7)
        assert cache.max_entries == 7
