"""Chi-square uniformity of the pair schedulers, and the RNG-sharing pin.

The paper's scheduler Gamma is *uniform over ordered pairs of distinct
agents*; the restricted scheduler is uniform over the partition's pairs,
and the graph scheduler uniform over a directed edge multiset.  These
tests grade observed pair frequencies with a chi-square statistic
against hardcoded alpha = 0.001 critical values (no scipy in the
image), so a biased sampler fails loudly while seed-to-seed noise does
not.

The RNG contract is pinned too: a scheduler built from a
``numpy.random.Generator`` *shares* the caller's stream (the generator
object itself), never a copy — simulators rely on this to keep one
reproducible stream per trial.
"""

import numpy as np

from repro.engine.scheduler import RandomScheduler, RestrictedScheduler
from repro.engine.simulator import AgentSimulator
from repro.orchestration.registry import build_protocol
from repro.schedulers.graphs import GraphScheduler, ring_edges
from repro.schedulers.weighted import StateWeightedScheduler

#: chi-square critical values at alpha = 0.001, keyed by degrees of
#: freedom (scipy.stats.chi2.ppf(0.999, df), precomputed).
CHI2_CRIT = {11: 31.264, 15: 37.697, 29: 58.301}


def chi_square(observed: dict, expected_counts: dict) -> tuple[float, int]:
    """Statistic and degrees of freedom over the expected support."""
    assert set(observed) <= set(expected_counts), "draws outside the support"
    stat = sum(
        (observed.get(pair, 0) - expected) ** 2 / expected
        for pair, expected in expected_counts.items()
    )
    return stat, len(expected_counts) - 1


def tally(scheduler, draws: int) -> dict:
    counts: dict = {}
    for pair in scheduler.pairs(draws):
        counts[pair] = counts.get(pair, 0) + 1
    return counts


class TestPairUniformity:
    def test_random_scheduler_is_uniform_over_ordered_pairs(self):
        n, draws = 6, 60_000
        scheduler = RandomScheduler(n, seed=11)
        expected = {
            (u, v): draws / (n * (n - 1))
            for u in range(n)
            for v in range(n)
            if u != v
        }
        stat, df = chi_square(tally(scheduler, draws), expected)
        assert df == 29
        assert stat < CHI2_CRIT[df], f"chi2={stat:.1f}"

    def test_restricted_scheduler_is_uniform_over_member_pairs(self):
        members, draws = (1, 3, 5, 7), 24_000
        scheduler = RestrictedScheduler(10, members, seed=11)
        expected = {
            (u, v): draws / (len(members) * (len(members) - 1))
            for u in members
            for v in members
            if u != v
        }
        stat, df = chi_square(tally(scheduler, draws), expected)
        assert df == 11
        assert stat < CHI2_CRIT[df], f"chi2={stat:.1f}"

    def test_graph_scheduler_is_uniform_over_directed_edges(self):
        edges = ring_edges(8)
        draws = 32_000
        scheduler = GraphScheduler(edges, seed=11)
        expected = {
            (int(u), int(v)): draws / len(edges) for u, v in edges
        }
        stat, df = chi_square(tally(scheduler, draws), expected)
        assert df == 15
        assert stat < CHI2_CRIT[df], f"chi2={stat:.1f}"


class TestGeneratorSharing:
    def test_random_scheduler_shares_a_passed_generator(self):
        gen = np.random.default_rng(7)
        scheduler = RandomScheduler(8, gen)
        assert scheduler.rng is gen

    def test_graph_scheduler_shares_a_passed_generator(self):
        gen = np.random.default_rng(7)
        scheduler = GraphScheduler(ring_edges(8), gen)
        assert scheduler.rng is gen

    def test_state_weighted_scheduler_shares_a_passed_generator(self):
        sim = AgentSimulator(build_protocol("pll", 8), 8, seed=0)
        gen = np.random.default_rng(7)
        scheduler = StateWeightedScheduler(sim, {"L": 2.0}, gen)
        assert scheduler.rng is gen

    def test_shared_stream_advances_in_the_caller(self):
        # Sharing means drawing through the scheduler consumes the
        # caller's stream: a fresh identically-seeded generator no
        # longer agrees with the shared one after scheduler use.
        gen = np.random.default_rng(7)
        RandomScheduler(8, gen)  # construction refills a batch
        untouched = np.random.default_rng(7)
        assert gen.integers(1 << 30) != untouched.integers(1 << 30)

    def test_identical_seeds_give_identical_streams(self):
        a = RandomScheduler(12, seed=5)
        b = RandomScheduler(12, seed=5)
        assert list(a.pairs(200)) == list(b.pairs(200))
