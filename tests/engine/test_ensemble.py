"""Faithfulness and behavior of the across-trial ensemble engine.

The ensemble's contract is stronger than the batch engine's statistical
agreement: every lane must be **bit-identical** to a solo
:class:`MultisetSimulator` run with the same seed — same trajectory, same
stabilization step, same distinct-state count — through every execution
path (pure vectorized lockstep, mid-run detachment, pure scalar
SlotLane).  RNG-stream isolation between lanes falls out of the same
checks: if any lane read another's draws, its trajectory would diverge
from the solo run that consumes only its own stream.
"""

import numpy as np
import pytest

from repro.analysis.stats import ks_critical_value, ks_statistic
from repro.core.pll import PLLProtocol
from repro.engine.ensemble import EnsembleSimulator, SlotLane
from repro.engine.multiset import MultisetSimulator
from repro.errors import ConvergenceError
from repro.protocols.angluin import AngluinProtocol


def pll(n):
    return PLLProtocol.for_population(n)


def solo_outcomes(protocol_factory, n, seeds):
    outcomes = {}
    for seed in seeds:
        sim = MultisetSimulator(protocol_factory(n), n, seed=seed)
        sim.run_until_stabilized()
        outcomes[seed] = (sim.steps, sim.distinct_states_seen())
    return outcomes


class TestLanesMatchSoloMultiset:
    """The satellite requirement: lane(seed) == MultisetSimulator(seed)."""

    PLL_N = 192
    PLL_SEEDS = list(range(8))
    ANGLUIN_N = 96
    ANGLUIN_SEEDS = list(range(5))

    @pytest.fixture(scope="class")
    def solo_pll(self):
        return solo_outcomes(pll, self.PLL_N, self.PLL_SEEDS)

    @pytest.fixture(scope="class")
    def solo_angluin(self):
        return solo_outcomes(
            lambda n: AngluinProtocol(), self.ANGLUIN_N, self.ANGLUIN_SEEDS
        )

    @pytest.mark.parametrize("detach_lanes", [0, 3, 10**9])
    def test_pll_lanes_bit_identical(self, solo_pll, detach_lanes):
        # detach_lanes=0: pure vectorized; 3: mixed (stragglers detach);
        # huge: pure scalar SlotLane path.  All must agree exactly.
        # detach_work=0 pins the lane-count policy alone.
        ensemble = EnsembleSimulator(
            pll(self.PLL_N), self.PLL_N, self.PLL_SEEDS,
            detach_lanes=detach_lanes, detach_work=0,
        )
        got = {
            o.seed: (o.steps, o.distinct_states)
            for o in ensemble.run_until_stabilized()
        }
        assert got == solo_pll

    def test_pll_lanes_bit_identical_under_work_policy(self, solo_pll):
        # The self-tuning policy: PLL commits ~1 interaction per lane per
        # sweep, so the ensemble detaches itself mid-run.  Outcomes must
        # not notice.
        ensemble = EnsembleSimulator(
            pll(self.PLL_N), self.PLL_N, self.PLL_SEEDS,
            detach_lanes=0, detach_work=10**9,
        )
        got = {
            o.seed: (o.steps, o.distinct_states)
            for o in ensemble.run_until_stabilized()
        }
        assert got == solo_pll

    @pytest.mark.parametrize("detach_lanes", [0, 10**9])
    def test_angluin_lanes_bit_identical(self, solo_angluin, detach_lanes):
        # Angluin is ~94% null interactions: this exercises the adaptive
        # lookahead window committing long null runs per sweep.
        ensemble = EnsembleSimulator(
            AngluinProtocol(), self.ANGLUIN_N, self.ANGLUIN_SEEDS,
            detach_lanes=detach_lanes, detach_work=0,
        )
        got = {
            o.seed: (o.steps, o.distinct_states)
            for o in ensemble.run_until_stabilized()
        }
        assert got == solo_angluin

    def test_every_lane_elects_one_leader(self):
        ensemble = EnsembleSimulator(pll(self.PLL_N), self.PLL_N, [0, 1, 2, 3])
        outcomes = ensemble.run_until_stabilized()
        assert all(o.leader_count == 1 for o in outcomes)


class TestMidRunConfigurations:
    """Checkpoint equality: not just endpoints, whole trajectories."""

    N = 128

    def test_lockstep_configurations_match_solo(self):
        seeds = [0, 1, 2, 3, 4]
        ensemble = EnsembleSimulator(
            pll(self.N), self.N, seeds, detach_lanes=0
        )
        solos = {
            seed: MultisetSimulator(pll(self.N), self.N, seed=seed)
            for seed in seeds
        }
        total = 0
        for stride in (1, 7, 250, 1000):
            ensemble.run(stride)
            total += stride
            for index, seed in enumerate(seeds):
                solos[seed].run(stride)
                assert ensemble.lane_steps(index) == total
                assert (
                    ensemble.lane_state_counts(index)
                    == solos[seed].state_counts()
                ), f"seed {seed} diverged by step {total}"

    def test_slot_lane_configurations_match_solo(self):
        lane = SlotLane(pll(self.N), self.N, seed=6)
        solo = MultisetSimulator(pll(self.N), self.N, seed=6)
        for stride in (1, 13, 500):
            lane.run(stride, stop_at_target=False)
            solo.run(stride)
            assert lane.state_counts() == solo.state_counts()


class TestLanePackingIndependence:
    """Outcomes are a pure function of the seed, not of the packing."""

    N = 96

    def outcomes_for(self, seeds):
        ensemble = EnsembleSimulator(pll(self.N), self.N, seeds)
        return {
            o.seed: o.steps for o in ensemble.run_until_stabilized()
        }

    def test_subsets_and_orderings_agree(self):
        full = self.outcomes_for(list(range(8)))
        shuffled = self.outcomes_for([5, 2, 7, 0])
        pair = self.outcomes_for([2, 5])
        for seed, steps in shuffled.items():
            assert full[seed] == steps
        for seed, steps in pair.items():
            assert full[seed] == steps


class TestBudgetsAndErrors:
    def test_budget_overrun_names_the_seed(self):
        # Every lane exhausts a 3-step budget; the error deterministically
        # names the first (lowest-index) offender's seed.
        with pytest.raises(ConvergenceError, match="seed 7"):
            EnsembleSimulator(
                AngluinProtocol(), 64, [7, 8, 9],
                detach_lanes=0, detach_work=0,
            ).run_until_stabilized(max_steps=3)

    def test_vectorized_siblings_within_budget_still_finish(self):
        # One lane exhausts the budget mid-run; lanes that can still
        # stabilize inside it must run to completion and be delivered
        # before the failure raises — the vectorized path preserves the
        # same work on abort as the scalar path.
        n = 64
        solo = solo_outcomes(lambda n: AngluinProtocol(), n, range(6))
        budget = sorted(steps for steps, _distinct in solo.values())[4]
        delivered = []
        with pytest.raises(ConvergenceError):
            EnsembleSimulator(
                AngluinProtocol(), n, list(range(6)),
                detach_lanes=0, detach_work=0,
            ).run_until_stabilized(
                max_steps=budget, on_lane_done=delivered.append
            )
        assert len(delivered) >= 5  # every lane that fit the budget
        for outcome in delivered:
            assert outcome.steps == solo[outcome.seed][0]

    def test_finished_lanes_stream_before_the_error(self):
        # One lane cannot stabilize in the budget; lanes that already
        # retired must have been delivered through the callback anyway —
        # that is what makes an interrupted campaign resumable.
        n = 64
        solo = solo_outcomes(lambda n: AngluinProtocol(), n, range(6))
        budget = sorted(steps for steps, _distinct in solo.values())[3]
        delivered = []
        with pytest.raises(ConvergenceError):
            EnsembleSimulator(
                AngluinProtocol(), n, list(range(6))
            ).run_until_stabilized(
                max_steps=budget, on_lane_done=delivered.append
            )
        assert delivered  # the fast lanes made it out
        for outcome in delivered:
            assert outcome.steps == solo[outcome.seed][0]

    def test_rejects_tiny_population(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            EnsembleSimulator(AngluinProtocol(), 1, [0])

    def test_rejects_empty_lane_list(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            EnsembleSimulator(AngluinProtocol(), 8, [])


class TestEnsembleDistributions:
    """KS agreement with the multiset engine over disjoint seed ranges.

    Per-seed equality makes same-seed comparison vacuous, so this uses
    different seeds: the ensemble's stabilization-time *distribution*
    must match the multiset engine's, which is the property the paper's
    Table 1 / Theorem 1 statistics rest on.
    """

    N = 32
    TRIALS = 40

    def test_ks_agreement_on_pll(self):
        ensemble = EnsembleSimulator(
            pll(self.N), self.N, list(range(5000, 5000 + self.TRIALS))
        )
        mine = np.asarray(
            [o.steps / self.N for o in ensemble.run_until_stabilized()]
        )
        times = []
        for seed in range(self.TRIALS):
            sim = MultisetSimulator(pll(self.N), self.N, seed=seed)
            sim.run_until_stabilized()
            times.append(sim.parallel_time)
        theirs = np.asarray(times)
        statistic = ks_statistic(mine, theirs)
        threshold = ks_critical_value(len(mine), len(theirs), alpha=0.001)
        assert statistic < threshold, (
            f"ensemble vs multiset KS {statistic:.3f} exceeds {threshold:.3f}"
        )


class TestSingleLaneFacade:
    def test_build_simulator_ensemble_runs_to_stabilization(self):
        from repro.orchestration.pool import build_simulator

        sim = build_simulator(AngluinProtocol(), 64, seed=3, engine="ensemble")
        steps = sim.run_until_stabilized()
        solo = MultisetSimulator(AngluinProtocol(), 64, seed=3)
        assert steps == solo.run_until_stabilized()
        assert sim.leader_count == 1
        assert sim.distinct_states_seen() == solo.distinct_states_seen()
        assert "n=64" in sim.describe()

    def test_facade_budget_error(self):
        from repro.orchestration.pool import build_simulator

        sim = build_simulator(AngluinProtocol(), 64, seed=3, engine="ensemble")
        with pytest.raises(ConvergenceError):
            sim.run_until_stabilized(max_steps=2)
