"""Unit and property tests for the count-level super-batch engine.

Distributional agreement with the other engines lives in
``test_superbatch_agree.py``; this file pins the count-level mechanics:
exact run-length sampling, pair-multiset margins, count-vector
invariants across blocks, per-seed determinism, and the exact in-run
leader truncation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import ks_critical_value, ks_statistic
from repro.core.pll import PLLProtocol
from repro.engine.superbatch import SuperBatchSimulator, SuperBatchStats
from repro.engine.superbatch.sampling import (
    sample_run_length,
    sample_run_pairs,
    split_pair_multiset,
)
from repro.errors import SimulationError
from repro.protocols.angluin import AngluinProtocol
from repro.protocols.majority import ApproximateMajority


class TestSampleRunLength:
    def test_matches_brute_force_birthday_process(self):
        # The sampled run length must follow the exact distribution of
        # "interactions before any agent repeats" under the sequential
        # scheduler, which a pick-by-pick simulation realizes directly.
        n, draws = 40, 20_000
        rng = np.random.default_rng(0)
        sampled = np.array(
            [sample_run_length(rng, n, 10_000)[0] for _ in range(draws)],
            dtype=float,
        )
        brute_rng = np.random.default_rng(1)
        brute = np.empty(draws)
        for index in range(draws):
            seen = set()
            length = 0
            while True:
                initiator = int(brute_rng.integers(0, n))
                responder = int(brute_rng.integers(0, n - 1))
                responder += responder >= initiator
                if initiator in seen or responder in seen:
                    break
                seen.add(initiator)
                seen.add(responder)
                length += 1
            brute[index] = length
        statistic = ks_statistic(sampled, brute)
        assert statistic < ks_critical_value(draws, draws, alpha=0.001)

    def test_cap_is_reported_as_uncollided(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            length, collided = sample_run_length(rng, 1000, 3)
            assert 0 <= length <= 3
            if length == 3:
                assert not collided
            else:
                assert collided

    def test_limit_clamped_to_half_the_population(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            length, collided = sample_run_length(rng, 10, 10_000)
            assert length <= 5

    def test_always_at_least_one_interaction(self):
        # The two picks of one interaction are distinct by construction.
        rng = np.random.default_rng(0)
        assert all(
            sample_run_length(rng, 8, 4)[0] >= 1 for _ in range(200)
        )


class TestSampleRunPairs:
    @given(seed=st.integers(0, 2**32 - 1), pairs=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_margins_and_totals(self, seed, pairs):
        rng = np.random.default_rng(seed)
        support = np.array([0, 1, 2, 5, 9], dtype=np.int64)
        pool = np.array([200, 3, 17, 40, 1], dtype=np.int64)
        pre0, pre1, weight = sample_run_pairs(rng, support, pool, pairs)
        assert weight.sum() == pairs
        assert (weight > 0).all()
        drawn = np.zeros(10, dtype=np.int64)
        np.add.at(drawn, pre0, weight)
        np.add.at(drawn, pre1, weight)
        assert drawn.sum() == 2 * pairs
        # Without-replacement: never draws more of a state than exists.
        limits = np.zeros(10, dtype=np.int64)
        limits[support] = pool
        assert (drawn <= limits).all()
        # COO pairs are unique (aggregated), and ids come from support.
        keys = pre0 * 10 + pre1
        assert len(np.unique(keys)) == keys.shape[0]
        assert np.isin(pre0, support).all() and np.isin(pre1, support).all()

    def test_single_state_population_short_circuits(self):
        rng = np.random.default_rng(0)
        pre0, pre1, weight = sample_run_pairs(
            rng, np.array([7]), np.array([1000]), 13
        )
        assert pre0.tolist() == [7] and pre1.tolist() == [7]
        assert weight.tolist() == [13]

    def test_state_frequencies_match_hypergeometric_margins(self):
        # Aggregate per-state draw frequencies across many runs must
        # match the without-replacement expectation 2L * count / total.
        rng = np.random.default_rng(3)
        support = np.arange(4, dtype=np.int64)
        pool = np.array([600, 300, 90, 10], dtype=np.int64)
        pairs = 100
        totals = np.zeros(4)
        runs = 400
        for _ in range(runs):
            pre0, pre1, weight = sample_run_pairs(rng, support, pool, pairs)
            np.add.at(totals, pre0, weight)
            np.add.at(totals, pre1, weight)
        expected = 2 * pairs * runs * pool / pool.sum()
        np.testing.assert_allclose(totals, expected, rtol=0.05)

    def test_initiator_responder_roles_are_symmetric_in_distribution(self):
        # Each sampled agent lands in an initiator slot with probability
        # exactly 1/2, so per-state initiator counts must match
        # responder counts in aggregate.
        rng = np.random.default_rng(4)
        support = np.arange(3, dtype=np.int64)
        pool = np.array([500, 100, 25], dtype=np.int64)
        initiator_totals = np.zeros(3)
        responder_totals = np.zeros(3)
        for _ in range(600):
            pre0, pre1, weight = sample_run_pairs(rng, support, pool, 50)
            np.add.at(initiator_totals, pre0, weight)
            np.add.at(responder_totals, pre1, weight)
        np.testing.assert_allclose(
            initiator_totals, responder_totals, rtol=0.05
        )


class TestSplitPairMultiset:
    def test_split_preserves_totals_and_bounds(self):
        rng = np.random.default_rng(0)
        weights = np.array([5, 0, 9, 1], dtype=np.int64)
        for take in (0, 1, 7, 15):
            prefix = split_pair_multiset(rng, weights, take)
            assert prefix.sum() == take
            assert (prefix <= weights).all()


class TestSimulatorInvariants:
    @given(
        n=st.integers(2, 400),
        seed=st.integers(0, 2**31 - 1),
        chunk=st.integers(1, 700),
    )
    @settings(max_examples=30, deadline=None)
    def test_counts_stay_nonnegative_and_sum_to_n(self, n, seed, chunk):
        sim = SuperBatchSimulator(AngluinProtocol(), n, seed=seed)
        for _ in range(6):
            sim.run(chunk)
            assert (sim._counts >= 0).all()
            assert int(sim._counts.sum()) == n
        assert sim.steps == 6 * chunk

    @given(n=st.integers(4, 120), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_pll_counts_invariant_through_stabilization(self, n, seed):
        sim = SuperBatchSimulator(
            PLLProtocol.for_population(n), n, seed=seed
        )
        sim.run_until_stabilized()
        assert (sim._counts >= 0).all()
        assert int(sim._counts.sum()) == n
        assert sim.leader_count == 1

    def test_rejects_tiny_populations(self):
        with pytest.raises(SimulationError):
            SuperBatchSimulator(AngluinProtocol(), 1)

    def test_n_equals_two(self):
        sim = SuperBatchSimulator(AngluinProtocol(), 2, seed=0)
        sim.run(100)
        assert sim.steps == 100
        assert int(sim._counts.sum()) == 2

    def test_output_counts_track_commits(self):
        n = 64
        sim = SuperBatchSimulator(ApproximateMajority(), n, seed=5)
        sim.run(500)
        assert sum(sim.output_counts.values()) == n


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def trajectory(seed):
            sim = SuperBatchSimulator(
                PLLProtocol.for_population(128), 128, seed=seed
            )
            points = []
            for _ in range(8):
                sim.run(400)
                points.append((sim.steps, dict(sim.state_counts())))
            points.append(sim.run_until_stabilized())
            return points

        assert trajectory(1234) == trajectory(1234)

    def test_different_seeds_diverge(self):
        def final(seed):
            sim = SuperBatchSimulator(
                PLLProtocol.for_population(128), 128, seed=seed
            )
            return sim.run_until_stabilized()

        outcomes = {final(seed) for seed in range(6)}
        assert len(outcomes) > 1

    def test_stabilization_step_is_deterministic_per_seed(self):
        for seed in range(4):
            first = SuperBatchSimulator(
                PLLProtocol.for_population(200), 200, seed=seed
            ).run_until_stabilized()
            second = SuperBatchSimulator(
                PLLProtocol.for_population(200), 200, seed=seed
            ).run_until_stabilized()
            assert first == second


class TestLeaderTruncation:
    def test_exact_first_hit_when_every_delta_is_minus_one(self):
        # With unit-loss deltas the hit position is fully determined by
        # the leader surplus, whatever order the bisection resolves.
        sim = SuperBatchSimulator(PLLProtocol.for_population(64), 64, seed=0)
        weight = np.array([10, 20, 5], dtype=np.int64)
        deltas = np.array([0, -1, 0], dtype=np.int64)
        found = sim._truncate_run(weight, deltas, lead=8, target=1)
        assert found is not None
        prefix, steps = found
        assert int(prefix.sum()) == steps
        assert prefix[1] == 7  # exactly the losses needed to reach 1
        assert int((prefix * deltas).sum()) == -7

    def test_no_hit_when_target_unreachable(self):
        sim = SuperBatchSimulator(PLLProtocol.for_population(64), 64, seed=0)
        weight = np.array([10, 3], dtype=np.int64)
        deltas = np.array([0, -1], dtype=np.int64)
        assert sim._truncate_run(weight, deltas, lead=8, target=1) is None

    def test_skipping_deltas_report_no_exact_hit(self):
        # A two-leader-loss interaction jumping straight past the target
        # must mirror the batch engine's `cumulative == target` scan:
        # no exact hit.
        sim = SuperBatchSimulator(PLLProtocol.for_population(64), 64, seed=0)
        weight = np.array([4], dtype=np.int64)
        deltas = np.array([-2], dtype=np.int64)
        assert sim._truncate_run(weight, deltas, lead=4, target=1) is None

    def test_stabilization_truncates_runs(self):
        sim = SuperBatchSimulator(
            PLLProtocol.for_population(512), 512, seed=3
        )
        sim.run_until_stabilized()
        assert isinstance(sim.stats, SuperBatchStats)
        assert sim.leader_count == 1
        # The leader count hit the target inside a block at least once
        # over the run (initial configurations start with n leaders).
        assert sim.stats.truncated_runs + sim.stats.collision_steps > 0


class TestStatsAccounting:
    def test_total_steps_matches_executed(self):
        sim = SuperBatchSimulator(AngluinProtocol(), 256, seed=0)
        executed = sim.run(5000)
        assert executed == 5000
        assert sim.stats.total_steps == sim.steps == 5000

    def test_null_skip_engages_on_silent_configurations(self):
        # Angluin with a single leader left is fully null: the inherited
        # geometric path must absorb the budget without block sampling.
        sim = SuperBatchSimulator(AngluinProtocol(), 128, seed=0)
        sim.run_until_stabilized()
        before = sim.stats.blocks
        sim.run(100_000)
        assert sim.stats.null_skipped_steps > 0
        assert sim.stats.blocks - before < 20
