"""Engine plumbing validated against randomly generated protocols.

Hypothesis builds arbitrary deterministic transition tables over small
state sets; the engine (interning + memoization + incremental output
counts) must agree exactly with the direct functional application of the
table.  This catches plumbing bugs that protocol-specific tests, which
share the engine's own code paths, could mask.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.population import Configuration
from repro.engine.protocol import Protocol
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator


class TableProtocol(Protocol):
    """A protocol defined by an explicit transition table."""

    name = "table-protocol"

    def __init__(self, k: int, table: dict[tuple[int, int], tuple[int, int]]):
        self.k = k
        self.table = table

    def initial_state(self) -> int:
        return 0

    def transition(self, initiator: int, responder: int) -> tuple[int, int]:
        return self.table.get((initiator, responder), (initiator, responder))

    def output(self, state: int) -> str:
        return str(state)

    def state_bound(self) -> int:
        return self.k


@st.composite
def protocol_and_schedule(draw):
    k = draw(st.integers(2, 4))
    n = draw(st.integers(2, 6))
    # A full k x k transition table with entries in [0, k).
    table = {}
    for p in range(k):
        for q in range(k):
            pair = draw(
                st.tuples(st.integers(0, k - 1), st.integers(0, k - 1))
            )
            table[(p, q)] = pair
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda uv: uv[0] != uv[1]
            ),
            max_size=80,
        )
    )
    initial = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    return k, n, table, pairs, initial


class TestEngineAgainstFunctionalSemantics:
    @given(protocol_and_schedule())
    @settings(max_examples=60)
    def test_simulator_matches_functional_apply(self, case):
        k, n, table, pairs, initial = case
        protocol = TableProtocol(k, table)
        sim = AgentSimulator(
            protocol, n, scheduler=DeterministicSchedule(list(pairs))
        )
        sim.load_configuration(list(initial))
        sim.run(len(pairs))
        expected = Configuration.of(initial).apply(protocol, pairs)
        assert sim.configuration() == list(expected.states)

    @given(protocol_and_schedule())
    @settings(max_examples=40)
    def test_output_counts_stay_consistent(self, case):
        """Incrementally maintained counts equal a fresh tally, and carry
        no zero entries."""
        k, n, table, pairs, initial = case
        protocol = TableProtocol(k, table)
        sim = AgentSimulator(
            protocol, n, scheduler=DeterministicSchedule(list(pairs))
        )
        sim.load_configuration(list(initial))
        for _ in range(len(pairs)):
            sim.step()
            fresh = Counter(
                protocol.output(state) for state in sim.configuration()
            )
            assert sim.output_counts == fresh
            assert all(count > 0 for count in sim.output_counts.values())

    @given(protocol_and_schedule())
    @settings(max_examples=40)
    def test_cache_and_interner_agree_with_table(self, case):
        k, n, table, pairs, initial = case
        protocol = TableProtocol(k, table)
        sim = AgentSimulator(
            protocol, n, scheduler=DeterministicSchedule(list(pairs))
        )
        sim.load_configuration(list(initial))
        sim.run(len(pairs))
        interner = sim.interner
        for (p, q), (p2, q2) in table.items():
            p_id = interner.id_of(p)
            q_id = interner.id_of(q)
            if p_id is None or q_id is None:
                continue  # never interned: never interacted in this run
            post = sim.cache.apply(p_id, q_id)
            assert (
                interner.state_of(post[0]),
                interner.state_of(post[1]),
            ) == (p2, q2)
