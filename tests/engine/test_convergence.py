"""Tests for repro.engine.convergence."""

from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    SilenceDetector,
    output_stable_forever,
)
from repro.engine.simulator import AgentSimulator
from repro.epidemic.epidemic import MaxPropagationProtocol
from repro.protocols.angluin import AngluinProtocol


class TestMonotoneLeaderStabilization:
    def test_fires_on_exactly_one_leader(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, False, False, False])
        assert MonotoneLeaderStabilization().check(sim)

    def test_does_not_fire_with_two_leaders(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, True, False, False])
        assert not MonotoneLeaderStabilization().check(sim)

    def test_custom_target(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, True, False, False])
        assert MonotoneLeaderStabilization(target=2).check(sim)


class TestSilenceDetector:
    def test_silent_configuration(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, False, False, False])
        assert SilenceDetector().check(sim)

    def test_noisy_configuration(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        # Two leaders can still interact: not silent.
        sim.load_configuration([True, True, False, False])
        assert not SilenceDetector().check(sim)

    def test_multiplicity_matters_for_same_state_pairs(self):
        sim = AgentSimulator(MaxPropagationProtocol(), 3, seed=0)
        sim.load_configuration([1, 1, 1])  # all infected: silent
        assert SilenceDetector().check(sim)

    def test_epidemic_mid_flight_is_not_silent(self):
        sim = AgentSimulator(MaxPropagationProtocol(), 3, seed=0)
        sim.load_configuration([1, 0, 0])
        assert not SilenceDetector().check(sim)


class TestOutputStableForever:
    def test_stable_single_leader(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, False, False, False])
        assert output_stable_forever(sim)

    def test_unstable_two_leaders(self):
        sim = AgentSimulator(AngluinProtocol(), 4, seed=0)
        sim.load_configuration([True, True, False, False])
        assert not output_stable_forever(sim)

    def test_epidemic_outputs_unstable_until_complete(self):
        sim = AgentSimulator(MaxPropagationProtocol(), 4, seed=0)
        sim.load_configuration([1, 0, 0, 0])
        assert not output_stable_forever(sim)
        sim.load_configuration([1, 1, 1, 1])
        assert output_stable_forever(sim)

    def test_pll_stabilized_run_is_exactly_stable(self):
        """The paper's S_P definition, checked exhaustively on a tiny n."""
        from repro.core.pll import PLLProtocol

        sim = AgentSimulator(PLLProtocol.for_population(4), 4, seed=1)
        sim.run_until_stabilized()
        assert output_stable_forever(sim)
