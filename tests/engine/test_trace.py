"""Tests for repro.engine.trace."""

from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.engine.trace import ConfigurationSnapshot, TraceRecorder, replay
from repro.protocols.angluin import AngluinProtocol


class TestTraceRecorder:
    def test_records_every_pair(self):
        sim = AgentSimulator(AngluinProtocol(), 6, seed=0)
        recorder = TraceRecorder()
        sim.add_hook(recorder)
        sim.run(25)
        assert len(recorder) == 25

    def test_schedule_replays_identically(self):
        sim = AgentSimulator(AngluinProtocol(), 6, seed=3)
        recorder = TraceRecorder()
        sim.add_hook(recorder)
        sim.run_until_stabilized()
        replayed = replay(AngluinProtocol(), 6, recorder.pairs)
        assert replayed.configuration() == sim.configuration()

    def test_replay_of_pll_run_is_bit_exact(self):
        protocol = PLLProtocol.for_population(8)
        sim = AgentSimulator(protocol, 8, seed=7)
        recorder = TraceRecorder()
        sim.add_hook(recorder)
        sim.run(5000)
        replayed = replay(PLLProtocol.for_population(8), 8, recorder.pairs)
        assert replayed.configuration() == sim.configuration()

    def test_replay_from_custom_initial_configuration(self):
        initial = [True, False, True, False]
        replayed = replay(AngluinProtocol(), 4, [(0, 2)], initial=initial)
        assert replayed.configuration() == [True, False, False, False]


class TestConfigurationSnapshot:
    def test_capture_and_restore(self):
        sim = AgentSimulator(AngluinProtocol(), 5, seed=0)
        sim.run(10)
        snapshot = ConfigurationSnapshot.capture(sim, label="mid-run")
        sim.run(50)
        snapshot.restore(sim)
        assert list(snapshot.states) == sim.configuration()

    def test_snapshot_records_step_count(self):
        sim = AgentSimulator(AngluinProtocol(), 5, seed=0)
        sim.run(7)
        assert ConfigurationSnapshot.capture(sim).steps == 7

    def test_output_counts(self):
        snapshot = ConfigurationSnapshot(states=(True, False, False))
        assert snapshot.output_counts(AngluinProtocol()) == {"L": 1, "F": 2}
