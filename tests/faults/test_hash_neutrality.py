"""Fault-plan hash neutrality: ``plan=None`` keeps every pre-existing hash.

Spec content hashes name store rows, so if attaching the ``fault_plan``
field had leaked into the canonical form of clean specs, every existing
trial store would silently re-execute from scratch.  The hashes pinned
here were computed on the pre-fault-subsystem tree (the telemetry-PR
checkout): any drift is a breaking store-format change, not a test to
update casually.
"""

import json

from repro.faults.plan import FaultPlan
from repro.orchestration.pool import run_specs
from repro.orchestration.spec import TrialSpec
from repro.orchestration.store import TrialStore

#: (protocol, n, seed, engine, content hash) computed before the faults
#: subsystem existed.
PINNED = [
    ("pll", 24, 0, "agent", "9031ef2f5f5975a7e7c3dbf66231e7c89e0b097e443e82480e4265ac03f160d0"),
    ("angluin", 24, 0, "agent", "2b89b4add69decaa5cb1ce0f555ef52d4f06cfa982f1cba64f6c6e99b5e80c10"),
    ("angluin", 24, 1, "multiset", "e7e64675722ac4d62c82a805585aad97aef099268dbf61c9143d9a9b82ac3e2f"),
    ("pll", 64, 0, "multiset", "d6a1d72586450b4d90b9af62f2a7f618656d0383e0e71bae6a8c4075c7ad8d1c"),
    ("pll", 256, 0, "batch", "7f4405a8297491412e7e7f2ac84dcd8e7afbdae60494418c10ed5570e68e6596"),
    ("pll", 256, 2, "superbatch", "a0af4d2e9d15987feed5f35fc3915252f9185ec208679ca8037c9b28e3baace1"),
    ("pll", 1000000, 0, "superbatch", "de168ad1a1d9dd51aa3370fd7a9597a13d37124350fdaa4971702bf6b90370cf"),
]

PINNED_WITH_PARAMS = (
    "9264bd608de717cd994087e74d07c45625571d0d7a5f24e0a2d32fb45fbfa736"
)

PLAN = FaultPlan.create([{"kind": "corrupt", "at_step": 48, "count": 2}])


class TestCleanSpecHashes:
    def test_pre_fault_hashes_unchanged(self):
        for protocol, n, seed, engine, expected in PINNED:
            spec = TrialSpec.create(protocol, n, seed, engine=engine)
            assert spec.content_hash() == expected, (protocol, n, seed, engine)

    def test_params_spec_hash_unchanged(self):
        spec = TrialSpec.create(
            "pll",
            128,
            3,
            engine="multiset",
            params={"variant": "no-backup"},
            max_steps=500000,
        )
        assert spec.content_hash() == PINNED_WITH_PARAMS

    def test_canonical_form_has_no_faults_key(self):
        canonical = TrialSpec.create("pll", 64, 0, engine="multiset").canonical()
        assert "faults" not in canonical


class TestFaultedSpecIdentity:
    def test_plan_enters_the_canonical_form(self):
        spec = TrialSpec.create(
            "pll", 64, 0, engine="multiset", fault_plan=PLAN
        )
        assert spec.canonical()["faults"] == PLAN.canonical()

    def test_faulted_hash_differs_from_clean(self):
        clean = TrialSpec.create("pll", 64, 0, engine="multiset")
        faulted = TrialSpec.create(
            "pll", 64, 0, engine="multiset", fault_plan=PLAN
        )
        assert clean.content_hash() != faulted.content_hash()

    def test_equivalent_plans_hash_identically(self):
        from_plan = TrialSpec.create(
            "pll", 64, 0, engine="multiset", fault_plan=PLAN
        )
        from_mappings = TrialSpec.create(
            "pll",
            64,
            0,
            engine="multiset",
            fault_plan=[{"kind": "corrupt", "at_step": 48, "count": 2}],
        )
        assert from_plan.content_hash() == from_mappings.content_hash()

    def test_spec_json_round_trip_preserves_plan(self):
        spec = TrialSpec.create(
            "pll", 64, 0, engine="multiset", fault_plan=PLAN
        )
        restored = TrialSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()


class TestStoreRowNeutrality:
    def test_clean_rows_carry_no_fault_record(self):
        specs = [TrialSpec.create("angluin", 24, seed) for seed in range(2)]
        with TrialStore(":memory:") as store:
            run_specs(specs, store=store)
            rows = list(store.rows())
        assert all(row["faults"] is None for row in rows)

    def test_faulted_rows_carry_the_record(self):
        spec = TrialSpec.create(
            "angluin",
            24,
            0,
            engine="multiset",
            fault_plan=[{"kind": "churn", "at_step": 48, "count": 3}],
        )
        with TrialStore(":memory:") as store:
            run_specs([spec], store=store)
            (row,) = store.rows()
        record = json.loads(row["faults"])
        assert record["plan"] == spec.fault_plan.canonical()
        assert len(record["events"]) == 1
