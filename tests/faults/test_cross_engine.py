"""Cross-engine faithfulness of faulted runs.

The count-level fault path (multivariate hypergeometric on the count
vector) and the per-agent path realize the same distributions, and the
segment driver measures recovery exactly to the interaction on every
engine — so recovery-time distributions must agree across multiset,
batch and superbatch.  Engines use different RNG consumption patterns,
so agreement is distributional (two-sample KS), not per-seed equality.
"""

import json

import pytest

from repro.faults.plan import FaultPlan
from repro.orchestration.pool import measure_trial
from repro.orchestration.registry import build_protocol
from repro.orchestration.spec import trial_specs

ENGINES = ("multiset", "batch", "superbatch")
SEEDS = 25
#: Per-pair significance for the KS agreement check.  With 3 engine
#: pairs per protocol a true-null failure is ~3 * alpha; 0.005 keeps
#: the suite's flake budget tiny while a wrong-distribution bug (e.g.
#: off-by-one segment accounting) drives p to ~0 at these sample sizes.
ALPHA = 0.005


def corrupt_plan(n):
    return FaultPlan.create(
        [{"kind": "corrupt", "at_step": 2 * n, "count": n // 8}]
    )


def recovery_samples(protocol_name, n, engine, seeds):
    plan = corrupt_plan(n)
    samples = []
    for seed in range(seeds):
        outcome = measure_trial(
            build_protocol(protocol_name, n),
            n,
            seed,
            engine=engine,
            fault_plan=plan,
        )
        (event,) = json.loads(outcome.faults)["events"]
        assert event["recovery_steps"] is not None
        samples.append(event["recovery_steps"])
    return samples


class TestRecoveryDistributionsAgree:
    @pytest.mark.parametrize("protocol_name", ["pll", "angluin"])
    def test_ks_agreement_across_count_engines(self, protocol_name):
        stats = pytest.importorskip("scipy.stats")
        n = 256
        samples = {
            engine: recovery_samples(protocol_name, n, engine, SEEDS)
            for engine in ENGINES
        }
        for i, first in enumerate(ENGINES):
            for second in ENGINES[i + 1 :]:
                result = stats.ks_2samp(samples[first], samples[second])
                assert result.pvalue > ALPHA, (
                    f"{protocol_name}: recovery-time distributions diverge "
                    f"between {first} and {second} (p={result.pvalue:.2e})"
                )


class TestDegradationRouting:
    def test_auto_resolves_to_agent_for_non_exchangeable_plans(self):
        plan = [
            {
                "kind": "partition",
                "at_step": 100,
                "count": 8,
                "duration": 200,
            }
        ]
        specs = trial_specs(
            "pll", 64, trials=2, engine="auto", fault_plan=plan
        )
        assert all(spec.engine == "agent" for spec in specs)

    def test_auto_keeps_count_engine_for_exchangeable_plans(self):
        specs = trial_specs(
            "pll",
            64,
            trials=1,
            engine="auto",
            fault_plan=[{"kind": "corrupt", "at_step": 100, "count": 4}],
        )
        assert all(spec.engine != "agent" for spec in specs)

    def test_degraded_from_recorded_in_fault_record(self, monkeypatch):
        """A non-exchangeable plan forced onto the agent engine records
        the engine `auto` would have picked, so the store row explains
        why a production-scale spec ran per-agent.  default_engine is
        monkeypatched so the check doesn't need a BATCH_ENGINE_MIN_N
        population."""
        import repro.orchestration.pool as pool

        monkeypatch.setattr(pool, "default_engine", lambda n: "batch")
        plan = FaultPlan.create(
            [{"kind": "corrupt", "at_step": 100, "agents": [1, 5]}]
        )
        outcome = measure_trial(
            build_protocol("angluin", 32),
            32,
            0,
            engine="agent",
            fault_plan=plan,
        )
        assert json.loads(outcome.faults)["degraded_from"] == "batch"

    def test_no_degradation_note_when_agent_is_the_natural_pick(self, monkeypatch):
        import repro.orchestration.pool as pool

        monkeypatch.setattr(pool, "default_engine", lambda n: "agent")
        plan = FaultPlan.create(
            [{"kind": "corrupt", "at_step": 100, "agents": [1, 5]}]
        )
        outcome = measure_trial(
            build_protocol("angluin", 32),
            32,
            0,
            engine="agent",
            fault_plan=plan,
        )
        assert "degraded_from" not in json.loads(outcome.faults)
