"""In-trial checkpoint/resume: kill a trial mid-run, resume bit-identically."""

import pickle

import pytest

from repro.faults.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_SECS_ENV,
    DEFAULT_CHECKPOINT_DIR,
    TrialCheckpointer,
    checkpoint_dir,
    make_checkpointer,
    sweep_orphans,
)
from repro.orchestration.pool import execute_trial
from repro.orchestration.spec import TrialSpec


class SimulatedKill(BaseException):
    """Out-of-band interruption (not Exception, so no retry machinery
    or except-clause in the engine loop can swallow it — like SIGKILL,
    minus the process teardown)."""


def spec_for(tmp_path, engine="batch", fault_plan=None, seed=0):
    return TrialSpec.create(
        "pll", 256, seed, engine=engine, fault_plan=fault_plan
    )


def enable(monkeypatch, tmp_path):
    monkeypatch.setenv(CHECKPOINT_SECS_ENV, "0")
    monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))


class TestGating:
    def test_disabled_without_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CHECKPOINT_SECS_ENV, raising=False)
        assert make_checkpointer(spec_for(tmp_path)) is None

    def test_disabled_for_invalid_interval(self, monkeypatch, tmp_path):
        enable(monkeypatch, tmp_path)
        monkeypatch.setenv(CHECKPOINT_SECS_ENV, "soon")
        assert make_checkpointer(spec_for(tmp_path)) is None

    @pytest.mark.parametrize("engine", ["agent", "multiset"])
    def test_disabled_for_per_interaction_engines(
        self, monkeypatch, tmp_path, engine
    ):
        enable(monkeypatch, tmp_path)
        assert make_checkpointer(spec_for(tmp_path, engine=engine)) is None

    @pytest.mark.parametrize("engine", ["batch", "superbatch"])
    def test_enabled_for_block_engines(self, monkeypatch, tmp_path, engine):
        enable(monkeypatch, tmp_path)
        spec = spec_for(tmp_path, engine=engine)
        checkpointer = make_checkpointer(spec)
        assert checkpointer is not None
        assert checkpointer.path.name == f"{spec.content_hash()}.ckpt"
        assert checkpointer.path.parent == tmp_path


class TestKillAndResume:
    @pytest.mark.parametrize("fault_plan", [None, [
        {"kind": "corrupt", "at_step": 512, "count": 32},
        {"kind": "churn", "at_step": 2048, "count": 16},
    ]])
    def test_resumed_outcome_is_bit_identical(
        self, monkeypatch, tmp_path, fault_plan
    ):
        spec = spec_for(tmp_path, fault_plan=fault_plan)
        baseline = execute_trial(spec)

        enable(monkeypatch, tmp_path)
        original_save = TrialCheckpointer.save
        state = {"saves": 0}

        def killing_save(self, sim):
            original_save(self, sim)
            state["saves"] += 1
            if state["saves"] == 2:
                raise SimulatedKill

        monkeypatch.setattr(TrialCheckpointer, "save", killing_save)
        with pytest.raises(SimulatedKill):
            execute_trial(spec)
        checkpoint = tmp_path / f"{spec.content_hash()}.ckpt"
        assert checkpoint.exists()

        monkeypatch.setattr(TrialCheckpointer, "save", original_save)
        resumed = execute_trial(spec)
        assert resumed.steps == baseline.steps
        assert resumed.leader_count == baseline.leader_count
        assert resumed.faults == baseline.faults
        # The snapshot never outlives its trial.
        assert not checkpoint.exists()

    def test_faulted_resume_does_not_replay_applied_events(
        self, monkeypatch, tmp_path
    ):
        """Kill after the fault fired: the resumed run restores the
        injector cursor, so the event applies exactly once."""
        plan = [{"kind": "corrupt", "at_step": 256, "count": 32}]
        spec = spec_for(tmp_path, fault_plan=plan)
        baseline = execute_trial(spec)

        enable(monkeypatch, tmp_path)
        original_save = TrialCheckpointer.save

        def killing_save(self, sim):
            original_save(self, sim)
            if sim.steps > 256:
                raise SimulatedKill

        monkeypatch.setattr(TrialCheckpointer, "save", killing_save)
        with pytest.raises(SimulatedKill):
            execute_trial(spec)
        payload = pickle.loads(
            (tmp_path / f"{spec.content_hash()}.ckpt").read_bytes()
        )
        assert payload["injector"]["next_event"] == 1

        monkeypatch.setattr(TrialCheckpointer, "save", original_save)
        resumed = execute_trial(spec)
        assert resumed.faults == baseline.faults


class TestSnapshotHygiene:
    def test_corrupt_file_is_discarded_and_cleared(self, tmp_path):
        path = tmp_path / "broken.ckpt"
        path.write_bytes(b"not a pickle")
        checkpointer = TrialCheckpointer(path, 0)
        assert checkpointer.load() is None
        assert not path.exists()

    def test_stale_version_is_discarded(self, tmp_path):
        path = tmp_path / "stale.ckpt"
        path.write_bytes(pickle.dumps({"version": -1}))
        checkpointer = TrialCheckpointer(path, 0)
        assert checkpointer.load() is None
        assert not path.exists()

    def test_engine_mismatch_refuses_restore(self, monkeypatch, tmp_path):
        enable(monkeypatch, tmp_path)
        batch_spec = spec_for(tmp_path, engine="batch")
        checkpointer = make_checkpointer(batch_spec)

        class FakeSim:
            ENGINE_NAME = "superbatch"

        checkpointer.path.write_bytes(
            pickle.dumps({"version": 1, "engine": "batch", "sim": {}, "injector": None})
        )
        assert checkpointer.restore(FakeSim()) is False


class TestSweepOrphans:
    """``repro store gc``: checkpoint files whose trial already
    completed are garbage; in-flight ones must survive the sweep."""

    def test_completed_hashes_are_swept(self, tmp_path):
        done = tmp_path / "aaaa.ckpt"
        live = tmp_path / "bbbb.ckpt"
        done.write_bytes(b"snapshot")
        live.write_bytes(b"snapshot")
        removed = sweep_orphans({"aaaa"}, tmp_path)
        assert removed == [done]
        assert not done.exists()
        assert live.exists()

    def test_interrupted_tmp_droppings_always_swept(self, tmp_path):
        dropping = tmp_path / "cccc.ckpt12345.tmp"
        dropping.write_bytes(b"partial")
        assert sweep_orphans(set(), tmp_path) == [dropping]
        assert not dropping.exists()

    def test_unrelated_files_survive(self, tmp_path):
        other = tmp_path / "notes.txt"
        other.write_text("keep me")
        assert sweep_orphans({"notes"}, tmp_path) == []
        assert other.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert sweep_orphans({"aaaa"}, tmp_path / "absent") == []

    def test_env_names_the_default_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))
        assert checkpoint_dir() == tmp_path
        orphan = tmp_path / "dddd.ckpt"
        orphan.write_bytes(b"snapshot")
        assert sweep_orphans({"dddd"}) == [orphan]

    def test_default_directory_without_env(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        assert str(checkpoint_dir()) == DEFAULT_CHECKPOINT_DIR
