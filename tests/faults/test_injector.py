"""FaultInjector unit behavior: event application, RNG isolation, records."""

import json
from collections import Counter

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.orchestration.pool import build_simulator
from repro.orchestration.registry import build_protocol


def simulator(engine, protocol="pll", n=64, seed=0):
    return build_simulator(build_protocol(protocol, n), n, seed=seed, engine=engine)


def plan_of(*events):
    return FaultPlan.create(list(events))


class TestCountLevelApplication:
    @pytest.mark.parametrize("engine", ["multiset", "batch", "superbatch"])
    def test_corrupt_conserves_population(self, engine):
        sim = simulator(engine)
        sim.run(200)
        before = Counter(sim.state_counts())
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 200, "count": 8}), 64, 0
        )
        injector._apply(sim, injector.plan.events[0], 0)
        after = Counter(sim.state_counts())
        assert sum(after.values()) == sum(before.values()) == 64
        # Replacements are drawn from the states that were present.
        assert set(after) <= set(before)

    @pytest.mark.parametrize("engine", ["multiset", "batch", "superbatch"])
    def test_churn_moves_victims_to_initial_state(self, engine):
        sim = simulator(engine)
        sim.run(500)
        initial = sim.protocol.initial_state()
        before = Counter(sim.state_counts())
        injector = FaultInjector(
            plan_of({"kind": "churn", "at_step": 500, "count": 8}), 64, 0
        )
        injector._apply(sim, injector.plan.events[0], 0)
        after = Counter(sim.state_counts())
        assert sum(after.values()) == 64
        # Fresh joiners all land on the initial state; leavers came from
        # the pre-fault population, so every other count can only drop.
        assert after[initial] >= 8
        assert all(
            after[state] <= count
            for state, count in before.items()
            if state != initial
        )

    def test_corrupt_changes_at_most_count_agents(self):
        sim = simulator("multiset")
        sim.run(200)
        before = Counter(sim.state_counts())
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 200, "count": 4}), 64, 0
        )
        injector._apply(sim, injector.plan.events[0], 0)
        after = Counter(sim.state_counts())
        moved = sum((before - after).values())
        assert moved <= 4


class TestAgentLevelApplication:
    def test_targeted_corrupt_touches_only_targets(self):
        sim = simulator("agent")
        sim.run(200)
        before = sim.configuration()
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 200, "agents": [3, 7]}), 64, 0
        )
        injector._apply(sim, injector.plan.events[0], 0)
        after = sim.configuration()
        unchanged = [i for i in range(64) if i not in (3, 7)]
        assert [before[i] for i in unchanged] == [after[i] for i in unchanged]

    def test_partition_needs_scheduler_support(self):
        sim = simulator("multiset")
        sim.run(100)
        injector = FaultInjector(
            plan_of(
                {"kind": "partition", "at_step": 100, "count": 4, "duration": 50}
            ),
            64,
            0,
        )
        with pytest.raises(SimulationError, match="per-agent engine"):
            injector._apply(sim, injector.plan.events[0], 0)

    def test_partition_runs_clique_then_heals(self):
        sim = simulator("agent")
        sim.run(100)
        injector = FaultInjector(
            plan_of(
                {"kind": "partition", "at_step": 100, "count": 4, "duration": 80}
            ),
            64,
            0,
        )
        injector._apply(sim, injector.plan.events[0], 0)
        # The partition window ran inside the application.
        assert sim.steps == 180
        sim.run_until_stabilized()
        assert sim.leader_count == 1


class TestRngIsolation:
    def test_fault_draws_never_touch_the_engine_stream(self):
        """A clean run and a faulted run agree step-for-step before the
        fault: the injector draws from its own spawned stream."""
        clean = simulator("multiset", seed=3)
        clean.run(400)
        faulted = simulator("multiset", seed=3)
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 400, "count": 4}), 64, 3
        )
        faulted.run(400)
        assert Counter(faulted.state_counts()) == Counter(clean.state_counts())

    def test_same_seed_same_fault_draws(self):
        draws = []
        for _ in range(2):
            sim = simulator("multiset", seed=5)
            sim.run(300)
            injector = FaultInjector(
                plan_of({"kind": "corrupt", "at_step": 300, "count": 6}), 64, 5
            )
            injector._apply(sim, injector.plan.events[0], 0)
            draws.append(Counter(sim.state_counts()))
        assert draws[0] == draws[1]

    def test_event_index_separates_streams(self):
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 300, "count": 6}), 64, 5
        )
        first = injector._event_rng(0).integers(0, 2**31, size=4)
        second = injector._event_rng(1).integers(0, 2**31, size=4)
        assert not np.array_equal(first, second)


class TestDriveAndRecords:
    @pytest.mark.parametrize("engine", ["multiset", "batch", "superbatch", "agent"])
    def test_drive_records_recovery(self, engine):
        n = 128
        sim = build_simulator(
            build_protocol("pll", n), n, seed=1, engine=engine
        )
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 2 * n, "count": 32}), n, 1
        )
        steps = injector.drive(sim)
        assert steps == sim.steps
        assert sim.leader_count == 1
        (record,) = injector.records
        assert record["step"] == 2 * n
        assert record["recovery_steps"] is not None
        assert 0 <= record["recovery_steps"] <= steps - 2 * n

    def test_faults_json_shape(self):
        n = 64
        sim = simulator("multiset", n=n, seed=2)
        injector = FaultInjector(
            plan_of(
                {"kind": "corrupt", "at_step": 100, "count": 4},
                {"kind": "churn", "at_step": 300, "count": 4},
            ),
            n,
            2,
        )
        injector.drive(sim)
        payload = json.loads(injector.to_json())
        assert payload["version"] == 1
        assert payload["plan"] == injector.plan.canonical()
        assert [event["kind"] for event in payload["events"]] == [
            "corrupt",
            "churn",
        ]
        for event in payload["events"]:
            assert event["exchangeable"] is True
            if event["recovery_steps"] is not None:
                assert event["recovery_parallel_time"] == (
                    event["recovery_steps"] / n
                )
        assert "degraded_from" not in payload
        assert json.loads(injector.to_json("batch"))["degraded_from"] == "batch"

    def test_state_dict_round_trip(self):
        n = 64
        sim = simulator("multiset", n=n, seed=2)
        injector = FaultInjector(
            plan_of({"kind": "corrupt", "at_step": 100, "count": 4}), n, 2
        )
        injector.drive(sim)
        clone = FaultInjector(injector.plan, n, 2)
        clone.load_state(injector.state_dict())
        assert clone.records == injector.records
        assert clone._next_event == injector._next_event
