"""FaultPlan / FaultEvent validation and engine resolution."""

import pytest

from repro.errors import ExperimentError
from repro.faults.plan import FaultEvent, FaultPlan, resolve_engine


def corrupt(at_step=100, count=4, **kwargs):
    return FaultEvent(kind="corrupt", at_step=at_step, count=count, **kwargs)


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown kind"):
            FaultPlan.create([{"kind": "meteor", "at_step": 10, "count": 1}])

    def test_negative_step_rejected(self):
        with pytest.raises(ExperimentError, match="negative step"):
            FaultPlan.create([corrupt(at_step=-1)])

    def test_zero_count_rejected(self):
        with pytest.raises(ExperimentError, match="at least 1"):
            FaultPlan.create([corrupt(count=0)])

    def test_agents_only_for_corrupt(self):
        with pytest.raises(ExperimentError, match="only meaningful for 'corrupt'"):
            FaultPlan.create(
                [FaultEvent(kind="churn", at_step=10, agents=(1, 2))]
            )

    def test_duplicate_agents_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            FaultPlan.create([corrupt(count=0, agents=(3, 3))])

    def test_partition_needs_duration(self):
        with pytest.raises(ExperimentError, match="positive duration"):
            FaultPlan.create([{"kind": "partition", "at_step": 10, "count": 4}])

    def test_partition_needs_two_members(self):
        with pytest.raises(ExperimentError, match="at least 2 members"):
            FaultPlan.create(
                [{"kind": "partition", "at_step": 10, "count": 1, "duration": 50}]
            )

    def test_duration_only_for_partition(self):
        with pytest.raises(ExperimentError, match="only meaningful for"):
            FaultPlan.create([corrupt(duration=10)])

    def test_unknown_mapping_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fields"):
            FaultPlan.create([{"kind": "corrupt", "at_step": 1, "amount": 3}])


class TestPlanValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(ExperimentError, match="at least one event"):
            FaultPlan(events=())

    def test_events_must_strictly_increase(self):
        with pytest.raises(ExperimentError, match="not after"):
            FaultPlan.create([corrupt(at_step=50), corrupt(at_step=50)])

    def test_event_inside_partition_window_rejected(self):
        with pytest.raises(ExperimentError, match="not after"):
            FaultPlan.create(
                [
                    {
                        "kind": "partition",
                        "at_step": 10,
                        "count": 4,
                        "duration": 100,
                    },
                    corrupt(at_step=60),
                ]
            )

    def test_event_after_partition_heal_accepted(self):
        plan = FaultPlan.create(
            [
                {"kind": "partition", "at_step": 10, "count": 4, "duration": 50},
                corrupt(at_step=100),
            ]
        )
        assert len(plan) == 2

    def test_validate_against_population(self):
        plan = FaultPlan.create([corrupt(count=10)])
        plan.validate_against(16, None)
        with pytest.raises(ExperimentError, match="population"):
            plan.validate_against(8, None)

    def test_validate_against_targets_out_of_range(self):
        plan = FaultPlan.create([corrupt(count=0, agents=(0, 9))])
        with pytest.raises(ExperimentError, match="outside"):
            plan.validate_against(8, None)

    def test_validate_against_budget(self):
        plan = FaultPlan.create([corrupt(at_step=100)])
        plan.validate_against(16, 101)
        with pytest.raises(ExperimentError, match="beyond the max_steps"):
            plan.validate_against(16, 100)


class TestExchangeability:
    def test_uniform_corrupt_and_churn_are_exchangeable(self):
        plan = FaultPlan.create(
            [corrupt(at_step=10), {"kind": "churn", "at_step": 20, "count": 2}]
        )
        assert plan.exchangeable

    def test_targeted_corrupt_is_not(self):
        plan = FaultPlan.create([corrupt(count=0, agents=(1, 2))])
        assert not plan.exchangeable

    def test_partition_is_not(self):
        plan = FaultPlan.create(
            [{"kind": "partition", "at_step": 10, "count": 4, "duration": 50}]
        )
        assert not plan.exchangeable

    def test_resolve_engine(self):
        exchangeable = FaultPlan.create([corrupt()])
        targeted = FaultPlan.create([corrupt(count=0, agents=(0,))])
        assert resolve_engine(None, "superbatch") == "superbatch"
        assert resolve_engine(exchangeable, "superbatch") == "superbatch"
        assert resolve_engine(targeted, "superbatch") == "agent"


class TestCanonicalForm:
    def test_round_trips_through_mappings(self):
        plan = FaultPlan.create(
            [
                corrupt(at_step=10, count=3),
                {"kind": "partition", "at_step": 50, "count": 4, "duration": 25},
                {"kind": "churn", "at_step": 100, "count": 2},
            ]
        )
        assert FaultPlan.create(plan.canonical()) == plan

    def test_optionals_omitted(self):
        (event,) = FaultPlan.create([corrupt()]).canonical()
        assert "agents" not in event
        assert "duration" not in event

    def test_coerce(self):
        plan = FaultPlan.create([corrupt()])
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce([corrupt()]) == plan
