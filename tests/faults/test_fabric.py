"""Campaign fabric: retries, quarantine, timeouts, and the failure ledger."""

import time

import pytest

from repro.errors import ConvergenceError
from repro.experiments.campaigns import canary_specs
from repro.orchestration import pool
from repro.orchestration.pool import RunReport, _ensemble_groups, run_specs
from repro.orchestration.spec import TrialSpec
from repro.orchestration.store import TrialStore


def doomed_spec(seed=0):
    """A deterministic convergence failure: a 10-step budget cannot
    stabilize any population."""
    return TrialSpec.create("angluin", 16, seed, max_steps=10)


def good_specs(count=3):
    return [TrialSpec.create("angluin", 16, seed) for seed in range(count)]


class TestQuarantine:
    def test_deterministic_failure_is_retried_then_quarantined(self):
        specs = good_specs(2) + [doomed_spec()]
        with TrialStore(":memory:") as store:
            report = run_specs(
                specs,
                store=store,
                retries=2,
                on_failure="quarantine",
                retry_backoff=0,
            )
            (failure,) = store.failures()
        assert isinstance(report, RunReport)
        assert report.failed == 1
        assert report.quarantined == 1
        assert report.retried == 1
        assert report.executed == 2
        assert report.outcomes[2] is None
        assert all(outcome is not None for outcome in report.outcomes[:2])
        # Initial attempt + 2 retry rounds.
        assert failure["attempts"] == 3
        assert failure["quarantined"]
        assert "did not stabilize" in failure["error"]

    def test_raise_mode_still_raises(self):
        with pytest.raises(ConvergenceError):
            run_specs([doomed_spec()])

    def test_completed_trials_persist_around_the_poison_spec(self):
        """Worker failures never abort the campaign: jobs>1 + quarantine
        completes, and every good trial's row lands in the store."""
        specs = [doomed_spec()] + good_specs(3)
        with TrialStore(":memory:") as store:
            report = run_specs(
                specs, jobs=2, store=store, on_failure="quarantine"
            )
            rows = list(store.rows())
            failures = store.failures()
        assert report.failed == 1
        assert report.executed == 3
        assert len(rows) == 3
        assert len(failures) == 1


class TestRetries:
    def test_flaky_trial_recovers_on_retry(self, monkeypatch):
        state = {"calls": 0}
        original = pool.execute_trial

        def flaky(spec):
            state["calls"] += 1
            if state["calls"] == 1:
                raise OSError("transient worker hiccup")
            return original(spec)

        monkeypatch.setattr(pool, "execute_trial", flaky)
        report = run_specs(
            [TrialSpec.create("angluin", 16, 0)],
            retries=1,
            retry_backoff=0,
            ensemble_lanes=None,
        )
        assert report.failed == 0
        assert report.retried == 1
        assert report.outcomes[0] is not None

    def test_backoff_grows_exponentially(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        with TrialStore(":memory:") as store:
            run_specs(
                [doomed_spec()],
                store=store,
                retries=3,
                on_failure="quarantine",
                retry_backoff=0.25,
            )
        assert sleeps == [0.25, 0.5, 1.0]


class TestTimeout:
    def test_slow_trial_lands_in_the_ledger_as_timeout(self, monkeypatch):
        def stuck(spec):
            time.sleep(5)
            raise AssertionError("the alarm should have fired")

        monkeypatch.setattr(pool, "execute_trial", stuck)
        with TrialStore(":memory:") as store:
            report = run_specs(
                [TrialSpec.create("angluin", 16, 0)],
                store=store,
                trial_timeout=0.05,
                on_failure="quarantine",
                ensemble_lanes=None,
            )
            (failure,) = store.failures()
        assert report.failed == 1
        assert "wall-clock timeout" in failure["error"]


class TestLedgerHygiene:
    def test_success_clears_the_stale_entry(self):
        spec = TrialSpec.create("angluin", 16, 0)
        with TrialStore(":memory:") as store:
            store.record_failure(spec, attempts=1, error="an earlier run died")
            assert store.failures()
            run_specs([spec], store=store)
            assert store.failures() == []


class TestFaultedSpecsNeverPack:
    def test_ensemble_groups_skip_faulted_multiset_specs(self):
        plan = [{"kind": "corrupt", "at_step": 100, "count": 4}]
        faulted = [
            (seed, TrialSpec.create(
                "pll", 64, seed, engine="multiset", fault_plan=plan
            ))
            for seed in range(8)
        ]
        clean = [
            (seed, TrialSpec.create("pll", 64, seed, engine="multiset"))
            for seed in range(8)
        ]
        assert _ensemble_groups(faulted, 2) == []
        assert len(_ensemble_groups(clean, 2)) == 1


class TestCanary:
    def test_canary_spec_fails_deterministically(self):
        """The EROB canary scrambles the whole population 88 steps before
        the budget: it must fail, every run — that is what keeps the
        quarantine path exercised by every robustness campaign."""
        (spec,) = canary_specs(seed=1)
        with pytest.raises(ConvergenceError):
            pool.execute_trial(spec)
