"""Smoke tests for the machine-readable benchmark harness.

``benchmarks/report.py`` is the scriptable producer of
``BENCH_engine.json`` (CI runs it with ``--quick --check``); these tests
exercise its measurement, summary, and gate logic at toy scale so a
harness regression fails in the tier-1 suite rather than only in the CI
benchmark job.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
)


@pytest.fixture(scope="module")
def report():
    spec = importlib.util.spec_from_file_location("bench_report", REPORT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def tiny_results(report):
    return [
        report.measure_engine(engine, "angluin", 64, 2000)
        for engine in ("agent", "multiset", "batch")
    ]


class TestMeasurement:
    def test_measure_engine_reports_throughput_and_cache(self, report):
        row = report.measure_engine("batch", "angluin", 64, 2000)
        assert row["engine"] == "batch"
        assert row["steps"] == 2000
        assert row["steps_per_sec"] > 0
        assert 0.0 <= row["cache"]["hit_rate"] <= 1.0
        assert row["cache"]["hits"] + row["cache"]["misses"] >= 0

    def test_summary_contains_cross_engine_ratios(self, report):
        summary = report.summarize(tiny_results(report))
        entry = summary["angluin/n=64"]
        assert set(entry) >= {
            "agent",
            "multiset",
            "batch",
            "batch_vs_multiset",
            "batch_vs_agent",
        }
        assert entry["batch_vs_multiset"] == pytest.approx(
            entry["batch"] / entry["multiset"]
        )


class TestCheckGate:
    def fake_report(self, batch_rate, multiset_rate, n=64):
        results = [
            {"engine": "batch", "protocol": "pll", "n": n,
             "steps_per_sec": batch_rate},
            {"engine": "multiset", "protocol": "pll", "n": n,
             "steps_per_sec": multiset_rate},
        ]
        return {"results": results, "summary": {
            f"pll/n={n}": {"batch_vs_multiset": batch_rate / multiset_rate}
        }}

    def test_passes_when_batch_is_faster(self, report):
        assert report.check_batch_speedup(
            self.fake_report(200.0, 100.0), min_ratio=1.0
        ) is None

    def test_fails_when_batch_is_slower(self, report):
        error = report.check_batch_speedup(
            self.fake_report(90.0, 100.0), min_ratio=1.0
        )
        assert error is not None and "0.90x" in error

    def test_grades_the_largest_n(self, report):
        doctored = self.fake_report(200.0, 100.0, n=64)
        doctored["results"] += self.fake_report(50.0, 100.0, n=1024)["results"]
        doctored["summary"]["pll/n=1024"] = {"batch_vs_multiset": 0.5}
        assert report.check_batch_speedup(doctored, 1.0) is not None


class TestEndToEnd:
    def test_main_writes_json_artifact(self, report, tmp_path, monkeypatch):
        # Shrink the quick grid so the smoke test stays in tier-1 budget.
        monkeypatch.setattr(
            report, "QUICK_GRID", (("angluin", (64,)),)
        )
        monkeypatch.setattr(report, "QUICK_STEPS", 2000)
        out = tmp_path / "BENCH_engine.json"
        # No --check here: the toy angluin/n=64 cell is below the batch
        # engine's regime; the gate logic is covered by TestCheckGate.
        assert report.main(["--quick", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench-engine/1"
        assert payload["quick"] is True
        assert len(payload["results"]) == 3  # three engines, one cell
        engines = {row["engine"] for row in payload["results"]}
        assert engines == {"agent", "multiset", "batch"}
