"""Smoke tests for the machine-readable benchmark harness.

``benchmarks/report.py`` is the scriptable producer of
``BENCH_engine.json`` (CI runs it with ``--quick --check``); these tests
exercise its measurement, summary, and gate logic at toy scale so a
harness regression fails in the tier-1 suite rather than only in the CI
benchmark job.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
)


@pytest.fixture(scope="module")
def report():
    spec = importlib.util.spec_from_file_location("bench_report", REPORT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def tiny_results(report):
    return [
        report.measure_engine(engine, "angluin", 64, 2000)
        for engine in ("agent", "multiset", "batch")
    ]


class TestMeasurement:
    def test_measure_engine_reports_throughput_and_cache(self, report):
        row = report.measure_engine("batch", "angluin", 64, 2000)
        assert row["engine"] == "batch"
        assert row["steps"] == 2000
        assert row["steps_per_sec"] > 0
        assert 0.0 <= row["cache"]["hit_rate"] <= 1.0
        assert row["cache"]["hits"] + row["cache"]["misses"] >= 0

    def test_summary_contains_cross_engine_ratios(self, report):
        summary = report.summarize(tiny_results(report))
        entry = summary["angluin/n=64"]
        assert set(entry) >= {
            "agent",
            "multiset",
            "batch",
            "batch_vs_multiset",
            "batch_vs_agent",
        }
        assert entry["batch_vs_multiset"] == pytest.approx(
            entry["batch"] / entry["multiset"]
        )


class TestCheckGate:
    def fake_report(self, batch_rate, multiset_rate, n=64):
        results = [
            {"engine": "batch", "protocol": "pll", "n": n,
             "steps_per_sec": batch_rate},
            {"engine": "multiset", "protocol": "pll", "n": n,
             "steps_per_sec": multiset_rate},
        ]
        return {"results": results, "summary": {
            f"pll/n={n}": {"batch_vs_multiset": batch_rate / multiset_rate}
        }}

    def test_passes_when_batch_is_faster(self, report):
        assert report.check_batch_speedup(
            self.fake_report(200.0, 100.0), min_ratio=1.0
        ) is None

    def test_fails_when_batch_is_slower(self, report):
        error = report.check_batch_speedup(
            self.fake_report(90.0, 100.0), min_ratio=1.0
        )
        assert error is not None and "0.90x" in error

    def test_grades_the_largest_n(self, report):
        doctored = self.fake_report(200.0, 100.0, n=64)
        doctored["results"] += self.fake_report(50.0, 100.0, n=1024)["results"]
        doctored["summary"]["pll/n=1024"] = {"batch_vs_multiset": 0.5}
        assert report.check_batch_speedup(doctored, 1.0) is not None


class TestTrialsSection:
    def tiny_cell(self, report):
        return report.measure_trials_cell(
            protocol_name="angluin", n=32, trials=6, jobs=1
        )

    def test_measures_every_execution_strategy(self, report):
        section = self.tiny_cell(report)
        modes = {(row["mode"], row["engine"]) for row in section["results"]}
        assert modes == {
            ("pool", "multiset"),
            ("pool", "agent"),
            ("ensemble", "multiset"),
        }
        assert all(row["trials_per_sec"] > 0 for row in section["results"])
        assert section["cell"] == {"protocol": "angluin", "n": 32, "trials": 6}

    def test_ensemble_and_pool_simulate_the_same_chain(self, report):
        # The gate is an execution-strategy comparison, so both rows must
        # have executed identical per-seed trials: same total steps.
        section = self.tiny_cell(report)
        steps = {
            (row["mode"], row["engine"]): row["total_steps"]
            for row in section["results"]
        }
        assert steps[("ensemble", "multiset")] == steps[("pool", "multiset")]

    def test_ratio_matches_the_rows(self, report):
        section = self.tiny_cell(report)
        rates = {
            (row["mode"], row["engine"]): row["trials_per_sec"]
            for row in section["results"]
        }
        assert section["ensemble_vs_pool"] == pytest.approx(
            rates[("ensemble", "multiset")] / rates[("pool", "multiset")]
        )


class TestTrialsCheckGate:
    def test_passes_when_ensemble_is_faster(self, report):
        fake = {"trials": {"cell": {}, "ensemble_vs_pool": 6.0}}
        assert report.check_ensemble_speedup(fake, min_ratio=5.0) is None

    def test_fails_when_ensemble_is_slower(self, report):
        fake = {
            "trials": {
                "cell": {"protocol": "pll", "n": 4096, "trials": 64},
                "ensemble_vs_pool": 0.8,
            }
        }
        error = report.check_ensemble_speedup(fake, min_ratio=1.0)
        assert error is not None and "0.80x" in error

    def test_tolerates_v1_reports_without_the_section(self, report):
        # Old consumers (and old artifacts) have no trials section; the
        # gate reports that as its own failure instead of crashing.
        v1 = {"schema": "repro-bench-engine/1", "results": []}
        error = report.check_ensemble_speedup(v1, min_ratio=1.0)
        assert error is not None and "no trials section" in error


class TestEndToEnd:
    def test_main_writes_v1_json_without_trials(self, report, tmp_path, monkeypatch):
        # Shrink the quick grid so the smoke test stays in tier-1 budget.
        monkeypatch.setattr(
            report, "QUICK_GRID", (("angluin", (64,)),)
        )
        monkeypatch.setattr(report, "QUICK_STEPS", 2000)
        out = tmp_path / "BENCH_engine.json"
        # No --check here: the toy angluin/n=64 cell is below the batch
        # engine's regime; the gate logic is covered by TestCheckGate.
        assert report.main(["--quick", "--no-trials", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench-engine/1"
        assert payload["quick"] is True
        assert "trials" not in payload
        assert len(payload["results"]) == 3  # three engines, one cell
        engines = {row["engine"] for row in payload["results"]}
        assert engines == {"agent", "multiset", "batch"}

    def test_main_writes_v2_json_with_trials(self, report, tmp_path, monkeypatch):
        monkeypatch.setattr(
            report, "QUICK_GRID", (("angluin", (64,)),)
        )
        monkeypatch.setattr(report, "QUICK_STEPS", 2000)
        monkeypatch.setattr(report, "TRIALS_PROTOCOL", "angluin")
        monkeypatch.setattr(report, "TRIALS_N", 32)
        monkeypatch.setattr(report, "TRIALS_COUNT", 6)
        monkeypatch.setattr(report, "TRIALS_POOL_JOBS", 1)
        out = tmp_path / "BENCH_engine.json"
        assert report.main(["--quick", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench-engine/2"
        # v1 fields are untouched: old consumers parse v2 unchanged.
        assert {"results", "summary", "steps_per_cell"} <= set(payload)
        assert payload["trials"]["ensemble_vs_pool"] > 0
