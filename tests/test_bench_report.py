"""Smoke tests for the machine-readable benchmark harness.

:mod:`repro.bench.report` is the scriptable producer of
``BENCH_engine.json`` (CI runs it as ``repro bench --quick --check
--check-trials --check-kernel --check-telemetry``); these tests exercise its measurement,
summary, and gate logic at toy scale so a harness regression fails in
the tier-1 suite rather than only in the CI benchmark job.
"""

import json
import runpy
from pathlib import Path

import pytest

import repro.bench.report as report

REPO_ROOT = Path(__file__).resolve().parent.parent


def tiny_results():
    rows = []
    for engine in ("agent", "multiset", "batch"):
        for use_kernel in (False, True):
            rows.append(
                report.measure_engine(
                    engine, "angluin", 64, 2000, use_kernel=use_kernel
                )
            )
    return rows


class TestMeasurement:
    def test_measure_engine_reports_throughput_and_cache(self):
        row = report.measure_engine("batch", "angluin", 64, 2000)
        assert row["engine"] == "batch"
        assert row["steps"] == 2000
        assert row["transitions"] == "kernel"  # angluin compiles one
        assert row["steps_per_sec"] > 0
        assert 0.0 <= row["cache"]["hit_rate"] <= 1.0
        assert row["cache"]["hits"] + row["cache"]["misses"] >= 0

    def test_measure_engine_can_force_the_cached_path(self):
        row = report.measure_engine(
            "multiset", "angluin", 64, 2000, use_kernel=False
        )
        assert row["transitions"] == "cached"

    def test_summary_contains_cross_engine_ratios(self):
        summary = report.summarize(tiny_results())
        entry = summary["angluin/n=64"]
        assert set(entry) >= {
            "agent",
            "multiset",
            "batch",
            "batch_vs_multiset",
            "batch_vs_agent",
            "kernel_vs_cached",
        }
        assert entry["batch_vs_multiset"] == pytest.approx(
            entry["batch"] / entry["multiset"]
        )
        assert set(entry["kernel_vs_cached"]) == {"agent", "multiset", "batch"}

    def test_summary_engine_rates_are_the_kernel_rows(self):
        rows = tiny_results()
        summary = report.summarize(rows)
        kernel_rate = next(
            row["steps_per_sec"]
            for row in rows
            if row["engine"] == "multiset" and row["transitions"] == "kernel"
        )
        assert summary["angluin/n=64"]["multiset"] == kernel_rate


class TestCheckGate:
    def fake_report(self, batch_rate, multiset_rate, n=64):
        results = [
            {"engine": "batch", "protocol": "pll", "n": n,
             "steps_per_sec": batch_rate},
            {"engine": "multiset", "protocol": "pll", "n": n,
             "steps_per_sec": multiset_rate},
        ]
        return {"results": results, "summary": {
            f"pll/n={n}": {"batch_vs_multiset": batch_rate / multiset_rate}
        }}

    def test_passes_when_batch_is_faster(self):
        assert report.check_batch_speedup(
            self.fake_report(200.0, 100.0), min_ratio=1.0
        ) is None

    def test_fails_when_batch_is_slower(self):
        error = report.check_batch_speedup(
            self.fake_report(90.0, 100.0), min_ratio=1.0
        )
        assert error is not None and "0.90x" in error

    def test_grades_the_largest_n(self):
        doctored = self.fake_report(200.0, 100.0, n=64)
        doctored["results"] += self.fake_report(50.0, 100.0, n=1024)["results"]
        doctored["summary"]["pll/n=1024"] = {"batch_vs_multiset": 0.5}
        assert report.check_batch_speedup(doctored, 1.0) is not None


class TestSuperbatchCheckGate:
    def fake_report(self, *cells):
        return {
            "summary": {
                f"pll/n={n}": {"superbatch_vs_batch": ratio}
                for n, ratio in cells
            }
        }

    def test_passes_when_superbatch_is_faster(self):
        assert (
            report.check_superbatch_speedup(
                self.fake_report((262144, 3.0)), min_ratio=1.0
            )
            is None
        )

    def test_fails_when_superbatch_misses_the_ratio(self):
        error = report.check_superbatch_speedup(
            self.fake_report((262144, 2.0)), min_ratio=5.0
        )
        assert error is not None and "2.00x" in error

    def test_grades_the_largest_cell_with_both_engines(self):
        doctored = self.fake_report((1024, 9.0), (100_000_000, 0.5))
        assert report.check_superbatch_speedup(doctored, 1.0) is not None

    def test_missing_ratio_is_an_error(self):
        error = report.check_superbatch_speedup({"summary": {}}, 1.0)
        assert error is not None and "superbatch_vs_batch" in error


class TestTrialsSection:
    def tiny_cell(self):
        return report.measure_trials_cell(
            protocol_name="angluin", n=32, trials=6, jobs=1
        )

    def test_measures_every_execution_strategy(self):
        section = self.tiny_cell()
        modes = {(row["mode"], row["engine"]) for row in section["results"]}
        assert modes == {
            ("serial", "multiset"),
            ("pool", "multiset"),
            ("pool", "agent"),
            ("ensemble", "multiset"),
        }
        assert all(row["trials_per_sec"] > 0 for row in section["results"])
        assert section["cell"] == {"protocol": "angluin", "n": 32, "trials": 6}

    def test_strategies_simulate_the_same_chain(self):
        # The gate is an execution-strategy comparison, so the graded
        # rows must have executed identical per-seed trials: same total
        # steps for the serial, pool, and ensemble multiset rows.
        section = self.tiny_cell()
        steps = {
            (row["mode"], row["engine"]): row["total_steps"]
            for row in section["results"]
        }
        assert (
            steps[("ensemble", "multiset")]
            == steps[("pool", "multiset")]
            == steps[("serial", "multiset")]
        )

    def test_ratios_match_the_rows(self):
        section = self.tiny_cell()
        rates = {
            (row["mode"], row["engine"]): row["trials_per_sec"]
            for row in section["results"]
        }
        assert section["ensemble_vs_pool"] == pytest.approx(
            rates[("ensemble", "multiset")] / rates[("pool", "multiset")]
        )
        assert section["ensemble_vs_serial"] == pytest.approx(
            rates[("ensemble", "multiset")] / rates[("serial", "multiset")]
        )


class TestTrialsCheckGate:
    def test_passes_when_ensemble_is_faster(self):
        fake = {"trials": {"cell": {}, "ensemble_vs_serial": 6.0}}
        assert report.check_ensemble_speedup(fake, min_ratio=5.0) is None

    def test_fails_when_ensemble_is_slower(self):
        fake = {
            "trials": {
                "cell": {"protocol": "pll", "n": 4096, "trials": 64},
                "ensemble_vs_serial": 0.8,
            }
        }
        error = report.check_ensemble_speedup(fake, min_ratio=1.0)
        assert error is not None and "0.80x" in error

    def test_falls_back_to_the_v2_pool_ratio(self):
        v2 = {"trials": {"cell": {}, "ensemble_vs_pool": 3.0}}
        assert report.check_ensemble_speedup(v2, min_ratio=2.0) is None

    def test_tolerates_v1_reports_without_the_section(self):
        # Old consumers (and old artifacts) have no trials section; the
        # gate reports that as its own failure instead of crashing.
        v1 = {"schema": "repro-bench-engine/1", "results": []}
        error = report.check_ensemble_speedup(v1, min_ratio=1.0)
        assert error is not None and "no trials section" in error


class TestKernelSection:
    def tiny_cell(self):
        return report.measure_kernel_cell(
            protocol_name="angluin", n=64, trials=4
        )

    def test_measures_both_modes_for_both_engines(self):
        section = self.tiny_cell()
        modes = {(row["engine"], row["mode"]) for row in section["results"]}
        assert modes == {
            ("multiset", "cold-pairs"),
            ("multiset", "trials"),
            ("batch", "cold-pairs"),
            ("batch", "trials"),
        }
        for row in section["results"]:
            assert row["kernel_vs_cached"] == pytest.approx(
                row["cached_seconds"] / row["kernel_seconds"]
            )

    def test_gate_passes_on_fast_kernels(self):
        fake = {
            "kernel": {
                "cell": {"protocol": "pll", "n": 1024},
                "results": [
                    {"engine": "multiset", "mode": "cold-pairs",
                     "kernel_vs_cached": 3.0},
                    {"engine": "batch", "mode": "cold-pairs",
                     "kernel_vs_cached": 2.5},
                ],
            }
        }
        assert report.check_kernel_speedup(fake, min_ratio=2.0) is None

    def test_gate_fails_on_a_slow_engine(self):
        fake = {
            "kernel": {
                "cell": {},
                "results": [
                    {"engine": "multiset", "mode": "cold-pairs",
                     "kernel_vs_cached": 3.0},
                    {"engine": "batch", "mode": "cold-pairs",
                     "kernel_vs_cached": 0.7},
                ],
            }
        }
        error = report.check_kernel_speedup(fake, min_ratio=1.0)
        assert error is not None and "batch" in error

    def test_tolerates_v2_reports_without_the_section(self):
        v2 = {"schema": "repro-bench-engine/2", "results": []}
        error = report.check_kernel_speedup(v2, min_ratio=1.0)
        assert error is not None and "no kernel section" in error


class TestTelemetrySection:
    def test_measures_the_same_workload_off_and_on(self):
        section = report.measure_telemetry_cell(
            protocol_name="angluin", n=64, steps=2000, repeats=1
        )
        assert section["cell"]["engine"] == "superbatch"
        assert section["steps"] > 0
        assert section["off_seconds"] > 0 and section["on_seconds"] > 0
        assert section["overhead_ratio"] == pytest.approx(
            section["on_seconds"] / section["off_seconds"]
        )

    def fake_report(self, ratio):
        return {
            "telemetry": {
                "cell": {"protocol": "pll", "n": 1_000_000,
                         "engine": "superbatch"},
                "steps": 2_000_000,
                "overhead_ratio": ratio,
            }
        }

    def test_gate_passes_under_the_ceiling(self):
        assert (
            report.check_telemetry_overhead(
                self.fake_report(1.01), max_ratio=1.02
            )
            is None
        )

    def test_gate_fails_over_the_ceiling(self):
        error = report.check_telemetry_overhead(
            self.fake_report(1.10), max_ratio=1.02
        )
        assert error is not None and "1.100x" in error

    def test_tolerates_v4_reports_without_the_section(self):
        v4 = {"schema": "repro-bench-engine/4", "results": []}
        error = report.check_telemetry_overhead(v4, max_ratio=1.02)
        assert error is not None and "no telemetry section" in error

    def test_trace_gate_passes_and_fails_on_its_own_ceiling(self):
        passing = self.fake_report(1.01)
        passing["telemetry"]["trace_overhead_ratio"] = 1.5
        assert (
            report.check_telemetry_overhead(
                passing, max_ratio=1.02, max_trace_ratio=2.0
            )
            is None
        )
        failing = self.fake_report(1.01)
        failing["telemetry"]["trace_overhead_ratio"] = 2.5
        error = report.check_telemetry_overhead(
            failing, max_ratio=1.02, max_trace_ratio=2.0
        )
        assert error is not None and "2.500x" in error

    def test_trace_gate_requires_the_v6_measurement(self):
        # A v5-shaped section (no trace ratio) must not silently pass.
        error = report.check_telemetry_overhead(
            self.fake_report(1.01), max_ratio=1.02, max_trace_ratio=2.0
        )
        assert error is not None


class TestSchedulersSection:
    def test_measures_the_same_workload_uniform_and_weighted(self):
        section = report.measure_schedulers_cell(
            protocol_name="angluin", n=256, steps=2000, repeats=1
        )
        assert section["cell"]["engine"] == "superbatch"
        assert section["weights"] == {"L": 1.0}
        # Neutral weights accept every proposal, so both sides executed
        # the identical fixed budget (the function asserts it).
        assert section["steps"] == 2000
        assert section["uniform_seconds"] > 0
        assert section["weighted_seconds"] > 0
        assert section["overhead_ratio"] == pytest.approx(
            section["weighted_seconds"] / section["uniform_seconds"]
        )

    def fake_report(self, ratio):
        return {
            "schedulers": {
                "cell": {"protocol": "pll", "n": 1_000_000,
                         "engine": "superbatch"},
                "steps": 2_000_000,
                "overhead_ratio": ratio,
            }
        }

    def test_gate_passes_under_the_ceiling(self):
        assert (
            report.check_scheduler_overhead(
                self.fake_report(1.05), max_ratio=1.10
            )
            is None
        )

    def test_gate_fails_over_the_ceiling(self):
        error = report.check_scheduler_overhead(
            self.fake_report(1.25), max_ratio=1.10
        )
        assert error is not None and "1.250x" in error

    def test_tolerates_v7_reports_without_the_section(self):
        v7 = {"schema": "repro-bench-engine/7", "results": []}
        error = report.check_scheduler_overhead(v7, max_ratio=1.10)
        assert error is not None and "no schedulers section" in error


class TestEndToEnd:
    def test_main_writes_v1_json_without_optional_sections(
        self, tmp_path, monkeypatch
    ):
        # Shrink the quick grid so the smoke test stays in tier-1 budget.
        monkeypatch.setattr(report, "QUICK_GRID", (("angluin", (64,)),))
        monkeypatch.setattr(report, "QUICK_STEPS", 2000)
        out = tmp_path / "BENCH_engine.json"
        # No --check here: the toy angluin/n=64 cell is below the batch
        # engine's regime; the gate logic is covered by TestCheckGate.
        assert (
            report.main(
                [
                    "--quick",
                    "--no-trials",
                    "--no-kernel",
                    "--no-telemetry",
                    "--no-faults",
                    "--no-schedulers",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench-engine/1"
        assert payload["quick"] is True
        assert "trials" not in payload
        assert "kernel" not in payload
        assert "faults" not in payload
        assert "schedulers" not in payload
        assert len(payload["results"]) == 4  # four engines, one cell
        engines = {row["engine"] for row in payload["results"]}
        assert engines == {"agent", "multiset", "batch", "superbatch"}

    def test_main_writes_v8_json_with_all_sections(self, tmp_path, monkeypatch):
        monkeypatch.setattr(report, "QUICK_GRID", (("angluin", (64,)),))
        monkeypatch.setattr(report, "QUICK_STEPS", 2000)
        monkeypatch.setattr(report, "TRIALS_PROTOCOL", "angluin")
        monkeypatch.setattr(report, "TRIALS_N", 32)
        monkeypatch.setattr(report, "TRIALS_COUNT", 6)
        monkeypatch.setattr(report, "TRIALS_POOL_JOBS", 1)
        monkeypatch.setattr(report, "KERNEL_PROTOCOL", "angluin")
        monkeypatch.setattr(report, "KERNEL_N", 32)
        monkeypatch.setattr(report, "KERNEL_TRIALS", 4)
        monkeypatch.setattr(report, "TELEMETRY_PROTOCOL", "angluin")
        monkeypatch.setattr(report, "TELEMETRY_N", 64)
        monkeypatch.setattr(report, "TELEMETRY_STEPS_QUICK", 2000)
        monkeypatch.setattr(report, "TELEMETRY_REPEATS", 1)
        # An angluin n=256 cell cannot stabilize inside a 2000-step
        # budget, so both fault-cell sides run the full budget.
        monkeypatch.setattr(report, "FAULTS_PROTOCOL", "angluin")
        monkeypatch.setattr(report, "FAULTS_N", 256)
        monkeypatch.setattr(report, "FAULTS_STEPS_QUICK", 2000)
        monkeypatch.setattr(report, "FAULTS_REPEATS", 1)
        # Same regime for the scheduler cell: both sides must run the
        # full budget for the equal-steps assertion to hold.
        monkeypatch.setattr(report, "SCHEDULERS_PROTOCOL", "angluin")
        monkeypatch.setattr(report, "SCHEDULERS_N", 256)
        monkeypatch.setattr(report, "SCHEDULERS_STEPS_QUICK", 2000)
        monkeypatch.setattr(report, "SCHEDULERS_REPEATS", 1)
        out = tmp_path / "BENCH_engine.json"
        assert report.main(["--quick", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench-engine/8"
        # v1/v2 fields are untouched: old consumers parse v8 unchanged.
        assert {"results", "summary", "steps_per_cell", "trials"} <= set(
            payload
        )
        assert payload["telemetry"]["overhead_ratio"] > 0
        # v6: the telemetry cell also measures the tracing+probes run.
        assert payload["telemetry"]["trace_overhead_ratio"] > 0
        # v7: the fault-driver overhead cell.
        assert payload["faults"]["overhead_ratio"] > 0
        assert payload["faults"]["clean_steps_per_sec"] > 0
        # v8: the scheduler-thinning overhead cell.
        assert payload["schedulers"]["overhead_ratio"] > 0
        assert payload["schedulers"]["uniform_steps_per_sec"] > 0
        assert payload["trials"]["ensemble_vs_serial"] > 0
        # Kernel-compiled cells carry both transition paths.
        paths = {
            (row["engine"], row["transitions"])
            for row in payload["results"]
        }
        assert ("multiset", "kernel") in paths
        assert ("multiset", "cached") in paths
        assert payload["kernel"]["results"]


class TestDeprecatedShim:
    def test_benchmarks_report_warns_and_forwards(self):
        # `python benchmarks/report.py` must keep working but point
        # callers at `repro bench`; runpy executes the module body
        # without tripping its __main__ guard.
        shim = REPO_ROOT / "benchmarks" / "report.py"
        with pytest.warns(DeprecationWarning, match="repro bench"):
            namespace = runpy.run_path(str(shim))
        assert namespace["main"] is report.main
