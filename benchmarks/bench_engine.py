"""Engine micro-benchmarks: step throughput and memoization effect.

Together with ``bench_batch.py`` these are the only benchmarks here
measuring *our* code's speed rather than regenerating a paper artifact;
they back the engineering claims of DESIGN.md's "Choosing an engine"
guide (interned-int hot loop, exact transition memoization, n-independent
multiset step cost).  The scriptable cross-engine comparison — the one CI
runs and records — is ``report.py``, which writes ``BENCH_engine.json``
at the repository root.
"""

from repro.core.pll import PLLProtocol
from repro.engine.multiset import MultisetSimulator
from repro.engine.simulator import AgentSimulator
from repro.protocols.angluin import AngluinProtocol

STEPS = 20000


def test_agent_engine_pll_throughput(benchmark):
    def run():
        sim = AgentSimulator(PLLProtocol.for_population(1024), 1024, seed=0)
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run) == STEPS


def test_multiset_engine_pll_throughput(benchmark):
    def run():
        sim = MultisetSimulator(PLLProtocol.for_population(1024), 1024, seed=0)
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run) == STEPS


def test_agent_engine_two_state_throughput(benchmark):
    def run():
        sim = AgentSimulator(AngluinProtocol(), 1024, seed=0)
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run) == STEPS


def test_transition_cache_effectiveness(benchmark):
    """Cached vs uncached PLL stepping (same seed, same work)."""

    def run_cached():
        sim = AgentSimulator(PLLProtocol.for_population(256), 256, seed=0)
        sim.run(STEPS)
        return sim.cache.stats.hit_rate

    hit_rate = benchmark(run_cached)
    assert hit_rate > 0.5  # memoization must actually be doing the work


def test_multiset_step_cost_independent_of_n(benchmark):
    """The count-based engine costs the same at n=10^3 and n=10^6."""

    def run_large_n():
        sim = MultisetSimulator(AngluinProtocol(), 1_000_000, seed=0)
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run_large_n) == STEPS
