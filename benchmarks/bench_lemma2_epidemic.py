"""Benchmark E3 — Lemma 2's epidemic tail bound."""

from repro.experiments import get_experiment

SCALE = 0.5


def test_lemma2_epidemic_tail(benchmark, save_result):
    _spec, run = get_experiment("E3")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert all(row["consistent"] for row in result.rows)
