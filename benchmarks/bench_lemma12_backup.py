"""Benchmark E8 — Lemma 12: BackUp from B_start in O(log^2 n)."""

from repro.experiments import get_experiment

SCALE = 0.4


def test_lemma12_backup_from_bstart(benchmark, save_result):
    _spec, run = get_experiment("E8")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert all(row["zero-leader runs"] == 0 for row in result.rows)
