"""Batch-engine micro-benchmarks: block throughput and the null fast path.

Companions to ``bench_engine.py`` (see DESIGN.md, "Choosing an engine"):
these measure the claims specific to :class:`repro.engine.batch.
BatchSimulator` — that Theta(sqrt(n))-interaction vectorized blocks beat
the per-interaction engines once ``n`` is large, and that null-dominated
phases cost O(1) per *block* rather than per interaction.  The
machine-readable cross-engine comparison lives in ``report.py`` /
``BENCH_engine.json``.
"""

from repro.core.pll import PLLProtocol
from repro.engine.batch import BatchSimulator
from repro.engine.multiset import MultisetSimulator
from repro.protocols.majority import ApproximateMajority

STEPS = 20000

#: Large enough that blocks hold hundreds of interactions — the regime
#: the engine is built for (and the regime CI's smoke check grades).
LARGE_N = 200_000


def test_batch_engine_pll_throughput(benchmark):
    def run():
        sim = BatchSimulator(PLLProtocol.for_population(1024), 1024, seed=0)
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run) == STEPS


def test_batch_engine_pll_large_n_throughput(benchmark):
    def run():
        sim = BatchSimulator(
            PLLProtocol.for_population(LARGE_N), LARGE_N, seed=0
        )
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run) == STEPS


def test_batch_beats_multiset_at_large_n(benchmark):
    """The headline claim, as a benchmark: batch >> multiset at scale."""

    def run():
        sim = BatchSimulator(
            PLLProtocol.for_population(LARGE_N), LARGE_N, seed=0
        )
        sim.run(STEPS)
        return sim.stats.mean_block

    mean_block = benchmark(run)
    # Hundreds of interactions per Python-level block is what makes the
    # engine fast; a collapse here is a sampling regression even if the
    # wall-clock numbers drift with the hardware.
    assert mean_block > 50


def test_multiset_large_n_reference(benchmark):
    """Same workload on the multiset engine, for the comparison row."""

    def run():
        sim = MultisetSimulator(
            PLLProtocol.for_population(LARGE_N), LARGE_N, seed=0
        )
        sim.run(STEPS)
        return sim.steps

    assert benchmark(run) == STEPS


def test_batch_null_fast_path_skips_geometrically(benchmark):
    """Ten million post-consensus interactions in a handful of events."""

    def run():
        sim = BatchSimulator(ApproximateMajority(), 1000, seed=3)
        sim.load_counts({"x": 700, "y": 300})
        sim.run(10_000_000)
        return sim.stats.null_skipped_steps

    skipped = benchmark(run)
    # Consensus lands after ~10^4 interactions; virtually everything
    # after it must be skipped by the geometric path, not sampled.
    assert skipped > 9_000_000
