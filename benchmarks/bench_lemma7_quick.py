"""Benchmark E6 — Lemma 7's survivor-count law for QuickElimination."""

from repro.experiments import get_experiment

SCALE = 0.5


def test_lemma7_survivor_distribution(benchmark, save_result):
    _spec, run = get_experiment("E6")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert any("zero-leader runs: 0" in note for note in result.notes)
    assert all(row["consistent"] for row in result.rows)
