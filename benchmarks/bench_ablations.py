"""Benchmark E12 — module/parameter/engine ablations."""

from repro.experiments import get_experiment

SCALE = 0.5


def test_ablations(benchmark, save_result):
    _spec, run = get_experiment("E12")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    module_rows = [row for row in result.rows if row["ablation"] == "modules"]
    by_setting = {}
    for row in module_rows:
        by_setting.setdefault(row["setting"], []).append(
            row["mean time (parallel)"]
        )
    # backup-only pays the full epoch schedule: far slower than full PLL.
    assert min(by_setting["backup-only"]) > max(by_setting["full"])
