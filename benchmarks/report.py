"""Deprecated path-invocable shim for the engine benchmark harness.

The implementation lives in :mod:`repro.bench.report` and runs as
``repro bench`` (``PYTHONPATH=src python -m repro.cli bench``); this
shim keeps ``python benchmarks/report.py`` working for existing
workflows but warns so they migrate.
"""

from __future__ import annotations

import sys
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

# stacklevel=1: at module top level a higher stacklevel attributes the
# warning to the interpreter bootstrap, where the default
# `default::DeprecationWarning:__main__` filter never shows it.
warnings.warn(
    "benchmarks/report.py is deprecated; run the harness as "
    "`repro bench` (PYTHONPATH=src python -m repro.cli bench)",
    DeprecationWarning,
    stacklevel=1,
)

from repro.bench.report import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
