"""Path-invocable shim for the engine benchmark harness.

The implementation lives in :mod:`repro.bench.report` so the harness
runs as ``repro bench`` without path-invoking this script; this shim
keeps ``python benchmarks/report.py`` working for existing workflows
(CI, local muscle memory).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
