"""Machine-readable engine benchmark harness.

Measures raw interaction throughput (steps/sec) and transition-cache
effectiveness for every engine over a grid of protocols and population
sizes, and writes the result as ``BENCH_engine.json`` at the repository
root — the durable, diffable record of the performance trajectory (CI
uploads it as a workflow artifact on every run; see
``.github/workflows/ci.yml``).

Usage::

    PYTHONPATH=src python benchmarks/report.py                 # full grid
    PYTHONPATH=src python benchmarks/report.py --quick         # CI scale
    PYTHONPATH=src python benchmarks/report.py --check         # + enforce
    PYTHONPATH=src python benchmarks/report.py --out other.json

``--check`` turns the report into a regression gate: it fails (exit 1)
unless the batch engine beats the multiset engine on the PLL throughput
check at the largest measured ``n`` by at least ``--min-ratio`` (default
1.0; the full-scale grid is expected to clear 5.0 at ``n = 10^6``).

The pytest-benchmark targets in ``bench_engine.py``/``bench_batch.py``
measure the same hot loops interactively; this module is the scriptable,
JSON-emitting entry point for CI and trend tracking.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.orchestration.pool import build_simulator  # noqa: E402
from repro.orchestration.registry import build_protocol  # noqa: E402
from repro.orchestration.spec import ENGINES  # noqa: E402

#: (protocol registry name, population sizes) measured per engine.
FULL_GRID = (
    ("pll", (1024, 65536, 1_000_000)),
    ("angluin", (1024, 65536)),
)
QUICK_GRID = (
    ("pll", (1024, 16384)),
    ("angluin", (1024,)),
)
FULL_STEPS = 100_000
QUICK_STEPS = 20_000

#: The headline comparison: the protocol every engine is graded on.
CHECK_PROTOCOL = "pll"


def measure_engine(
    engine: str, protocol_name: str, n: int, steps: int, seed: int = 0
) -> dict:
    """Time ``steps`` interactions of one engine on one workload."""
    protocol = build_protocol(protocol_name, n)
    sim = build_simulator(protocol, n, seed=seed, engine=engine)
    start = time.perf_counter()
    executed = sim.run(steps)
    elapsed = time.perf_counter() - start
    if executed != steps:
        raise RuntimeError(
            f"{engine} executed {executed} of {steps} steps on "
            f"{protocol_name} n={n}"
        )
    stats = sim.cache.stats
    return {
        "engine": engine,
        "protocol": protocol_name,
        "n": n,
        "steps": steps,
        "seconds": elapsed,
        "steps_per_sec": steps / elapsed,
        "distinct_states": sim.distinct_states_seen(),
        "cache": {
            "entries": len(sim.cache),
            "hits": stats.hits,
            "misses": stats.misses,
            "bypasses": stats.bypasses,
            "hit_rate": stats.hit_rate,
        },
    }


def generate_report(quick: bool = False, seed: int = 0) -> dict:
    """Run the full engine x protocol x n grid; return the report dict."""
    grid = QUICK_GRID if quick else FULL_GRID
    steps = QUICK_STEPS if quick else FULL_STEPS
    results = []
    for protocol_name, ns in grid:
        for n in ns:
            for engine in ENGINES:
                print(
                    f"  measuring {engine:9s} {protocol_name:9s} n={n} ...",
                    flush=True,
                )
                results.append(
                    measure_engine(engine, protocol_name, n, steps, seed=seed)
                )
    return {
        "schema": "repro-bench-engine/1",
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "quick": quick,
        "steps_per_cell": steps,
        "seed": seed,
        "results": results,
        "summary": summarize(results),
    }


def summarize(results: list[dict]) -> dict:
    """Cross-engine ratios per (protocol, n), keyed for easy diffing."""
    by_cell: dict[tuple[str, int], dict[str, float]] = {}
    for row in results:
        cell = by_cell.setdefault((row["protocol"], row["n"]), {})
        cell[row["engine"]] = row["steps_per_sec"]
    summary = {}
    for (protocol_name, n), cell in sorted(by_cell.items()):
        entry = dict(cell)
        if "batch" in cell and "multiset" in cell:
            entry["batch_vs_multiset"] = cell["batch"] / cell["multiset"]
        if "batch" in cell and "agent" in cell:
            entry["batch_vs_agent"] = cell["batch"] / cell["agent"]
        summary[f"{protocol_name}/n={n}"] = entry
    return summary


def check_batch_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when batch misses ``min_ratio`` x multiset, else None.

    Graded on :data:`CHECK_PROTOCOL` at the largest measured ``n`` —
    the regime the batch engine exists for.
    """
    cells = [
        (row["n"], row)
        for row in report["results"]
        if row["protocol"] == CHECK_PROTOCOL
    ]
    if not cells:
        return f"no {CHECK_PROTOCOL!r} rows to check"
    largest = max(n for n, _ in cells)
    ratio = report["summary"][f"{CHECK_PROTOCOL}/n={largest}"].get(
        "batch_vs_multiset"
    )
    if ratio is None:
        return "summary lacks a batch_vs_multiset ratio"
    if ratio < min_ratio:
        return (
            f"batch engine is {ratio:.2f}x multiset on {CHECK_PROTOCOL} at "
            f"n={largest}; required >= {min_ratio:.2f}x"
        )
    print(
        f"check ok: batch is {ratio:.2f}x multiset on {CHECK_PROTOCOL} "
        f"at n={largest} (required >= {min_ratio:.2f}x)"
    )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced grid for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless batch >= --min-ratio x multiset on PLL",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.0,
        help="speedup the --check gate requires (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = generate_report(quick=args.quick, seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, entry in report["summary"].items():
        ratio = entry.get("batch_vs_multiset")
        suffix = f"  (batch/multiset {ratio:.2f}x)" if ratio else ""
        rates = ", ".join(
            f"{engine} {entry[engine]:,.0f}/s"
            for engine in ("agent", "multiset", "batch")
            if engine in entry
        )
        print(f"  {key:18s} {rates}{suffix}")
    if args.check:
        error = check_batch_speedup(report, args.min_ratio)
        if error is not None:
            print(f"check FAILED: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
