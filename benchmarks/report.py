"""Machine-readable engine benchmark harness.

Measures raw interaction throughput (steps/sec) and transition-cache
effectiveness for every engine over a grid of protocols and population
sizes — plus campaign-level **trials-per-second** for the across-trial
ensemble engine against the multiprocessing-pool baseline — and writes
the result as ``BENCH_engine.json`` at the repository root: the durable,
diffable record of the performance trajectory (CI uploads it as a
workflow artifact on every run; see ``.github/workflows/ci.yml``).

Usage::

    PYTHONPATH=src python benchmarks/report.py                 # full grid
    PYTHONPATH=src python benchmarks/report.py --quick         # CI scale
    PYTHONPATH=src python benchmarks/report.py --check         # + enforce
    PYTHONPATH=src python benchmarks/report.py --no-trials     # old grid only
    PYTHONPATH=src python benchmarks/report.py --out other.json

Schema: ``repro-bench-engine/2`` when the ``trials`` section is present
(the default), ``repro-bench-engine/1`` with ``--no-trials`` — v1
consumers keep working either way because every v1 field is unchanged.

Gates: ``--check`` fails (exit 1) unless the batch engine beats the
multiset engine on the PLL throughput check at the largest measured
``n`` by at least ``--min-ratio``.  ``--check-trials`` fails unless the
ensemble engine's trials/sec on the 64-trial PLL cell at n=4096 reaches
``--min-trials-ratio`` times the pool baseline running the *same specs*
solo (same multiset chain, identical per-seed outcomes — a pure
execution-strategy comparison).

The pytest-benchmark targets in ``bench_engine.py``/``bench_batch.py``/
``bench_ensemble.py`` measure the same hot loops interactively; this
module is the scriptable, JSON-emitting entry point for CI and trend
tracking.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.orchestration.pool import build_simulator, run_specs  # noqa: E402
from repro.orchestration.registry import build_protocol  # noqa: E402
from repro.orchestration.spec import ENGINES, trial_specs  # noqa: E402

#: (protocol registry name, population sizes) measured per engine.
FULL_GRID = (
    ("pll", (1024, 65536, 1_000_000)),
    ("angluin", (1024, 65536)),
)
QUICK_GRID = (
    ("pll", (1024, 16384)),
    ("angluin", (1024,)),
)
FULL_STEPS = 100_000
QUICK_STEPS = 20_000

#: The headline comparison: the protocol every engine is graded on.
CHECK_PROTOCOL = "pll"

#: The campaign-shaped cell the trials-per-second section measures: deep
#: enough in trials to exercise lane packing, small-to-mid in ``n`` —
#: exactly the regime campaigns spend most of their trials in (and where
#: BENCH_engine.json shows the within-trial batch engine losing to the
#: per-interaction engines).
TRIALS_PROTOCOL = "pll"
TRIALS_N = 4096
TRIALS_COUNT = 64
#: Worker processes for the pool baseline: a realistic `--jobs` choice
#: (capped at 4 so a 128-core machine doesn't skew the record), floored
#: at 2 so the baseline actually exercises the multiprocessing pool it
#: is named for rather than the serial fast path.
TRIALS_POOL_JOBS = max(2, min(4, os.cpu_count() or 1))


def measure_trials_cell(
    protocol_name: str | None = None,
    n: int | None = None,
    trials: int | None = None,
    seed: int = 0,
    jobs: int | None = None,
    include_agent: bool = True,
) -> dict:
    """Trials-per-second for one campaign cell, per execution strategy.

    Up to three rows: the multiprocessing pool running the cell's
    multiset specs solo (the baseline the ensemble is graded against —
    same Markov chain, byte-identical per-seed outcomes), the pool
    running the historical agent engine (context only: a different
    chain, so a looser comparison — skipped in quick/CI runs where it
    just burns minutes), and the ensemble engine packing the multiset
    specs into vectorized lanes.  The cell itself is never reduced in
    quick mode: the CI gate is defined on the 64-trial PLL cell at
    n=4096.
    """
    # Late-bound defaults so tests (and callers) can retarget the module
    # constants without re-plumbing every call site.
    if protocol_name is None:
        protocol_name = TRIALS_PROTOCOL
    if n is None:
        n = TRIALS_N
    if trials is None:
        trials = TRIALS_COUNT
    if jobs is None:
        jobs = TRIALS_POOL_JOBS
    rows = []

    def measure(mode: str, engine: str, run) -> dict:
        start = time.perf_counter()
        outcomes = run()
        elapsed = time.perf_counter() - start
        row = {
            "mode": mode,
            "engine": engine,
            "protocol": protocol_name,
            "n": n,
            "trials": trials,
            "jobs": jobs if mode == "pool" else 1,
            "seconds": elapsed,
            "trials_per_sec": trials / elapsed,
            "total_steps": sum(outcome.steps for outcome in outcomes),
        }
        rows.append(row)
        return row

    multiset_specs = trial_specs(
        protocol_name, n, trials, base_seed=seed, engine="multiset"
    )
    agent_specs = trial_specs(
        protocol_name, n, trials, base_seed=seed, engine="agent"
    )
    print(
        f"  measuring pool      {protocol_name} n={n} x{trials} trials "
        f"(multiset, jobs={jobs}) ...",
        flush=True,
    )
    measure(
        "pool",
        "multiset",
        lambda: run_specs(multiset_specs, jobs=jobs, ensemble_lanes=0).outcomes,
    )
    if include_agent:
        print(
            f"  measuring pool      {protocol_name} n={n} x{trials} trials "
            f"(agent, jobs={jobs}) ...",
            flush=True,
        )
        measure(
            "pool",
            "agent",
            lambda: run_specs(
                agent_specs, jobs=jobs, ensemble_lanes=0
            ).outcomes,
        )
    print(
        f"  measuring ensemble  {protocol_name} n={n} x{trials} trials ...",
        flush=True,
    )
    ensemble_row = measure(
        "ensemble",
        "multiset",
        lambda: run_specs(multiset_specs, jobs=1, ensemble_lanes=2).outcomes,
    )
    baseline = next(
        row for row in rows if row["mode"] == "pool" and row["engine"] == "multiset"
    )
    return {
        "cell": {"protocol": protocol_name, "n": n, "trials": trials},
        "results": rows,
        "ensemble_vs_pool": ensemble_row["trials_per_sec"]
        / baseline["trials_per_sec"],
    }


def measure_engine(
    engine: str, protocol_name: str, n: int, steps: int, seed: int = 0
) -> dict:
    """Time ``steps`` interactions of one engine on one workload."""
    protocol = build_protocol(protocol_name, n)
    sim = build_simulator(protocol, n, seed=seed, engine=engine)
    start = time.perf_counter()
    executed = sim.run(steps)
    elapsed = time.perf_counter() - start
    if executed != steps:
        raise RuntimeError(
            f"{engine} executed {executed} of {steps} steps on "
            f"{protocol_name} n={n}"
        )
    stats = sim.cache.stats
    return {
        "engine": engine,
        "protocol": protocol_name,
        "n": n,
        "steps": steps,
        "seconds": elapsed,
        "steps_per_sec": steps / elapsed,
        "distinct_states": sim.distinct_states_seen(),
        "cache": {
            "entries": len(sim.cache),
            "hits": stats.hits,
            "misses": stats.misses,
            "bypasses": stats.bypasses,
            "hit_rate": stats.hit_rate,
        },
    }


def generate_report(
    quick: bool = False, seed: int = 0, trials_section: bool = True
) -> dict:
    """Run the full engine x protocol x n grid; return the report dict.

    ``trials_section`` adds the campaign-level trials-per-second cell and
    bumps the schema to v2; without it the report is byte-compatible with
    the PR 2 v1 layout.
    """
    grid = QUICK_GRID if quick else FULL_GRID
    steps = QUICK_STEPS if quick else FULL_STEPS
    results = []
    for protocol_name, ns in grid:
        for n in ns:
            for engine in ENGINES:
                print(
                    f"  measuring {engine:9s} {protocol_name:9s} n={n} ...",
                    flush=True,
                )
                results.append(
                    measure_engine(engine, protocol_name, n, steps, seed=seed)
                )
    report = {
        "schema": (
            "repro-bench-engine/2" if trials_section else "repro-bench-engine/1"
        ),
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "quick": quick,
        "steps_per_cell": steps,
        "seed": seed,
        "results": results,
        "summary": summarize(results),
    }
    if trials_section:
        report["trials"] = measure_trials_cell(
            seed=seed, include_agent=not quick
        )
    return report


def summarize(results: list[dict]) -> dict:
    """Cross-engine ratios per (protocol, n), keyed for easy diffing."""
    by_cell: dict[tuple[str, int], dict[str, float]] = {}
    for row in results:
        cell = by_cell.setdefault((row["protocol"], row["n"]), {})
        cell[row["engine"]] = row["steps_per_sec"]
    summary = {}
    for (protocol_name, n), cell in sorted(by_cell.items()):
        entry = dict(cell)
        if "batch" in cell and "multiset" in cell:
            entry["batch_vs_multiset"] = cell["batch"] / cell["multiset"]
        if "batch" in cell and "agent" in cell:
            entry["batch_vs_agent"] = cell["batch"] / cell["agent"]
        summary[f"{protocol_name}/n={n}"] = entry
    return summary


def check_batch_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when batch misses ``min_ratio`` x multiset, else None.

    Graded on :data:`CHECK_PROTOCOL` at the largest measured ``n`` —
    the regime the batch engine exists for.
    """
    cells = [
        (row["n"], row)
        for row in report["results"]
        if row["protocol"] == CHECK_PROTOCOL
    ]
    if not cells:
        return f"no {CHECK_PROTOCOL!r} rows to check"
    largest = max(n for n, _ in cells)
    ratio = report["summary"][f"{CHECK_PROTOCOL}/n={largest}"].get(
        "batch_vs_multiset"
    )
    if ratio is None:
        return "summary lacks a batch_vs_multiset ratio"
    if ratio < min_ratio:
        return (
            f"batch engine is {ratio:.2f}x multiset on {CHECK_PROTOCOL} at "
            f"n={largest}; required >= {min_ratio:.2f}x"
        )
    print(
        f"check ok: batch is {ratio:.2f}x multiset on {CHECK_PROTOCOL} "
        f"at n={largest} (required >= {min_ratio:.2f}x)"
    )
    return None


def check_ensemble_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when ensemble misses ``min_ratio`` x the pool, else None.

    Tolerant of v1 reports: a missing ``trials`` section is itself the
    error (the gate cannot pass on a report that never measured it).
    """
    trials = report.get("trials")
    if not trials:
        return "report has no trials section to check"
    ratio = trials.get("ensemble_vs_pool")
    if ratio is None:
        return "trials section lacks an ensemble_vs_pool ratio"
    cell = trials.get("cell", {})
    label = (
        f"{cell.get('protocol', '?')} n={cell.get('n', '?')} "
        f"x{cell.get('trials', '?')} trials"
    )
    if ratio < min_ratio:
        return (
            f"ensemble is {ratio:.2f}x the pool baseline on {label}; "
            f"required >= {min_ratio:.2f}x"
        )
    print(
        f"check ok: ensemble is {ratio:.2f}x the pool baseline on {label} "
        f"(required >= {min_ratio:.2f}x)"
    )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced grid for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless batch >= --min-ratio x multiset on PLL",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.0,
        help="speedup the --check gate requires (default 1.0)",
    )
    parser.add_argument(
        "--no-trials",
        action="store_true",
        help="skip the trials-per-second section (emits the v1 schema)",
    )
    parser.add_argument(
        "--check-trials",
        action="store_true",
        help=(
            "fail unless ensemble trials/sec >= --min-trials-ratio x the "
            "multiprocessing-pool baseline on the campaign cell"
        ),
    )
    parser.add_argument(
        "--min-trials-ratio",
        type=float,
        default=1.0,
        help="speedup the --check-trials gate requires (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.check_trials and args.no_trials:
        parser.error("--check-trials requires the trials section")
    report = generate_report(
        quick=args.quick, seed=args.seed, trials_section=not args.no_trials
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, entry in report["summary"].items():
        ratio = entry.get("batch_vs_multiset")
        suffix = f"  (batch/multiset {ratio:.2f}x)" if ratio else ""
        rates = ", ".join(
            f"{engine} {entry[engine]:,.0f}/s"
            for engine in ("agent", "multiset", "batch")
            if engine in entry
        )
        print(f"  {key:18s} {rates}{suffix}")
    trials = report.get("trials")
    if trials:
        cell = trials["cell"]
        print(
            f"  trials cell {cell['protocol']}/n={cell['n']} "
            f"x{cell['trials']}:"
        )
        for row in trials["results"]:
            print(
                f"    {row['mode']:9s} ({row['engine']:9s} jobs={row['jobs']}) "
                f"{row['trials_per_sec']:8.2f} trials/s  "
                f"({row['seconds']:.1f}s)"
            )
        print(f"    ensemble/pool {trials['ensemble_vs_pool']:.2f}x")
    failures = []
    if args.check:
        error = check_batch_speedup(report, args.min_ratio)
        if error is not None:
            failures.append(error)
    if args.check_trials:
        error = check_ensemble_speedup(report, args.min_trials_ratio)
        if error is not None:
            failures.append(error)
    for error in failures:
        print(f"check FAILED: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
