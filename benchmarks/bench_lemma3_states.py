"""Benchmark E11 — Lemma 3: O(log n) states per agent."""

from repro.experiments import get_experiment

SCALE = 0.5


def test_lemma3_state_audit(benchmark, save_result):
    _spec, run = get_experiment("E11")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    pll_rows = [row for row in result.rows if row["protocol"] == "PLL"]
    ratios = [row["bound / m"] for row in pll_rows]
    # O(log n) states: the bound per unit of m stays flat across n.
    assert max(ratios) / min(ratios) < 1.6
