"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact by calling the same
experiment ``run`` function the CLI uses, at a reduced ``scale``, then
saves the rendered table under ``benchmarks/results/`` so the rows are
inspectable after a plain ``pytest benchmarks/ --benchmark-only`` run
(pytest captures stdout; the files are the durable record).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist an ExperimentResult's rendering and echo it to stdout."""

    def _save(result, suffix: str = "") -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.spec.id}{suffix}.txt"
        text = result.render()
        path.write_text(text + "\n")
        print()
        print(text)

    return _save
