"""Benchmark E13 — Lemmas 9/10: recovery from adversarial configurations."""

from repro.experiments import get_experiment

SCALE = 0.4


def test_robustness_recovery(benchmark, save_result):
    _spec, run = get_experiment("E13")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert all(row["consistent"] for row in result.rows)
