"""Benchmarks E4/E5 — the synchronization lemmas (Lemma 5 and Lemma 6)."""

from repro.experiments import get_experiment


def test_lemma5_countup_cadence(benchmark, save_result):
    _spec, run = get_experiment("E4")
    result = benchmark.pedantic(
        run, kwargs={"scale": 0.4, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert all(row["consistent (gap = O(m))"] for row in result.rows)


def test_lemma6_sync_propositions(benchmark, save_result):
    _spec, run = get_experiment("E5")
    result = benchmark.pedantic(
        run, kwargs={"scale": 0.4, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert all(row["consistent"] for row in result.rows)
