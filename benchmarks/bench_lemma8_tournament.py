"""Benchmark E7 — Lemma 8: unique leader before epoch 4 (whp)."""

from repro.experiments import get_experiment

SCALE = 0.15  # epoch-4 entry takes ~3 full timer periods per run


def test_lemma8_tournament_effectiveness(benchmark, save_result):
    _spec, run = get_experiment("E7")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    full_rows = [r for r in result.rows if r["variant"].startswith("full")]
    assert all(row["consistent"] is True for row in full_rows)
