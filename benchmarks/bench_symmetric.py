"""Benchmark E10 — Section 4: the symmetric variant and its coins."""

from repro.experiments import get_experiment

SCALE = 0.5


def test_section4_symmetric(benchmark, save_result):
    _spec, run = get_experiment("E10")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    balance_rows = [
        row for row in result.rows if "symmetry property" in row["check"]
    ]
    assert all(row["consistent"] for row in balance_rows)
    coin_rows = [row for row in result.rows if "head frequency" in row["check"]]
    assert all(row["consistent"] for row in coin_rows)
