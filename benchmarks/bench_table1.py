"""Benchmark E1 — regenerate Table 1 (protocol comparison).

Runs the same harness as ``repro run E1`` at reduced scale and records the
row structure the paper reports: states and stabilization-time growth per
protocol.  The timing number reported by pytest-benchmark is the cost of
regenerating the table, not a paper claim.
"""

from repro.experiments import get_experiment

SCALE = 0.5


def test_table1_protocol_comparison(benchmark, save_result):
    _spec, run = get_experiment("E1")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    # Structural checks that survive small trial counts:
    protocols = result.column("protocol")
    assert any("PLL (this work)" in p for p in protocols)
    assert len(result.rows) == 5
