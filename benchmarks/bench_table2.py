"""Benchmark E2 — regenerate Table 2 (lower-bound consistency checks)."""

from repro.experiments import get_experiment

SCALE = 0.5


def test_table2_lower_bounds(benchmark, save_result):
    _spec, run = get_experiment("E2")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    # Measured times must never beat the bounds.
    assert all(row["consistent"] for row in result.rows)
