"""Ensemble-engine micro-benchmarks: across-trial lane throughput.

Companions to ``bench_batch.py``: where the batch engine vectorizes
*within* one trial, :class:`repro.engine.ensemble.EnsembleSimulator`
vectorizes *across* trials — the regime campaigns actually spend their
time in (many trials at small-to-mid ``n``, below the batch crossover).
The machine-readable trials-per-second comparison against the
multiprocessing pool lives in ``report.py`` / ``BENCH_engine.json``
(schema v2, ``trials`` section); these targets isolate the engine-level
pieces.
"""

from repro.core.pll import PLLProtocol
from repro.engine.ensemble import EnsembleSimulator, SlotLane
from repro.engine.multiset import MultisetSimulator
from repro.protocols.angluin import AngluinProtocol

N = 1024
LANES = 32


def test_ensemble_pll_cell_to_stabilization(benchmark):
    """A whole multi-trial PLL cell, every lane to its exact step."""

    def run():
        sim = EnsembleSimulator(
            PLLProtocol.for_population(N), N, list(range(LANES))
        )
        return sum(o.steps for o in sim.run_until_stabilized())

    assert benchmark(run) > 0


def test_ensemble_lockstep_sweeps(benchmark):
    """Pure vectorized path: no detachment, fixed step budget per lane."""

    def run():
        sim = EnsembleSimulator(
            PLLProtocol.for_population(N), N, list(range(LANES)),
            detach_lanes=0,
        )
        sim.run(2000)
        return sim.sweeps

    assert benchmark(run) > 0


def test_ensemble_null_lookahead_on_angluin(benchmark):
    """~94% of Angluin interactions are null: lookahead must amortize
    them, committing many interactions per sweep."""

    def run():
        sim = EnsembleSimulator(
            AngluinProtocol(), N, list(range(LANES)), detach_lanes=0
        )
        sim.run(20_000)
        return sim.sweeps

    sweeps = benchmark(run)
    # 20k interactions per lane in far fewer sweeps: the adaptive window
    # is doing its job (a collapse to ~20k sweeps is a regression even
    # if wall-clock drifts with hardware).
    assert sweeps < 10_000


def test_slot_lane_straggler_throughput(benchmark):
    """The scalar continuation stragglers detach into: the sorted-slot
    loop must comfortably beat the Fenwick multiset loop it replays."""

    def run():
        lane = SlotLane(PLLProtocol.for_population(N), N, seed=0)
        lane.run(20_000, stop_at_target=False)
        return lane.steps

    assert benchmark(run) == 20_000


def test_multiset_reference_for_slot_lane(benchmark):
    """Same workload on MultisetSimulator, for the comparison row."""

    def run():
        sim = MultisetSimulator(PLLProtocol.for_population(N), N, seed=0)
        sim.run(20_000)
        return sim.steps

    assert benchmark(run) == 20_000
