"""Benchmark E9 — Theorem 1: PLL stabilizes in O(log n) parallel time.

The headline reproduction.  Also exercises the count-based engine on the
largest population in the grid.
"""

from repro.experiments import get_experiment

SCALE = 0.5


def test_theorem1_scaling(benchmark, save_result):
    _spec, run = get_experiment("E9")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    # The growth fit must be logarithmic.
    assert any("best-fit growth model" in note and "log" in note
               for note in result.notes)


def test_theorem1_multiset_engine(benchmark, save_result):
    _spec, run = get_experiment("E9")
    result = benchmark.pedantic(
        run,
        kwargs={"scale": 0.3, "seed": 100, "engine": "multiset"},
        rounds=1,
        iterations=1,
    )
    save_result(result, "-multiset")
    ratios = result.column("trimmed / lg n")
    assert all(r > 0 for r in ratios)
