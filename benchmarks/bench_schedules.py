"""Benchmark E14 — adversarial schedules: stabilization off uniform Gamma."""

from repro.experiments import get_experiment

SCALE = 0.4


def test_schedules_inflation(benchmark, save_result):
    _spec, run = get_experiment("E14")
    result = benchmark.pedantic(
        run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    save_result(result)
    assert all(row["consistent"] for row in result.rows)
