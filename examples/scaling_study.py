#!/usr/bin/env python
"""Scaling study: reproduce the shape of Table 1 on your laptop.

Measures mean stabilization parallel time for three protocols across a
doubling grid of population sizes, fits growth models, and prints a
Table-1-shaped comparison:

* Angluin et al. [Ang+06]  — O(1) states, Theta(n) time,
* PLL (this paper)         — O(log n) states, O(log n) time,
* PLL without Tournament   — the [Ali+17]-style lottery composition.

The large-n rows use the count-based multiset engine, whose per-step cost
depends on the number of distinct states rather than n.

Run:  python examples/scaling_study.py  (about a minute)
"""

from repro import MultisetSimulator, PLLProtocol
from repro.analysis.scaling import fit_scaling
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.protocols.angluin import AngluinProtocol

TRIALS = 8


def mean_time(protocol_factory, n: int) -> float:
    times = []
    for trial in range(TRIALS):
        sim = MultisetSimulator(protocol_factory(n), n, seed=trial)
        sim.run_until_stabilized()
        times.append(sim.parallel_time)
    return summarize(times).mean


def main() -> None:
    rows = [
        ("angluin2006", lambda n: AngluinProtocol(), [32, 64, 128, 256]),
        ("PLL", PLLProtocol.for_population, [64, 128, 256, 512, 1024]),
        (
            "PLL[no-tournament]",
            lambda n: PLLProtocol.for_population(n, variant="no-tournament"),
            [64, 128, 256, 512, 1024],
        ),
    ]
    table = Table(["protocol", "n grid", "mean times (parallel)", "best fit"])
    for name, factory, ns in rows:
        means = [mean_time(factory, n) for n in ns]
        fit = fit_scaling(ns, means, models=("log", "log^2", "linear"))
        table.add_row(
            [
                name,
                "..".join(str(n) for n in (ns[0], ns[-1])),
                ", ".join(f"{mean:.1f}" for mean in means),
                str(fit),
            ]
        )
        print(f"measured {name}")
    print()
    print(table.render())
    print()
    print("Expected shapes: angluin ~ linear(n); PLL ~ log(n); the")
    print("no-tournament variant degrades toward log^2(n) because lottery")
    print("ties (constant probability) must wait for BackUp — the gap that")
    print("Tournament closes (Lemma 8).")


if __name__ == "__main__":
    main()
