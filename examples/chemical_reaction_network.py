#!/usr/bin/env python
"""Symmetric PLL as a chemical reaction network (CRN).

Section 4 motivates symmetric protocols with chemical reaction networks:
when two molecules collide, the reaction cannot depend on which one was
the "initiator" — identical reactants must produce identical products.
The symmetric variant of PLL is therefore directly a CRN that elects a
unique "leader molecule" from a well-mixed solution: every PLL state is a
species, every transition a bimolecular reaction.

This example runs the election on the count-based engine (the natural
representation for chemistry: species counts, not labeled molecules),
shows the J/K/F0/F1 "coin reagents" settling into exactly balanced
populations, and prints a small sample of the reaction rules.

Run:  python examples/chemical_reaction_network.py
"""

from repro import MultisetSimulator, SymmetricPLLProtocol
from repro.coins.symmetric_coin import COIN_HEAD, COIN_TAIL


def coin_census(sim) -> dict[str, int]:
    tally: dict[str, int] = {}
    for state, count in sim.state_counts().items():
        if state.coin is not None:
            tally[state.coin] = tally.get(state.coin, 0) + count
    return tally


def main() -> None:
    n = 500  # number of molecules in the solution
    protocol = SymmetricPLLProtocol.for_population(n)
    sim = MultisetSimulator(protocol, n, seed=7)

    print(f"solution of {n} identical molecules; species = PLL states")
    print("sample reactions (collision rules):")
    initial = protocol.initial_state()
    products = protocol.transition(initial, initial)
    print(f"  X + X -> {products[0].status} + {products[1].status}"
          "        (identical reactants, identical products)")

    checkpoints = [n, 5 * n, 20 * n]
    for checkpoint in checkpoints:
        sim.run(checkpoint - sim.steps)
        coins = coin_census(sim)
        heads = coins.get(COIN_HEAD, 0)
        tails = coins.get(COIN_TAIL, 0)
        print(
            f"t={sim.parallel_time:6.1f}: species={len(sim.state_counts()):4d} "
            f"leaders={sim.leader_count:3d}  coin reagents F0={heads} F1={tails}"
            f"  (balanced: {heads == tails})"
        )

    sim.run_until_stabilized()
    coins = coin_census(sim)
    print(
        f"t={sim.parallel_time:6.1f}: exactly one leader molecule remains; "
        f"F0={coins.get(COIN_HEAD, 0)} F1={coins.get(COIN_TAIL, 0)} "
        "(the fairness invariant #F0 == #F1 held throughout)"
    )


if __name__ == "__main__":
    main()
