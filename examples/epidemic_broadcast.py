#!/usr/bin/env python
"""One-way epidemic as anonymous gossip broadcast, vs the Lemma 2 bound.

The one-way epidemic is PLL's workhorse: the maximum of any value spreads
through a sub-population in O(log n) parallel time.  Outside the paper, it
is the canonical model for rumor spreading in anonymous gossip networks.
This example broadcasts from one source, records the infection curve, and
compares the measured completion-time tail with the analytical bound
``P(incomplete after 2 ceil(n/n') t steps) <= n e^(-t/n)`` (Lemma 2).

Run:  python examples/epidemic_broadcast.py
"""

import numpy as np

from repro.epidemic import (
    lemma2_failure_bound,
    simulate_epidemic,
)

N = 512
TRIALS = 200


def main() -> None:
    print(f"broadcasting a rumor from one agent to all {N} by random gossip")
    completions = []
    for trial in range(TRIALS):
        result = simulate_epidemic(N, root=0, seed=trial)
        completions.append(result.completion_step)
    completions_arr = np.array(completions)

    mean_parallel = completions_arr.mean() / N
    print(
        f"mean completion: {mean_parallel:.1f} parallel time "
        f"(~2 ln n = {2 * np.log(N):.1f}; [Ang+06] predicts Theta(log n))"
    )

    print()
    print("completion-time tail vs Lemma 2:")
    print(f"{'steps':>8}  {'measured P(incomplete)':>24}  {'Lemma 2 bound':>14}")
    for t_over_n in (3.0, 5.0, 8.0, 11.0):
        horizon = int(2 * t_over_n * N)
        measured = float((completions_arr > horizon).mean())
        bound = lemma2_failure_bound(N, N, horizon)
        print(f"{horizon:>8}  {measured:>24.4f}  {bound:>14.4g}")

    # The infection curve of a single run: logistic growth.
    result = simulate_epidemic(N, root=0, seed=0)
    print()
    print("single-run infection curve (agents informed at checkpoints):")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        step = int(result.completion_step * fraction)
        print(
            f"  after {step / N:6.1f} parallel time: "
            f"{result.infected_count_at(step):4d} / {N}"
        )


if __name__ == "__main__":
    main()
