#!/usr/bin/env python
"""Towards uniform leader election: estimate m, then run PLL.

PLL is non-uniform — it must be compiled with a size knowledge
``m >= log2(n)``, ``m = Theta(log n)``.  This example removes the
assumption in practice by running a two-phase pipeline:

1. **Estimate**: the `SizeEstimationProtocol` races geometric coin flips
   and spreads the maximum level by epidemic; ``m_hat = 2*max_level + 2``
   satisfies PLL's contract with high probability.
2. **Elect**: compile PLL with the *estimated* ``m_hat`` and run it.

Folding both phases into one self-contained protocol (restarting PLL's
timers whenever the estimate grows) is genuine future work the paper
leaves open; the pipeline shows what the composition must achieve and
lets you check how well the estimator lands across population sizes.

Run:  python examples/uniform_leader_election.py
"""

import math

from repro import AgentSimulator, PLLProtocol
from repro.core.params import PLLParameters
from repro.protocols.size_estimation import SizeEstimationProtocol, m_hat_from_level


def estimate_m(n: int, seed: int) -> tuple[int, float]:
    """Phase 1: run the estimator until its output settles."""
    protocol = SizeEstimationProtocol()
    sim = AgentSimulator(protocol, n, seed=seed)
    # Everyone finished flipping and agrees on the maximum: the output
    # multiset has a single value and no agent is still flipping.
    sim.run(
        200 * n * max(1, int(math.log2(n))),
        until=lambda s: len(s.output_counts) == 1
        and all(not state.flipping for state in s.configuration()),
        check_every=64,
    )
    (level_text,) = sim.output_counts
    return m_hat_from_level(int(level_text)), sim.parallel_time


def main() -> None:
    for n in (64, 256, 1024):
        true_m = math.ceil(math.log2(n))
        (m_hat, estimate_time) = estimate_m(n, seed=n)
        ok = m_hat >= math.log2(n)
        print(
            f"n={n:5d}: estimated m_hat={m_hat:3d} "
            f"(true ceil(lg n)={true_m}, valid={ok}, "
            f"estimation took {estimate_time:.1f} parallel time)"
        )

        protocol = PLLProtocol(PLLParameters(m=m_hat))
        sim = AgentSimulator(protocol, n, seed=n + 1)
        sim.run_until_stabilized()
        print(
            f"         PLL(m_hat) elected a unique leader in "
            f"{sim.parallel_time:.1f} parallel time "
            f"(leaders={sim.leader_count})"
        )
    print()
    print("The estimate is Theta(log n) whp, so the end-to-end pipeline")
    print("keeps the O(log n) time bound — at the cost of a second phase,")
    print("which a truly uniform protocol would have to interleave.")


if __name__ == "__main__":
    main()
