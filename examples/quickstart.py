#!/usr/bin/env python
"""Quickstart: elect a leader among 256 anonymous agents with PLL.

This is the smallest end-to-end use of the library: build the protocol
with the canonical parameters for the population size, run the uniformly
random scheduler until stabilization, and inspect the outcome.

Run:  python examples/quickstart.py
"""

from repro import AgentSimulator, PLLProtocol

N = 256


def main() -> None:
    # PLL is non-uniform: it needs a rough knowledge m >= log2(n).
    # for_population picks m = ceil(log2 n), the canonical choice.
    protocol = PLLProtocol.for_population(N)
    print(f"protocol: {protocol.name}, m = {protocol.params.m} "
          f"(lmax={protocol.params.lmax}, cmax={protocol.params.cmax}, "
          f"Phi={protocol.params.phi})")

    sim = AgentSimulator(protocol, n=N, seed=2024)
    sim.run_until_stabilized()

    print(f"stabilized after {sim.steps} interactions "
          f"= {sim.parallel_time:.1f} parallel time "
          f"(Theorem 1 predicts O(log n); lg n = {N.bit_length() - 1})")
    print(f"outputs: {dict(sim.output_counts)}")

    (leader,) = sim.agents_with_output("L")
    print(f"agent {leader} is the unique leader; its state: {sim.state_of(leader)}")

    # The library tracks every distinct state reached — Lemma 3 in action.
    print(f"distinct agent states reached: {sim.distinct_states_seen()} "
          f"(Table-3 bound: {protocol.state_bound()})")


if __name__ == "__main__":
    main()
