#!/usr/bin/env python
"""Build your own population protocol on the library's engine.

The engine is protocol-agnostic: anything implementing the three-method
``Protocol`` interface gets interning, transition memoization, both
engines, hooks, traces and convergence detection for free.  This example
implements the classic *approximate majority* protocol (Angluin, Aspnes,
Eisenstat 2008) — a three-state protocol where two initial opinions fight
and the initial majority wins with high probability:

    X x Y -> B x B          (conflicting opinions cancel to 'blank')
    X x B -> X x X          (opinions recruit blanks)
    Y x B -> Y x Y

Run:  python examples/custom_protocol.py
"""

from repro import AgentSimulator, Protocol

X, Y, BLANK = "x", "y", "b"


class ApproximateMajority(Protocol):
    """Three-state approximate majority (one-way variant)."""

    name = "approximate-majority"

    def initial_state(self) -> str:
        return BLANK  # populations are loaded explicitly below

    def transition(self, initiator: str, responder: str) -> tuple[str, str]:
        if {initiator, responder} == {X, Y}:
            return BLANK, BLANK
        if BLANK in (initiator, responder):
            opinion = initiator if initiator != BLANK else responder
            if opinion != BLANK:
                return opinion, opinion
        return initiator, responder

    def output(self, state: str) -> str:
        return state

    def state_bound(self) -> int:
        return 3


def run_once(n: int, x_fraction: float, seed: int) -> str:
    protocol = ApproximateMajority()
    sim = AgentSimulator(protocol, n, seed=seed)
    x_count = int(n * x_fraction)
    sim.load_configuration([X] * x_count + [Y] * (n - x_count))
    # Phase 1: run until one opinion goes extinct ...
    sim.run(
        500 * n,
        until=lambda s: s.output_counts.get(X, 0) == 0
        or s.output_counts.get(Y, 0) == 0,
        check_every=32,
    )
    # ... then let the surviving opinion absorb the remaining blanks.
    sim.run(
        500 * n,
        until=lambda s: s.output_counts.get(BLANK, 0) == 0,
        check_every=32,
    )
    counts = sim.output_counts
    if counts.get(X, 0) == n:
        return X
    if counts.get(Y, 0) == n:
        return Y
    return "undecided"  # both opinions annihilated into blanks


def main() -> None:
    n = 300
    for x_fraction in (0.55, 0.65, 0.80):
        wins = sum(
            1 for seed in range(20) if run_once(n, x_fraction, seed) == X
        )
        print(
            f"initial X share {x_fraction:.2f}: X wins {wins}/20 runs "
            f"(majority amplification)"
        )
    print()
    print("A five-line protocol class inherits the whole toolkit:")
    print("both engines, memoized transitions, hooks, and detectors.")
    print("(A library-grade version of this protocol — plus the 4-state")
    print("exact-majority protocol — lives in repro.protocols.majority.)")


if __name__ == "__main__":
    main()
