#!/usr/bin/env python
"""Failure injection: what "stabilizing" does and does not promise.

PLL solves *stabilizing* leader election: with probability 1 the
population reaches a configuration with exactly one leader and never
changes its outputs again.  The flip side — by design — is that no rule
ever creates a leader, so if the unique leader is lost (a crash, an
adversarial reset), the population is leaderless forever.

The authors' earlier work on *loosely-stabilizing* leader election
[Sud+12] (which this paper's Lemma 2 generalizes) makes the opposite
trade: from any configuration a unique leader re-emerges quickly, and is
then held for a very long — but not infinite — time.

This example injects the same fault into both protocols and watches what
happens: we elect a leader, then reset that agent to a follower state,
then keep running.

Run:  python examples/failure_injection.py
"""

from repro import AgentSimulator, PLLProtocol
from repro.protocols.loose_stabilization import (
    LooselyStabilizingProtocol,
    LooseState,
)

N = 64
OBSERVATION = 400  # parallel time to watch after the crash


def crash_the_leader(sim, make_follower) -> None:
    """Adversarially reset the unique leader to a follower state."""
    config = sim.configuration()
    (leader_index,) = sim.agents_with_output("L")
    config[leader_index] = make_follower(config[leader_index])
    sim.load_configuration(config)


def main() -> None:
    # --- PLL: stabilizing, therefore unable to re-elect -----------------
    pll = PLLProtocol.for_population(N)
    sim = AgentSimulator(pll, N, seed=11)
    sim.run_until_stabilized()
    print(f"PLL elected a leader at {sim.parallel_time:.1f} parallel time")

    crash_the_leader(sim, lambda state: state._replace(leader=False))
    print("  ... leader crashed (reset to follower)")
    sim.run(int(OBSERVATION * N))
    print(
        f"  after {OBSERVATION} more parallel time: leaders = "
        f"{sim.leader_count}  (no re-election rule exists: leaderless forever)"
    )

    # --- loosely-stabilizing: re-elects -------------------------------
    loose = LooselyStabilizingProtocol.for_population(N)
    sim = AgentSimulator(loose, N, seed=11)
    sim.run(10_000_000, until=lambda s: s.leader_count == 1, check_every=16)
    print(
        f"\nloose-LE (tmax={loose.tmax}) elected a leader at "
        f"{sim.parallel_time:.1f} parallel time"
    )

    crash_the_leader(sim, lambda state: LooseState(False, state.timer))
    print("  ... leader crashed (reset to follower)")
    crash_step = sim.steps
    sim.run(10_000_000, until=lambda s: s.leader_count == 1, check_every=16)
    print(
        f"  re-elected a unique leader {((sim.steps - crash_step) / N):.1f} "
        "parallel time after the crash"
    )
    sim.run(int(100 * N))
    print(
        f"  still exactly {sim.leader_count} leader 100 parallel time later "
        "(holding)"
    )
    print()
    print("Stabilizing LE (PLL) buys silence-forever; loose stabilization")
    print("buys self-healing. The paper's Lemma 2 machinery underlies both.")


if __name__ == "__main__":
    main()
