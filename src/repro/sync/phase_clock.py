"""Leader-driven phase clock [AAE08] — ablation substrate.

The paper notes (Section 3.2.2) that with a unique leader the population can
be synchronized by constant-space phase clocks [AAE08], but PLL cannot
assume a unique leader and therefore uses count-up timers instead.  This
module implements the classic leader-driven phase clock so experiment E12
can compare the two synchronization primitives — an ablation of the design
choice DESIGN.md calls out.

Mechanics (following [AAE08]'s leader-as-clock-source design): the leader's
hour advances by one at *every* interaction it participates in, modulo the
ring size; it never adopts anyone else's hour.  A follower adopts its
partner's hour whenever that hour is *ahead* of its own — reachable within
half the ring going forward — so each new hour value spreads from the
leader by one-way epidemic.  A follower that sleeps through more than half
a ring is temporarily "lapped" and waits for the leader's hour to swing
back into its forward window; with a ring of ``Theta(log n)`` hours this
is a low-probability, self-healing event, which is exactly the failure
profile the original construction tolerates (and one reason PLL prefers
count-up timers when no unique leader exists).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine.protocol import Protocol
from repro.errors import ParameterError

__all__ = ["ClockState", "LeaderDrivenPhaseClock", "circular_ahead"]


def circular_ahead(a: int, b: int, ring: int) -> bool:
    """Whether hour ``a`` is strictly ahead of hour ``b`` on the ring.

    "Ahead" means reachable from ``b`` by fewer than ``ring / 2`` forward
    steps.  Antipodal or equal hours are not ahead.
    """
    diff = (a - b) % ring
    return 0 < diff < (ring + 1) // 2


class ClockState(NamedTuple):
    """(is_leader, hour, rounds): ``rounds`` counts completed ring laps."""

    is_leader: bool
    hour: int
    rounds: int


class LeaderDrivenPhaseClock(Protocol):
    """Phase clock driven by a designated leader agent.

    The initial configuration for experiments is built with
    :meth:`leader_state` for exactly one agent and :meth:`initial_state`
    (follower) for the rest — use
    :meth:`repro.engine.simulator.AgentSimulator.load_configuration`.
    """

    name = "phase-clock"

    def __init__(self, ring: int = 64) -> None:
        if ring < 4:
            raise ParameterError(f"ring size must be at least 4, got {ring}")
        self.ring = ring

    @classmethod
    def for_population(cls, n: int) -> "LeaderDrivenPhaseClock":
        """Ring sized so one lap dominates the epidemic spread time.

        The leader ticks at rate ``2/n`` per step, so a lap takes
        ``ring / 2`` parallel time; choosing ``ring = 12 ceil(lg n)`` makes
        that ``Theta(log n)`` with a constant comfortably above the
        ``~2 ln n`` one-way epidemic time, which keeps followers coherent
        with high probability.
        """
        import math

        if n < 2:
            raise ParameterError(f"population size must be at least 2, got {n}")
        return cls(ring=12 * max(1, math.ceil(math.log2(n))))

    def initial_state(self) -> ClockState:
        return ClockState(is_leader=False, hour=0, rounds=0)

    def leader_state(self) -> ClockState:
        return ClockState(is_leader=True, hour=0, rounds=0)

    def _advance(self, state: ClockState) -> ClockState:
        hour = (state.hour + 1) % self.ring
        rounds = state.rounds + (1 if hour == 0 else 0)
        return state._replace(hour=hour, rounds=rounds)

    def transition(
        self, initiator: ClockState, responder: ClockState
    ) -> tuple[ClockState, ClockState]:
        agents = [initiator, responder]
        before = (initiator, responder)
        for i in (0, 1):
            mine, other = agents[i], before[1 - i]
            if mine.is_leader:
                # The leader is the clock source: one tick per interaction,
                # never adopting.
                agents[i] = self._advance(mine)
            elif circular_ahead(other.hour, mine.hour, self.ring):
                laps = mine.rounds + (1 if other.hour < mine.hour else 0)
                agents[i] = mine._replace(hour=other.hour, rounds=laps)
        return agents[0], agents[1]

    def output(self, state: ClockState) -> str:
        return str(state.hour)

    def state_bound(self) -> int | None:
        return None  # unbounded `rounds` (an observation counter, not state)
