"""Synchronization substrates: count-up timers and phase clocks."""

from repro.sync.countup import CountUpTimerProtocol, TimerState, advance_color
from repro.sync.phase_clock import ClockState, LeaderDrivenPhaseClock, circular_ahead

__all__ = [
    "ClockState",
    "CountUpTimerProtocol",
    "LeaderDrivenPhaseClock",
    "TimerState",
    "advance_color",
    "circular_ahead",
]
