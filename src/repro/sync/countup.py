"""Standalone count-up timer synchronization (Algorithm 2, isolated).

PLL synchronizes the population with count-up timers held by the ``V_B``
agents: each timer increments a counter mod ``cmax`` at every interaction;
a rollover advances the agent's color (mod 3), and the new color spreads to
everyone else by one-way epidemic, resetting the count of ``V_B`` agents it
reaches.  Every color change raises a "tick" that drives the epoch counter.

This module isolates that primitive as a protocol of its own so it can be
studied and tested independently of leader election (experiments E4/E5 run
both this isolated form and the full PLL).  All agents here are timers —
the ``|V_B| >= 1`` requirement is trivially met.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.engine.protocol import Protocol
from repro.errors import ParameterError

__all__ = ["TimerState", "CountUpTimerProtocol", "advance_color"]


def advance_color(color: int) -> int:
    """Next color in the 3-cycle."""
    return (color + 1) % 3


class TimerState(NamedTuple):
    """State of a count-up timer agent: (count, color, ticks_seen).

    ``ticks_seen`` saturates at a small cap; it exists so experiments can
    read how many color changes an agent has been through (the analogue of
    PLL's epoch, without the cap at 4 hiding later rounds).
    """

    count: int
    color: int
    ticks_seen: int


class CountUpTimerProtocol(Protocol):
    """All-timer population running Algorithm 2's CountUp dynamics."""

    name = "countup-timer"

    def __init__(self, cmax: int, max_ticks: int = 1 << 30) -> None:
        if cmax < 1:
            raise ParameterError(f"cmax must be positive, got {cmax}")
        self.cmax = cmax
        self.max_ticks = max_ticks

    def initial_state(self) -> TimerState:
        return TimerState(count=0, color=0, ticks_seen=0)

    def transition(
        self, initiator: TimerState, responder: TimerState
    ) -> tuple[TimerState, TimerState]:
        agents = [initiator, responder]
        # Lines 23-29: every timer increments; rollover yields a new color.
        for i, agent in enumerate(agents):
            count = (agent.count + 1) % self.cmax
            if count == 0:
                agents[i] = TimerState(
                    count=0,
                    color=advance_color(agent.color),
                    ticks_seen=min(agent.ticks_seen + 1, self.max_ticks),
                )
            else:
                agents[i] = agent._replace(count=count)
        # Lines 30-34: one-way epidemic of the newer color.
        for i in (0, 1):
            other = agents[1 - i]
            mine = agents[i]
            if other.color == advance_color(mine.color):
                agents[i] = TimerState(
                    count=0,
                    color=other.color,
                    ticks_seen=min(mine.ticks_seen + 1, self.max_ticks),
                )
        return agents[0], agents[1]

    def output(self, state: TimerState) -> str:
        return str(state.color)

    def state_bound(self) -> int:
        return self.cmax * 3 * (self.max_ticks + 1)
