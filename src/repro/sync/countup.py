"""Standalone count-up timer synchronization (Algorithm 2, isolated).

PLL synchronizes the population with count-up timers held by the ``V_B``
agents: each timer increments a counter mod ``cmax`` at every interaction;
a rollover advances the agent's color (mod 3), and the new color spreads to
everyone else by one-way epidemic, resetting the count of ``V_B`` agents it
reaches.  Every color change raises a "tick" that drives the epoch counter.

This module isolates that primitive as a protocol of its own so it can be
studied and tested independently of leader election (experiments E4/E5 run
both this isolated form and the full PLL).  All agents here are timers —
the ``|V_B| >= 1`` requirement is trivially met.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.engine.protocol import Protocol
from repro.errors import ParameterError

__all__ = ["TimerState", "CountUpTimerProtocol", "advance_color"]


def advance_color(color: int) -> int:
    """Next color in the 3-cycle."""
    return (color + 1) % 3


class TimerState(NamedTuple):
    """State of a count-up timer agent: (count, color, ticks_seen).

    ``ticks_seen`` saturates at a small cap; it exists so experiments can
    read how many color changes an agent has been through (the analogue of
    PLL's epoch, without the cap at 4 hiding later rounds).
    """

    count: int
    color: int
    ticks_seen: int


class CountUpTimerProtocol(Protocol):
    """All-timer population running Algorithm 2's CountUp dynamics."""

    name = "countup-timer"

    def __init__(self, cmax: int, max_ticks: int = 1 << 30) -> None:
        if cmax < 1:
            raise ParameterError(f"cmax must be positive, got {cmax}")
        self.cmax = cmax
        self.max_ticks = max_ticks

    def initial_state(self) -> TimerState:
        return TimerState(count=0, color=0, ticks_seen=0)

    def transition(
        self, initiator: TimerState, responder: TimerState
    ) -> tuple[TimerState, TimerState]:
        agents = [initiator, responder]
        # Lines 23-29: every timer increments; rollover yields a new color.
        for i, agent in enumerate(agents):
            count = (agent.count + 1) % self.cmax
            if count == 0:
                agents[i] = TimerState(
                    count=0,
                    color=advance_color(agent.color),
                    ticks_seen=min(agent.ticks_seen + 1, self.max_ticks),
                )
            else:
                agents[i] = agent._replace(count=count)
        # Lines 30-34: one-way epidemic of the newer color.
        for i in (0, 1):
            other = agents[1 - i]
            mine = agents[i]
            if other.color == advance_color(mine.color):
                agents[i] = TimerState(
                    count=0,
                    color=other.color,
                    ticks_seen=min(mine.ticks_seen + 1, self.max_ticks),
                )
        return agents[0], agents[1]

    def output(self, state: TimerState) -> str:
        return str(state.color)

    def state_bound(self) -> int:
        return self.cmax * 3 * (self.max_ticks + 1)

    def compile_kernel(self):
        """(count, color, ticks_seen) as stride-packed fields.

        ``count`` cycles through ``cmax`` values — the exact shape the
        field kernel exists for (a pair table over ``cmax * 3``-state
        products would be cold almost everywhere).
        """
        from repro.engine.kernel.spec import Field, KernelSpec

        cmax, max_ticks = self.cmax, self.max_ticks

        def delta(a, b):
            for side in (a, b):
                bumped = (side["count"] + 1) % cmax
                roll = bumped == 0
                side["count"] = bumped
                side["color"] = np.where(
                    roll, (side["color"] + 1) % 3, side["color"]
                )
                side["ticks"] = np.where(
                    roll,
                    np.minimum(side["ticks"] + 1, max_ticks),
                    side["ticks"],
                )
            # One-way epidemic of the newer color: both directions are
            # checked against the post-rollover snapshot, which is exact
            # because they cannot both hold (2 != 0 mod 3) and adoption
            # equalizes the colors (see countup_module for the scalar
            # form of the same argument).
            color0, color1 = a["color"], b["color"]
            adopt0 = color1 == (color0 + 1) % 3
            adopt1 = color0 == (color1 + 1) % 3
            a["color"] = np.where(adopt0, color1, color0)
            b["color"] = np.where(adopt1, color0, color1)
            a["count"] = np.where(adopt0, 0, a["count"])
            b["count"] = np.where(adopt1, 0, b["count"])
            a["ticks"] = np.where(
                adopt0, np.minimum(a["ticks"] + 1, max_ticks), a["ticks"]
            )
            b["ticks"] = np.where(
                adopt1, np.minimum(b["ticks"] + 1, max_ticks), b["ticks"]
            )
            return a, b

        return KernelSpec(
            fields=(
                Field("count", cmax),
                Field("color", 3),
                Field("ticks", max_ticks + 1),
            ),
            to_fields=lambda state: (
                state.count,
                state.color,
                state.ticks_seen,
            ),
            from_fields=lambda values: TimerState(
                count=int(values[0]),
                color=int(values[1]),
                ticks_seen=int(values[2]),
            ),
            delta=delta,
            features={"color": lambda cols: cols["color"]},
            cache_key=("countup-timer", cmax, max_ticks),
        )
