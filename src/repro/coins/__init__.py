"""Coin-flip constructs for both the asymmetric and symmetric PP models."""

from repro.coins.role_coin import (
    HEADS,
    TAILS,
    CoinSequenceRecorder,
    role_bit,
)
from repro.coins.symmetric_coin import (
    COIN_HEAD,
    COIN_J,
    COIN_K,
    COIN_STATUSES,
    COIN_TAIL,
    coin_counts_balanced,
    coin_flip_value,
    pair_coins,
)

__all__ = [
    "COIN_HEAD",
    "COIN_J",
    "COIN_K",
    "COIN_STATUSES",
    "COIN_TAIL",
    "CoinSequenceRecorder",
    "HEADS",
    "TAILS",
    "coin_counts_balanced",
    "coin_flip_value",
    "pair_coins",
    "role_bit",
]
