"""Interaction-role coin flips (the asymmetric model's randomness source).

The paper extracts fair coin flips from the uniformly random scheduler: when
an agent participates in an interaction, "head" means it was the initiator
and "tail" that it was the responder (Section 3.1.1).  At every step each
agent is the initiator with probability ``1/n`` and the responder with
probability ``1/n``, so conditioned on participating, the bit is fair.

Independence requires care: the two participants of one interaction see
*opposite* bits, so a protocol must consume at most one coin per interaction
(PLL flips only when a leader meets a follower — Lemma 7's argument).  The
helpers here make that reasoning executable and testable.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["role_bit", "HEADS", "TAILS", "CoinSequenceRecorder"]

#: Bit value recorded for an initiator ("head" in the paper).
HEADS = 1

#: Bit value recorded for a responder ("tail" in the paper).
TAILS = 0


def role_bit(is_initiator: bool) -> int:
    """The coin value an agent observes from its interaction role."""
    return HEADS if is_initiator else TAILS


class CoinSequenceRecorder:
    """Simulator hook recording each agent's role-bit sequence.

    ``sequences[v]`` is the list of bits agent ``v`` observed, in order.
    ``pairs_per_step`` retains, per step, which two agents shared the step —
    the anti-correlation witness (the two bits of one step always differ).
    Used by tests to confirm fairness and the one-coin-per-interaction
    discipline.
    """

    def __init__(self) -> None:
        self.sequences: dict[int, list[int]] = defaultdict(list)
        self.pairs_per_step: list[tuple[int, int]] = []

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        self.sequences[u].append(HEADS)
        self.sequences[v].append(TAILS)
        self.pairs_per_step.append((u, v))

    def heads_fraction(self, agent: int) -> float:
        """Empirical fraction of heads agent ``agent`` observed."""
        bits = self.sequences.get(agent, [])
        if not bits:
            return 0.0
        return sum(bits) / len(bits)

    def longest_head_run(self, agent: int) -> int:
        """Longest run of consecutive heads (the QuickElimination statistic)."""
        longest = current = 0
        for bit in self.sequences.get(agent, []):
            if bit == HEADS:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        return longest
