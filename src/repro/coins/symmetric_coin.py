"""Fair, independent coin flips for the *symmetric* model (Section 4).

A symmetric protocol may not use the initiator/responder distinction, so
the role-bit trick is unavailable.  Section 4 proposes the first
implementation of totally independent and fair coin flips in the symmetric
PP model:

Every follower carries a coin status in ``{J, K, F0, F1}``; a follower is
born with status ``J``.  When two followers meet, their statuses update by

    ``J x J -> K x K``,  ``K x K -> J x J``,  ``J x K -> F0 x F1``.

These rules create ``F0`` and ``F1`` followers strictly in pairs, so the
populations of ``F0`` and ``F1`` are *always exactly equal* — the invariant
that makes a leader's flip fair: a leader meeting a follower whose coin
status is ``F0`` reads "head", ``F1`` reads "tail"; since its partner is
uniform over all agents, the conditional head probability is exactly 1/2,
and successive flips are independent because partner draws are independent.

The mixed-pair update is deliberately *role-agnostic* (the ``J`` agent
becomes ``F0`` whichever side initiated), so the construct satisfies the
symmetry property and is usable inside symmetric protocols.  Coin statuses
are stored as plain strings to keep protocol states cheap and hashable.
"""

from __future__ import annotations

__all__ = [
    "COIN_J",
    "COIN_K",
    "COIN_HEAD",
    "COIN_TAIL",
    "COIN_STATUSES",
    "pair_coins",
    "coin_flip_value",
    "coin_counts_balanced",
]

#: Unsettled coin statuses.
COIN_J = "J"
COIN_K = "K"

#: Settled coin statuses: ``F0`` reads as head, ``F1`` as tail.
COIN_HEAD = "F0"
COIN_TAIL = "F1"

#: All valid coin statuses.
COIN_STATUSES = (COIN_J, COIN_K, COIN_HEAD, COIN_TAIL)


def pair_coins(a: str, b: str) -> tuple[str, str]:
    """Apply the Section 4 follower/follower coin rules to a pair.

    The result is returned in argument order.  Pairs not matched by a rule
    are unchanged (``F0``/``F1`` are absorbing; a settled coin meeting an
    unsettled one does nothing).
    """
    if a == COIN_J and b == COIN_J:
        return COIN_K, COIN_K
    if a == COIN_K and b == COIN_K:
        return COIN_J, COIN_J
    if a == COIN_J and b == COIN_K:
        return COIN_HEAD, COIN_TAIL
    if a == COIN_K and b == COIN_J:
        return COIN_TAIL, COIN_HEAD
    return a, b


def coin_flip_value(status: str | None) -> int | None:
    """Coin value a leader reads from a follower's status.

    ``1`` (head) for ``F0``, ``0`` (tail) for ``F1``, ``None`` when the
    follower's coin is not yet settled (no flip happens).
    """
    if status == COIN_HEAD:
        return 1
    if status == COIN_TAIL:
        return 0
    return None


def coin_counts_balanced(statuses: list[str | None]) -> bool:
    """The fairness invariant: ``#F0 == #F1`` (checked by tests/invariants)."""
    heads = sum(1 for status in statuses if status == COIN_HEAD)
    tails = sum(1 for status in statuses if status == COIN_TAIL)
    return heads == tails
