"""Distribution-level checks used by the per-lemma experiments.

* Lemma 7 needs the survivor-count law ``P(#survivors = i) <= 2^(1-i)``.
* The Tournament analysis needs nonces to be uniform on ``[0, 2^Phi)``.
* The coin constructions need head frequencies indistinguishable from 1/2.

Statistical tests are implemented with plain numpy (a normal-approximation
binomial test and a chi-square statistic with a conservative threshold) so
the core library does not depend on scipy; the test suite cross-checks the
chi-square against ``scipy.stats`` where available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "survivor_law_violations",
    "BinomialCheck",
    "check_fair_coin",
    "chi_square_uniform",
    "geometric_heads_pmf",
]


def survivor_law_violations(
    distribution: Mapping[int, float],
    trials: int,
    slack_sigmas: float = 3.0,
) -> list[int]:
    """Survivor counts whose empirical frequency exceeds the Lemma 7 bound.

    ``distribution`` maps survivor count ``i`` to empirical frequency over
    ``trials`` runs.  The paper bounds ``P(#survivors = i) <= 2^(1-i)`` for
    ``i >= 2``; with finite trials we allow ``slack_sigmas`` standard errors
    above the bound before flagging ``i`` as violated.  Returns the list of
    violated ``i`` (empty = consistent with the paper).
    """
    if trials < 1:
        raise ParameterError("trials must be positive")
    violations = []
    for survivors, frequency in distribution.items():
        if survivors < 2:
            continue
        bound = 2.0 ** (1 - survivors)
        stderr = math.sqrt(bound * (1 - bound) / trials)
        if frequency > bound + slack_sigmas * stderr:
            violations.append(survivors)
    return sorted(violations)


@dataclass(frozen=True)
class BinomialCheck:
    """Result of a normal-approximation two-sided binomial test."""

    successes: int
    trials: int
    expected_p: float
    z_score: float

    @property
    def frequency(self) -> float:
        return self.successes / self.trials

    def consistent(self, z_threshold: float = 4.0) -> bool:
        """Whether the observation is within ``z_threshold`` sigmas."""
        return abs(self.z_score) <= z_threshold


def check_fair_coin(successes: int, trials: int, p: float = 0.5) -> BinomialCheck:
    """Normal-approximation test of ``successes ~ Binomial(trials, p)``."""
    if trials < 1:
        raise ParameterError("trials must be positive")
    if not 0 < p < 1:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    expected = trials * p
    sigma = math.sqrt(trials * p * (1 - p))
    z_score = (successes - expected) / sigma if sigma else 0.0
    return BinomialCheck(
        successes=successes, trials=trials, expected_p=p, z_score=z_score
    )


def chi_square_uniform(counts: Sequence[int]) -> float:
    """Chi-square statistic of observed counts against the uniform law.

    Degrees of freedom are ``len(counts) - 1``; a value below
    ``dof + 4 * sqrt(2 * dof)`` (about four standard deviations of the
    chi-square distribution) is comfortably consistent with uniformity.
    """
    if len(counts) < 2:
        raise ParameterError("need at least two categories")
    observed = np.asarray(counts, dtype=float)
    total = observed.sum()
    if total == 0:
        raise ParameterError("need at least one observation")
    expected = total / len(observed)
    return float(((observed - expected) ** 2 / expected).sum())


def geometric_heads_pmf(level: int) -> float:
    """P(a QuickElimination player reaches exactly ``level`` heads).

    The number of heads before the first tail is geometric:
    ``P(levelQ = j) = 2^-(j+1)``.  Used to validate the coin-flip phase of
    Algorithm 3 against its intended distribution.
    """
    if level < 0:
        raise ParameterError("level must be non-negative")
    return 2.0 ** -(level + 1)
