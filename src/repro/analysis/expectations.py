"""Closed-form expected values for validation.

Where a process admits an exact expectation, measuring against it is a
far stronger check than fitting growth shapes.  These formulas back the
engine-validation tests and the E1/E2 experiments.
"""

from __future__ import annotations

from repro.errors import ParameterError

__all__ = [
    "angluin_expected_parallel_time",
    "pairwise_meeting_expected_parallel_time",
    "coupon_collector_expected_parallel_time",
    "harmonic",
]


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n``."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    return sum(1.0 / k for k in range(1, n + 1))


def angluin_expected_parallel_time(n: int) -> float:
    """Exact expected stabilization time of the 2-state protocol.

    With ``k`` leaders, a leader–leader meeting occurs with probability
    ``C(k,2)/C(n,2)`` per step, so the expected number of steps is

        ``sum_{k=2..n} C(n,2)/C(k,2) = n(n-1) sum_{k=2..n} 1/(k(k-1))
          = n(n-1) (1 - 1/n) = (n-1)^2``,

    i.e. ``(n-1)^2 / n`` parallel time — the ``Theta(n)`` of Table 1 with
    its exact constant.
    """
    if n < 1:
        raise ParameterError(f"population size must be positive, got {n}")
    return (n - 1) ** 2 / n


def pairwise_meeting_expected_parallel_time(n: int) -> float:
    """Expected parallel time for two *specific* agents to meet.

    A given unordered pair interacts with probability ``2/(n(n-1))`` per
    step: expected ``n(n-1)/2`` steps = ``(n-1)/2`` parallel time.  This
    is the last-two-leaders bottleneck behind every ``O(n)`` fallback in
    the paper (Lemma 10, line 58).
    """
    if n < 2:
        raise ParameterError(f"need at least 2 agents, got {n}")
    return (n - 1) / 2


def coupon_collector_expected_parallel_time(n: int) -> float:
    """Exact expected parallel time until every agent has interacted.

    Let ``E_j`` be the expected remaining steps with ``j`` agents still
    untouched.  A step touches two untouched agents with probability
    ``C(j,2)/C(n,2)``, exactly one with probability ``j(n-j)/C(n,2)``,
    and none otherwise, giving the recurrence

        ``E_j = (1 + p1 E_{j-1} + p2 E_{j-2}) / (p1 + p2)``.

    The value is ``~ (ln n)/2 + O(1)`` parallel time — the floor behind
    the ``Omega(log n)`` intuition in Section 1 (every agent starts in
    the same leader state, so no agent can become a follower before its
    first interaction).
    """
    if n < 2:
        raise ParameterError(f"need at least 2 agents, got {n}")
    total_pairs = n * (n - 1) / 2
    expected = [0.0] * (n + 1)  # expected[j] = E_j
    for j in range(1, n + 1):
        p_two = (j * (j - 1) / 2) / total_pairs
        p_one = (j * (n - j)) / total_pairs
        touch = p_one + p_two
        carry_one = p_one * expected[j - 1]
        carry_two = p_two * expected[j - 2] if j >= 2 else 0.0
        expected[j] = (1.0 + carry_one + carry_two) / touch
    return expected[n] / n
