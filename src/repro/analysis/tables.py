"""Plain-text table rendering for experiment reports.

The paper's evaluation artifacts are tables; the experiments print the same
row structure (and EXPERIMENTS.md records them).  No plotting dependencies:
aligned monospace text and GitHub-flavoured markdown are the two output
formats.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import ParameterError

__all__ = ["Table", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly formatting: floats get 4 significant digits."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class Table:
    """A simple column-ordered table of stringifiable cells."""

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ParameterError("a table needs at least one column")
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [format_value(value) for value in values]
        if len(row) != len(self.headers):
            raise ParameterError(
                f"row has {len(row)} cells for {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_record(self, record: Mapping[str, object]) -> None:
        """Add a row from a mapping keyed by header names."""
        self.add_row([record.get(header, "") for header in self.headers])

    @classmethod
    def from_records(
        cls, headers: Sequence[str], records: Iterable[Mapping[str, object]]
    ) -> "Table":
        table = cls(headers)
        for record in records:
            table.add_record(record)
        return table

    def render(self) -> str:
        """Aligned monospace rendering."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(self.headers)),
            "  ".join("-" * widths[i] for i in range(len(self.headers))),
        ]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [
            "| " + " | ".join(self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
