"""Descriptive statistics for experiment measurements.

Numpy-only (no scipy hard dependency): confidence intervals use the normal
approximation, adequate for the trial counts the experiments run, with a
bootstrap alternative for small or skewed samples.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "SampleSummary",
    "summarize",
    "bootstrap_ci",
    "ks_critical_value",
    "ks_statistic",
    "tail_frequency",
    "count_distribution",
]


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    ci95_low: float
    ci95_high: float
    median: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.3g} ± {(self.ci95_high - self.ci95_low) / 2:.2g} "
            f"(median {self.median:.3g}, k={self.count})"
        )


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Summary statistics with a normal-approximation 95% CI on the mean."""
    if len(samples) == 0:
        raise ParameterError("cannot summarize an empty sample")
    data = np.asarray(samples, dtype=float)
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if len(data) > 1 else 0.0
    half_width = 1.96 * std / math.sqrt(len(data)) if len(data) > 1 else 0.0
    return SampleSummary(
        count=len(data),
        mean=mean,
        std=std,
        ci95_low=mean - half_width,
        ci95_high=mean + half_width,
        median=float(np.median(data)),
        minimum=float(data.min()),
        maximum=float(data.max()),
    )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``."""
    if len(samples) == 0:
        raise ParameterError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ParameterError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(samples, dtype=float)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(data), size=(resamples, len(data)))
    estimates = np.array([statistic(data[row]) for row in indices])
    alpha = (1 - confidence) / 2
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1 - alpha)),
    )


def ks_statistic(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (sup distance of ECDFs).

    Numpy-only, matching this module's no-scipy policy.  Used by the
    engine-agreement tests: the three simulation engines realize the same
    Markov chain, so their stabilization-time samples must look drawn
    from one distribution.
    """
    if len(first) == 0 or len(second) == 0:
        raise ParameterError("KS statistic needs two non-empty samples")
    xs = np.sort(np.asarray(first, dtype=float))
    ys = np.sort(np.asarray(second, dtype=float))
    grid = np.concatenate([xs, ys])
    cdf_x = np.searchsorted(xs, grid, side="right") / len(xs)
    cdf_y = np.searchsorted(ys, grid, side="right") / len(ys)
    return float(np.abs(cdf_x - cdf_y).max())


def ks_critical_value(m: int, n: int, alpha: float = 0.001) -> float:
    """Asymptotic two-sample KS rejection threshold at level ``alpha``.

    ``D > c(alpha) * sqrt((m + n) / (m * n))`` rejects equality, with
    ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` (e.g. ``c ≈ 1.95`` at
    ``alpha = 0.001``).  The agreement tests run at a strict ``alpha`` so
    fixed-seed samples sit comfortably inside the acceptance region.
    """
    if m < 1 or n < 1:
        raise ParameterError("KS critical value needs positive sample sizes")
    if not 0 < alpha < 1:
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
    return math.sqrt(-math.log(alpha / 2) / 2) * math.sqrt((m + n) / (m * n))


def tail_frequency(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold`` (empirical tail)."""
    if len(samples) == 0:
        raise ParameterError("cannot compute tail of an empty sample")
    data = np.asarray(samples, dtype=float)
    return float((data > threshold).mean())


def count_distribution(values: Iterable[int]) -> dict[int, float]:
    """Empirical PMF of integer-valued observations (e.g. survivor counts)."""
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        raise ParameterError("cannot build a distribution from no observations")
    return {value: count / total for value, count in sorted(counts.items())}
