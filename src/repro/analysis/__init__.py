"""Statistics, scaling fits, distribution checks, and table rendering."""

from repro.analysis.expectations import (
    angluin_expected_parallel_time,
    coupon_collector_expected_parallel_time,
    harmonic,
    pairwise_meeting_expected_parallel_time,
)
from repro.analysis.distributions import (
    BinomialCheck,
    check_fair_coin,
    chi_square_uniform,
    geometric_heads_pmf,
    survivor_law_violations,
)
from repro.analysis.scaling import MODELS, ModelFit, ScalingFit, fit_model, fit_scaling
from repro.analysis.stats import (
    SampleSummary,
    bootstrap_ci,
    count_distribution,
    summarize,
    tail_frequency,
)
from repro.analysis.tables import Table, format_value

__all__ = [
    "BinomialCheck",
    "MODELS",
    "angluin_expected_parallel_time",
    "coupon_collector_expected_parallel_time",
    "harmonic",
    "pairwise_meeting_expected_parallel_time",
    "ModelFit",
    "SampleSummary",
    "ScalingFit",
    "Table",
    "bootstrap_ci",
    "check_fair_coin",
    "chi_square_uniform",
    "count_distribution",
    "fit_model",
    "fit_scaling",
    "format_value",
    "geometric_heads_pmf",
    "summarize",
    "survivor_law_violations",
    "tail_frequency",
]
