"""Asymptotic-shape fitting for measured time/state curves.

Table 1 compares protocols by asymptotic class (``O(log n)``, ``O(n)``,
``O(log^2 n)``, ...).  To reproduce the *shape* of those rows empirically,
this module fits one-parameter models ``y = c * f(n)`` through the origin
by least squares and selects the model with the smallest normalized RMSE.
A one-parameter family is deliberate: with measurements at a handful of
``n`` values, richer families overfit and every protocol looks like every
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["MODELS", "ModelFit", "ScalingFit", "fit_model", "fit_scaling"]

#: Candidate one-parameter growth models ``f(n)``.
MODELS: dict[str, Callable[[float], float]] = {
    "const": lambda n: 1.0,
    "loglog": lambda n: math.log2(max(math.log2(n), 1.0000001)),
    "log": lambda n: math.log2(n),
    "log^2": lambda n: math.log2(n) ** 2,
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: float(n),
    "nlogn": lambda n: n * math.log2(n),
}


@dataclass(frozen=True)
class ModelFit:
    """Least-squares fit of ``y = c * f(n)`` for one model."""

    model: str
    coefficient: float
    nrmse: float  # RMSE / mean(y): scale-free comparison across models

    def predict(self, n: float) -> float:
        return self.coefficient * MODELS[self.model](n)


@dataclass(frozen=True)
class ScalingFit:
    """All model fits for one curve, ranked by normalized RMSE."""

    fits: tuple[ModelFit, ...]

    @property
    def best(self) -> ModelFit:
        return self.fits[0]

    def fit_for(self, model: str) -> ModelFit:
        for fit in self.fits:
            if fit.model == model:
                return fit
        raise ParameterError(f"model {model!r} was not fitted")

    def __str__(self) -> str:
        best = self.best
        return f"~ {best.coefficient:.3g} * {best.model}(n) (nrmse {best.nrmse:.2g})"


def fit_model(
    ns: Sequence[float], ys: Sequence[float], model: str
) -> ModelFit:
    """Fit ``y = c * f(n)`` by least squares through the origin."""
    if model not in MODELS:
        raise ParameterError(f"unknown model {model!r}; choose from {list(MODELS)}")
    if len(ns) != len(ys) or len(ns) == 0:
        raise ParameterError("ns and ys must be equal-length and non-empty")
    if any(n < 2 for n in ns):
        raise ParameterError("population sizes must be >= 2 for scaling fits")
    f = np.array([MODELS[model](n) for n in ns], dtype=float)
    y = np.asarray(ys, dtype=float)
    denom = float((f * f).sum())
    coefficient = float((f * y).sum() / denom) if denom else 0.0
    residuals = y - coefficient * f
    rmse = math.sqrt(float((residuals**2).mean()))
    mean_y = float(np.abs(y).mean())
    nrmse = rmse / mean_y if mean_y else math.inf
    return ModelFit(model=model, coefficient=coefficient, nrmse=nrmse)


def fit_scaling(
    ns: Sequence[float],
    ys: Sequence[float],
    models: Sequence[str] | None = None,
) -> ScalingFit:
    """Fit every candidate model and rank by normalized RMSE."""
    chosen = tuple(models) if models is not None else tuple(MODELS)
    fits = sorted(
        (fit_model(ns, ys, model) for model in chosen),
        key=lambda fit: fit.nrmse,
    )
    return ScalingFit(fits=tuple(fits))
