"""Majority protocols — the other canonical population-protocol problem.

Leader election and majority are the two benchmark problems of the PP
literature (several of the paper's cited works — [AAG18], [Bil+17],
[ER18] — are majority papers).  This module provides the two classic
constructions so the toolkit covers both problems:

* :class:`ApproximateMajority` — the 3-state protocol of Angluin, Aspnes
  and Eisenstat (2008): conflicting opinions annihilate into blanks,
  opinions recruit blanks.  Converges in ``O(log n)`` parallel time and
  decides the initial majority with high probability when the margin is
  ``Omega(sqrt(n log n))``.
* :class:`ExactMajority` — the 4-state protocol (Draief–Vojnović /
  Bénézit et al.): strong opinions annihilate pairwise into weak
  opinions, weak opinions follow strong ones.  Always correct (even for
  margin 1) but ``Theta(n log n)``-ish slow — the exactness/speed
  trade-off mirrors Table 1's state/time trade-off for leader election.

Outputs are the opinion symbols ``"x"`` / ``"y"`` (weak states output the
opinion they currently lean towards).
"""

from __future__ import annotations

import numpy as np

from repro.engine.protocol import Protocol

__all__ = ["ApproximateMajority", "ExactMajority", "OPINION_X", "OPINION_Y", "BLANK"]

OPINION_X = "x"
OPINION_Y = "y"
BLANK = "b"

#: Weak (follower) forms of the two opinions in the exact protocol.
WEAK_X = "wx"
WEAK_Y = "wy"


class ApproximateMajority(Protocol):
    """Three-state approximate majority (one-way variant, AAE 2008)."""

    name = "approximate-majority"

    def initial_state(self) -> str:
        return BLANK  # load opinions explicitly via load_configuration

    def transition(self, initiator: str, responder: str) -> tuple[str, str]:
        if {initiator, responder} == {OPINION_X, OPINION_Y}:
            return BLANK, BLANK
        if initiator == BLANK and responder in (OPINION_X, OPINION_Y):
            return responder, responder
        if responder == BLANK and initiator in (OPINION_X, OPINION_Y):
            return initiator, initiator
        return initiator, responder

    def output(self, state: str) -> str:
        return state

    def state_bound(self) -> int:
        return 3

    def is_symmetric(self) -> bool:
        return True  # equal states never match an asymmetric rule

    def phase_probe(self):
        """Opinion occupancy: the annihilate-then-recruit dynamics."""
        from repro.telemetry.probe import PhaseProbe

        def count_of(symbol):
            return lambda counts, n: counts.get(symbol, 0)

        return PhaseProbe(
            {
                "x": count_of(OPINION_X),
                "y": count_of(OPINION_Y),
                "blank": count_of(BLANK),
            }
        )

    def compile_kernel(self):
        """Opinion field ``b/x/y -> 0/1/2``; lowers to a pair table."""
        from repro.engine.kernel.spec import Field, KernelSpec

        order = (BLANK, OPINION_X, OPINION_Y)
        codes = {symbol: code for code, symbol in enumerate(order)}

        def delta(a, b):
            mine, theirs = a["opinion"], b["opinion"]
            conflict = (mine + theirs == 3) & (mine != theirs) & (mine > 0)
            recruit0 = (mine == 0) & (theirs > 0)
            recruit1 = (theirs == 0) & (mine > 0)
            a["opinion"] = np.where(
                conflict, 0, np.where(recruit0, theirs, mine)
            )
            b["opinion"] = np.where(
                conflict, 0, np.where(recruit1, mine, theirs)
            )
            return a, b

        return KernelSpec(
            fields=(Field("opinion", 3),),
            to_fields=lambda state: (codes[state],),
            from_fields=lambda values: order[values[0]],
            delta=delta,
            features={"opinion": lambda cols: cols["opinion"]},
            cache_key=("approximate-majority",),
        )


class ExactMajority(Protocol):
    """Four-state exact majority: always decides the true majority.

    Strong opinions (``x``/``y``) annihilate into weak ones; weak
    opinions (``wx``/``wy``) flip to follow any strong opinion they meet.
    The sign of the strong-opinion difference is invariant, so the last
    surviving strong opinion is the initial majority and eventually
    converts every weak agent.  Ties (margin 0) end with no strong agents
    and weak agents frozen at their last lean — detectable but undecided,
    as the 4-state protocol inherently is.
    """

    name = "exact-majority"

    def initial_state(self) -> str:
        return WEAK_X  # load opinions explicitly via load_configuration

    def transition(self, initiator: str, responder: str) -> tuple[str, str]:
        pair = {initiator, responder}
        if pair == {OPINION_X, OPINION_Y}:
            return WEAK_X, WEAK_Y  # annihilation preserves the difference
        if initiator in (OPINION_X, OPINION_Y) and responder in (WEAK_X, WEAK_Y):
            return initiator, WEAK_X if initiator == OPINION_X else WEAK_Y
        if responder in (OPINION_X, OPINION_Y) and initiator in (WEAK_X, WEAK_Y):
            return WEAK_X if responder == OPINION_X else WEAK_Y, responder
        return initiator, responder

    def output(self, state: str) -> str:
        if state in (OPINION_X, WEAK_X):
            return OPINION_X
        return OPINION_Y

    def state_bound(self) -> int:
        return 4

    def phase_probe(self):
        """Strong/weak occupancy: annihilation then follow dynamics."""
        from repro.telemetry.probe import PhaseProbe

        def count_of(symbol):
            return lambda counts, n: counts.get(symbol, 0)

        return PhaseProbe(
            {
                "strong_x": count_of(OPINION_X),
                "strong_y": count_of(OPINION_Y),
                "weak_x": count_of(WEAK_X),
                "weak_y": count_of(WEAK_Y),
            }
        )

    def compile_kernel(self):
        """Strong/weak opinions ``x/y/wx/wy -> 0..3``; pair-table mode."""
        from repro.engine.kernel.spec import Field, KernelSpec

        order = (OPINION_X, OPINION_Y, WEAK_X, WEAK_Y)
        codes = {symbol: code for code, symbol in enumerate(order)}

        def delta(a, b):
            mine, theirs = a["opinion"], b["opinion"]
            strong0, strong1 = mine < 2, theirs < 2
            conflict = strong0 & strong1 & (mine != theirs)
            follow1 = strong0 & ~strong1
            follow0 = strong1 & ~strong0
            a["opinion"] = np.where(
                conflict, 2, np.where(follow0, theirs + 2, mine)
            )
            b["opinion"] = np.where(
                conflict, 3, np.where(follow1, mine + 2, theirs)
            )
            return a, b

        return KernelSpec(
            fields=(Field("opinion", 4),),
            to_fields=lambda state: (codes[state],),
            from_fields=lambda values: order[values[0]],
            delta=delta,
            features={"lean": lambda cols: cols["opinion"] % 2},
            cache_key=("exact-majority",),
        )
