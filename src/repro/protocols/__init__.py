"""Baselines (Table 1 rows) and paper-adjacent extension protocols."""

from repro.protocols.angluin import AngluinProtocol
from repro.protocols.fast_nonce import FastNonceProtocol, FastNonceState
from repro.protocols.loose_stabilization import (
    LooselyStabilizingProtocol,
    LooseState,
)
from repro.protocols.lottery import lottery_protocol
from repro.protocols.majority import ApproximateMajority, ExactMajority
from repro.protocols.size_estimation import (
    SizeEstimateState,
    SizeEstimationProtocol,
    m_hat_from_level,
)

__all__ = [
    "AngluinProtocol",
    "ApproximateMajority",
    "ExactMajority",
    "FastNonceProtocol",
    "FastNonceState",
    "LooselyStabilizingProtocol",
    "LooseState",
    "SizeEstimateState",
    "SizeEstimationProtocol",
    "lottery_protocol",
    "m_hat_from_level",
]
