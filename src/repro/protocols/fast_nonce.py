"""Fast leader election with large random nonces, in the spirit of [MST18].

Michail, Spirakis and Theofilatos [MST18] achieve ``O(log n)`` expected
time by letting agents gamble on large random values — buying time
optimality with a super-poly-logarithmic state count (Table 1's
``O(n)``-states row).  This baseline reproduces that profile:

* every agent assembles a ``bits``-long uniform nonce from its interaction
  roles (one bit per interaction while assembling);
* finished agents spread the maximum nonce by one-way epidemic; observing
  a larger nonce demotes a leader;
* equal-nonce leaders resolve by pairwise elimination ([Ang+06]) — the
  probability-1 backstop.

With ``bits = 3 ceil(lg n)`` the collision probability among nonces is at
most ``n^2 2^(-bits) <= 1/n``, so the backstop contributes ``O(1)``
expected parallel time and the total is ``O(log n)`` — with ``2^bits =
Theta(n^3)`` states.

Fidelity note (DESIGN.md, substitutions): when two assembling agents meet,
*both* append their role bit, so the two bits of that step are opposite.
Each agent's nonce is still marginally uniform; cross-agent nonces are not
fully independent, but shared-step bits make the pair *differ* at that
position, which only lowers the collision probability the analysis needs.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.engine.protocol import FOLLOWER, LEADER, LeaderElectionProtocol
from repro.errors import ParameterError

__all__ = ["FastNonceState", "FastNonceProtocol"]


class FastNonceState(NamedTuple):
    """(leader, bits_done, nonce); an agent is "finished" at full bits."""

    leader: bool
    bits_done: int
    nonce: int


class FastNonceProtocol(LeaderElectionProtocol):
    """O(poly n) states, O(log n) expected time (MST18-style)."""

    monotone_leader = True

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ParameterError(f"nonce length must be positive, got {bits}")
        self.bits = bits
        self.name = f"fast-nonce[{bits}b]"

    @classmethod
    def for_population(cls, n: int) -> "FastNonceProtocol":
        """Canonical sizing: ``bits = 3 ceil(lg n)`` (collision prob <= 1/n)."""
        if n < 2:
            raise ParameterError(f"population size must be at least 2, got {n}")
        return cls(bits=3 * math.ceil(math.log2(n)))

    def initial_state(self) -> FastNonceState:
        return FastNonceState(leader=True, bits_done=0, nonce=0)

    def transition(
        self, initiator: FastNonceState, responder: FastNonceState
    ) -> tuple[FastNonceState, FastNonceState]:
        agents = [initiator, responder]
        bits = self.bits
        # Assemble nonce bits from interaction roles (initiator = 1).
        for i in (0, 1):
            agent = agents[i]
            if agent.bits_done < bits:
                agents[i] = FastNonceState(
                    leader=agent.leader,
                    bits_done=agent.bits_done + 1,
                    nonce=2 * agent.nonce + (1 - i),
                )
        # Epidemic of the maximum nonce among finished agents.
        first, second = agents
        if first.bits_done == bits and second.bits_done == bits:
            for i in (0, 1):
                mine, other = agents[i], agents[1 - i]
                if mine.nonce < other.nonce:
                    agents[i] = FastNonceState(
                        leader=False, bits_done=bits, nonce=other.nonce
                    )
            # Equal-nonce leaders: the responder concedes.
            first, second = agents
            if first.leader and second.leader and first.nonce == second.nonce:
                agents[1] = second._replace(leader=False)
        return agents[0], agents[1]

    def output(self, state: FastNonceState) -> str:
        return LEADER if state.leader else FOLLOWER

    def state_bound(self) -> int:
        # leader flag x bit counter x nonce value.
        return 2 * (self.bits + 1) * (1 << self.bits)
