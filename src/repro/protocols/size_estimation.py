"""Population-size estimation — towards a *uniform* PLL (extension).

PLL is non-uniform: it must be compiled with a rough size knowledge
``m >= log2(n)``, ``m = Theta(log n)`` (the paper lists this alongside all
non-constant-state predecessors).  This module implements the standard
geometric-race estimator that removes the assumption in practice:

* every agent flips role-coins until its first tail and records the number
  of heads (``level``, a geometric variable — identical to the
  QuickElimination lottery);
* the maximum level spreads by one-way epidemic;
* the estimate is ``m_hat = 2 * max_level + 2``.

Concentration: ``max_level`` is the maximum of (roughly) ``n/2``
independent geometrics, so ``P(max_level < (lg n)/2) <= exp(-Theta(sqrt n))``
and ``P(max_level > 3 lg n) <= n^-2`` — hence ``m_hat >= lg n`` and
``m_hat = Theta(log n)`` with high probability, exactly the contract
``PLLParameters`` needs.  The estimator itself uses ``O(log n)`` states
and stabilizes its output in ``O(log n)`` parallel time whp.

``examples/uniform_leader_election.py`` composes the two phases into a
pipeline (estimate, then elect).  Folding both into a *single* protocol —
restarting PLL's timers when the estimate grows — is genuine future work
the paper leaves open; the pipeline documents what the composition must
achieve.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.engine.protocol import Protocol
from repro.errors import ParameterError

__all__ = ["SizeEstimateState", "SizeEstimationProtocol", "m_hat_from_level"]


def m_hat_from_level(max_level: int) -> int:
    """Size-knowledge estimate from the winning geometric level."""
    if max_level < 0:
        raise ParameterError(f"level must be non-negative, got {max_level}")
    return 2 * max_level + 2


class SizeEstimateState(NamedTuple):
    """(flipping, level, seen): own race state plus the epidemic maximum."""

    flipping: bool
    level: int
    seen: int


class SizeEstimationProtocol(Protocol):
    """Estimate ``lg n`` by a geometric race plus max-epidemic.

    The output of an agent is its current estimate of the maximum level
    (as a string, per the protocol-output contract); once the epidemic
    settles, every agent outputs the same value and ``m_hat_from_level``
    turns it into a PLL-compatible ``m``.

    ``level_cap`` bounds the state space (the paper's own ``lmax`` trick);
    the default cap of 64 supports populations beyond 2^21 with margin.
    """

    name = "size-estimation"

    def __init__(self, level_cap: int = 64) -> None:
        if level_cap < 1:
            raise ParameterError(f"level cap must be positive, got {level_cap}")
        self.level_cap = level_cap

    def initial_state(self) -> SizeEstimateState:
        return SizeEstimateState(flipping=True, level=0, seen=0)

    def transition(
        self, initiator: SizeEstimateState, responder: SizeEstimateState
    ) -> tuple[SizeEstimateState, SizeEstimateState]:
        agents = [initiator, responder]
        # The geometric race: initiator role = head, responder role = tail.
        for i in (0, 1):
            agent = agents[i]
            if agent.flipping:
                if i == 0:
                    level = min(agent.level + 1, self.level_cap)
                    agents[i] = agent._replace(level=level)
                else:
                    agents[i] = agent._replace(
                        flipping=False, seen=max(agent.seen, agent.level)
                    )
        # One-way epidemic of the maximum finished level.
        best = max(agents[0].seen, agents[1].seen)
        agents[0] = agents[0]._replace(seen=best)
        agents[1] = agents[1]._replace(seen=best)
        return agents[0], agents[1]

    def output(self, state: SizeEstimateState) -> str:
        return str(state.seen)

    def state_bound(self) -> int:
        return 2 * (self.level_cap + 1) * (self.level_cap + 1)

    def compile_kernel(self):
        """(flipping, level, seen) as three fields; field-kernel mode."""
        from repro.engine.kernel.spec import Field, KernelSpec

        cap = self.level_cap

        def delta(a, b):
            # Initiator role = head: still-flipping initiators level up.
            racing = a["flipping"] == 1
            a["level"] = np.where(
                racing, np.minimum(a["level"] + 1, cap), a["level"]
            )
            # Responder role = tail: still-flipping responders stop.
            stopping = b["flipping"] == 1
            b["seen"] = np.where(
                stopping, np.maximum(b["seen"], b["level"]), b["seen"]
            )
            b["flipping"] = np.where(stopping, 0, b["flipping"])
            best = np.maximum(a["seen"], b["seen"])
            a["seen"] = best
            b["seen"] = best.copy()
            return a, b

        return KernelSpec(
            fields=(
                Field("flipping", 2),
                Field("level", cap + 1),
                Field("seen", cap + 1),
            ),
            to_fields=lambda state: (
                1 if state.flipping else 0,
                state.level,
                state.seen,
            ),
            from_fields=lambda values: SizeEstimateState(
                flipping=bool(values[0]),
                level=int(values[1]),
                seen=int(values[2]),
            ),
            delta=delta,
            features={"seen": lambda cols: cols["seen"]},
            cache_key=("size-estimation", cap),
        )

    def estimate(self, state: SizeEstimateState) -> int:
        """The ``m_hat`` this agent would hand to ``PLLParameters``."""
        return m_hat_from_level(state.seen)
