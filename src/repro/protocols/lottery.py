"""Lottery-style baseline in the spirit of Alistarh et al. [Ali+17].

The lottery protocol of [Ali+17] lets every contender draw a geometric
level by fair coin flips, keeps only the maximum level (spread by one-way
epidemic), and falls back to slow pairwise elimination for ties.  PLL's
QuickElimination *is* this lottery (Section 3.1.1 credits it explicitly);
composing it with BackUp and skipping Tournament reproduces the lottery
protocol's behaviour profile: polylogarithmic states and polylogarithmic —
but super-logarithmic — expected time, because a tie survives the lottery
with constant probability and must then be resolved by the ``O(log^2 n)``
backup.

Rather than re-implementing the machinery, this module instantiates the
``"no-tournament"`` variant of :class:`~repro.core.pll.PLLProtocol` (see
DESIGN.md, substitutions).  The same object doubles as the Tournament
ablation in experiment E12.
"""

from __future__ import annotations

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol

__all__ = ["lottery_protocol"]


def lottery_protocol(params: PLLParameters) -> PLLProtocol:
    """Lottery + backup composition (PLL without Tournament)."""
    protocol = PLLProtocol(params, variant="no-tournament")
    protocol.name = "lottery-backup"
    return protocol
