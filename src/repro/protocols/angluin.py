"""The constant-space leader election of Angluin et al. [Ang+06].

Every agent starts as a leader; when two leaders meet, the responder
concedes.  One leader always remains, the leader count is monotone, and
the expected stabilization time is ``Theta(n)`` parallel time (the last
two leaders must meet each other: ``n(n-1)/2`` expected steps).

This is Table 1's first row — ``O(1)`` states, ``O(n)`` time — and, by
[DS18] (Table 2), optimal among constant-space protocols.  PLL embeds this
rule as BackUp's line 58.
"""

from __future__ import annotations

import numpy as np

from repro.engine.protocol import FOLLOWER, LEADER, LeaderElectionProtocol

__all__ = ["AngluinProtocol"]


class AngluinProtocol(LeaderElectionProtocol):
    """Two-state pairwise-elimination leader election."""

    name = "angluin2006"
    monotone_leader = True

    def initial_state(self) -> bool:
        return True  # every agent starts as a leader

    def transition(self, initiator: bool, responder: bool) -> tuple[bool, bool]:
        if initiator and responder:
            return True, False
        return initiator, responder

    def output(self, state: bool) -> str:
        return LEADER if state else FOLLOWER

    def state_bound(self) -> int:
        return 2

    def compile_kernel(self):
        """One leader bit; two states lower to a full pair table.

        The phase probe rides on the spec (the kernel-level attachment
        point of :func:`repro.telemetry.probe.phase_probe_for`): the
        only phase here is pairwise elimination, so the single feature
        is the surviving-leader count.
        """
        from repro.engine.kernel.spec import Field, KernelSpec
        from repro.telemetry.probe import PhaseProbe

        def delta(a, b):
            both = (a["leader"] == 1) & (b["leader"] == 1)
            b["leader"] = np.where(both, 0, b["leader"])
            return a, b

        return KernelSpec(
            fields=(Field("leader", 2),),
            to_fields=lambda state: (1 if state else 0,),
            from_fields=lambda values: bool(values[0]),
            delta=delta,
            features={"leader": lambda cols: cols["leader"]},
            cache_key=("angluin",),
            phase_probe=PhaseProbe(
                {
                    "leaders": lambda counts, n: sum(
                        count for state, count in counts.items() if state
                    ),
                }
            ),
        )
