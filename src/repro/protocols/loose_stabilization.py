"""Loosely-stabilizing leader election, after Sudo et al. [Sud+12].

The paper proves Lemma 2 by generalizing a bound from the authors' own
loosely-stabilizing leader election work [Sud+12], and the contrast
motivates PLL's design: a (strictly) stabilizing protocol like PLL never
creates new leaders, so once the unique leader is lost — a crash, an
adversarial reset — the population is leaderless *forever*.  A loosely-
stabilizing protocol trades the "forever" guarantee for recovery: from
*any* configuration it reaches a unique-leader configuration quickly and
then holds it for a long (here: effectively unbounded in practice) time.

Mechanics (the timer scheme of [Sud+12], simplified to the complete
interaction graph): every agent carries a countdown timer in
``[0, tmax]``.

* When two agents meet, both adopt ``max(their timers) - 1`` — the
  maximum decays by one per propagation hop, so timer values measure
  "how recently have I heard from a leader".
* Two leaders meeting resolve by demoting the responder ([Ang+06]).
* A leader always resets its timer to ``tmax``.
* A non-leader whose timer has decayed to 0 concludes the leader is gone
  and promotes itself.

With a unique leader and ``tmax = c log n`` for a healthy constant, the
max-decay epidemic keeps every timer far from 0 between leader contacts,
so spurious promotions are (exponentially in ``c``) rare — that is the
*holding* guarantee.  With no leader, all timers decay to 0 within
``O(tmax)`` parallel time and promotions recreate leaders — that is
*recovery*.  See ``examples/failure_injection.py`` for the side-by-side
with PLL.

Unlike every other protocol in this library, the leader count is **not**
monotone (self-promotion creates leaders), so ``monotone_leader`` is
``False`` and tests use explicit predicates instead of the monotone
detector.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.engine.protocol import FOLLOWER, LEADER, LeaderElectionProtocol
from repro.errors import ParameterError

__all__ = ["LooseState", "LooselyStabilizingProtocol"]


class LooseState(NamedTuple):
    """(is_leader, timer)."""

    is_leader: bool
    timer: int


class LooselyStabilizingProtocol(LeaderElectionProtocol):
    """[Sud+12]-style leader election with self-healing leadership."""

    monotone_leader = False  # self-promotion can create leaders

    def __init__(self, tmax: int) -> None:
        if tmax < 2:
            raise ParameterError(f"tmax must be at least 2, got {tmax}")
        self.tmax = tmax
        self.name = f"loose-le[tmax={tmax}]"

    @classmethod
    def for_population(cls, n: int, holding_factor: int = 16) -> "LooselyStabilizingProtocol":
        """``tmax = holding_factor * ceil(lg n)``.

        Larger ``holding_factor`` buys exponentially longer holding time
        at a linear cost in recovery time and states.
        """
        if n < 2:
            raise ParameterError(f"population size must be at least 2, got {n}")
        return cls(tmax=holding_factor * max(1, math.ceil(math.log2(n))))

    def initial_state(self) -> LooseState:
        # Loose stabilization makes no promises about the initial
        # configuration anyway; all-zero timers bootstrap via promotion.
        return LooseState(is_leader=False, timer=0)

    def transition(
        self, initiator: LooseState, responder: LooseState
    ) -> tuple[LooseState, LooseState]:
        tmax = self.tmax
        # Timer propagation: both adopt the decayed maximum.
        decayed = max(initiator.timer, responder.timer) - 1
        if decayed < 0:
            decayed = 0
        leaders = [initiator.is_leader, responder.is_leader]
        # Pairwise election: the responder concedes.
        if leaders[0] and leaders[1]:
            leaders[1] = False
        agents = []
        for i in (0, 1):
            if leaders[i]:
                agents.append(LooseState(is_leader=True, timer=tmax))
            elif decayed == 0:
                # The leader has been silent for a full timer horizon:
                # self-promote.
                agents.append(LooseState(is_leader=True, timer=tmax))
            else:
                agents.append(LooseState(is_leader=False, timer=decayed))
        return agents[0], agents[1]

    def output(self, state: LooseState) -> str:
        return LEADER if state.is_leader else FOLLOWER

    def state_bound(self) -> int:
        return 2 * (self.tmax + 1)
