"""Campaign execution: run/resume/status/report over a trial store.

The :class:`CampaignRunner` ties the layers together: it diffs a
:class:`~repro.orchestration.spec.CampaignSpec` against the persistent
:class:`~repro.orchestration.store.TrialStore`, farms the missing trials
out through :func:`~repro.orchestration.pool.run_specs`, and aggregates
the full outcome set into the same summary statistics the ``analysis``
package computes for experiment tables (mean with CI, median, extremes).

``resume`` is not a separate mechanism — running the same campaign against
the same store simply finds fewer missing trials.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.orchestration.pool import ProgressCallback, run_specs
from repro.orchestration.spec import CampaignSpec, TrialOutcome
from repro.orchestration.store import TrialStore

__all__ = ["CampaignRunner", "CampaignStatus", "CampaignResult"]

_AGGREGATE_HEADERS = [
    "protocol",
    "params",
    "n",
    "engine",
    "trials",
    "mean time (parallel)",
    "ci95 half-width",
    "median",
    "min",
    "max",
    "mean steps",
    "max distinct states",
]


def _params_label(params: tuple[tuple[str, object], ...]) -> str:
    return (
        ", ".join(f"{key}={value}" for key, value in params) if params else "-"
    )


@dataclass(frozen=True)
class CampaignStatus:
    """How much of a campaign the store already holds.

    ``engines`` breaks the same coverage down by the concretely resolved
    engine each trial spec names (``auto``/``ensemble`` resolve before
    specs are hashed, so these are the engines that actually produced —
    or will produce — each store row): ``(engine, cached, total)``
    tuples in engine-name order.  Resumed campaigns can therefore be
    audited for which engine ran which slice of the grid.
    """

    campaign: str
    total: int
    cached: int
    engines: tuple[tuple[str, int, int], ...] = ()

    @property
    def pending(self) -> int:
        return self.total - self.cached

    @property
    def complete(self) -> bool:
        return self.cached == self.total

    def render(self) -> str:
        percent = 100.0 * self.cached / self.total
        lines = [
            f"campaign {self.campaign}: {self.cached}/{self.total} trials "
            f"cached ({percent:.1f}%), {self.pending} pending"
        ]
        if self.engines:
            breakdown = ", ".join(
                f"{engine} {cached}/{total}"
                for engine, cached, total in self.engines
            )
            lines.append(f"  by engine: {breakdown}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcomes of one campaign run (or report)."""

    campaign: CampaignSpec
    outcomes: list[TrialOutcome]
    executed: int
    cached: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """Freshly executed trials per second (0 for pure cache hits)."""
        return self.executed / self.elapsed if self.elapsed > 0 else 0.0

    def aggregate(self) -> Table:
        """Per ``(protocol, params, n)`` summary of the outcome columns."""
        table = Table(_AGGREGATE_HEADERS)
        outcome_of = {
            spec.content_hash(): outcome
            for spec, outcome in zip(self.campaign.trials, self.outcomes)
            if outcome is not None
        }
        for (protocol, params, n), specs in self.campaign.groups():
            group = [
                outcome_of[spec.content_hash()]
                for spec in specs
                if spec.content_hash() in outcome_of
            ]
            if not group:
                continue
            times = summarize([outcome.parallel_time for outcome in group])
            steps = summarize([float(outcome.steps) for outcome in group])
            engines = sorted({spec.engine for spec in specs})
            table.add_record(
                {
                    "protocol": protocol,
                    "params": _params_label(params),
                    "n": n,
                    "engine": "+".join(engines),
                    "trials": len(group),
                    "mean time (parallel)": times.mean,
                    "ci95 half-width": (times.ci95_high - times.ci95_low) / 2,
                    "median": times.median,
                    "min": times.minimum,
                    "max": times.maximum,
                    "mean steps": steps.mean,
                    "max distinct states": max(
                        outcome.distinct_states for outcome in group
                    ),
                }
            )
        return table

    def render(self) -> str:
        """Full plain-text report: provenance line plus aggregate table."""
        known = sum(outcome is not None for outcome in self.outcomes)
        lines = [
            f"campaign {self.campaign.name}: {known}/{len(self.campaign)} "
            f"trials ({self.cached} cached, {self.executed} executed in "
            f"{self.elapsed:.2f}s"
            + (f", {self.throughput:.1f} trials/s" if self.executed else "")
            + ")",
            "",
            self.aggregate().render(),
        ]
        if known < len(self.campaign):
            lines += [
                "",
                f"note: {len(self.campaign) - known} trials not yet in the "
                "store; run `repro campaign run` to fill them in",
            ]
        return "\n".join(lines)


class CampaignRunner:
    """Execute campaigns against one store with a fixed worker budget."""

    def __init__(
        self,
        store: TrialStore,
        jobs: int = 1,
        progress: ProgressCallback | None = None,
    ) -> None:
        self.store = store
        self.jobs = jobs
        self.progress = progress

    def run(self, campaign: CampaignSpec) -> CampaignResult:
        """Execute every trial not already cached; aggregate all of them."""
        started = time.perf_counter()
        report = run_specs(
            campaign.trials,
            jobs=self.jobs,
            store=self.store,
            progress=self.progress,
        )
        return CampaignResult(
            campaign=campaign,
            outcomes=report.outcomes,
            executed=report.executed,
            cached=report.cached,
            elapsed=time.perf_counter() - started,
        )

    def status(self, campaign: CampaignSpec) -> CampaignStatus:
        """Cache coverage without executing anything, split per engine."""
        cached = self.store.get_many(campaign.trials)
        per_engine: dict[str, list[int]] = {}
        for spec in campaign.trials:
            bucket = per_engine.setdefault(spec.engine, [0, 0])
            bucket[1] += 1
            if spec.content_hash() in cached:
                bucket[0] += 1
        return CampaignStatus(
            campaign=campaign.name,
            total=len(campaign),
            cached=len(cached),
            engines=tuple(
                (engine, hits, total)
                for engine, (hits, total) in sorted(per_engine.items())
            ),
        )

    def report(self, campaign: CampaignSpec) -> CampaignResult:
        """Aggregate whatever the store holds, executing nothing."""
        started = time.perf_counter()
        cached = self.store.get_many(campaign.trials)
        outcomes = [
            cached.get(spec.content_hash()) for spec in campaign.trials
        ]
        return CampaignResult(
            campaign=campaign,
            outcomes=outcomes,
            executed=0,
            cached=len(cached),
            elapsed=time.perf_counter() - started,
        )
