"""Campaign execution: run/resume/status/report over a trial store.

The :class:`CampaignRunner` ties the layers together: it diffs a
:class:`~repro.orchestration.spec.CampaignSpec` against the persistent
:class:`~repro.orchestration.store.TrialStore`, farms the missing trials
out through :func:`~repro.orchestration.pool.run_specs`, and aggregates
the full outcome set into the same summary statistics the ``analysis``
package computes for experiment tables (mean with CI, median, extremes).

``resume`` is not a separate mechanism — running the same campaign against
the same store simply finds fewer missing trials.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass

from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.orchestration.backend.base import StoreBackend
from repro.orchestration.pool import ProgressCallback, run_specs
from repro.orchestration.spec import CampaignSpec, TrialOutcome, default_engine
from repro.telemetry.trace import make_tracer

__all__ = [
    "CampaignRunner",
    "CampaignStatus",
    "CampaignResult",
    "CellStatus",
    "FailureStatus",
    "LeaseStatus",
    "ShardStatus",
]

_AGGREGATE_HEADERS = [
    "protocol",
    "params",
    "n",
    "engine",
    "trials",
    "mean time (parallel)",
    "ci95 half-width",
    "median",
    "min",
    "max",
    "mean steps",
    "max distinct states",
]


def _params_label(params: tuple[tuple[str, object], ...]) -> str:
    return (
        ", ".join(f"{key}={value}" for key, value in params) if params else "-"
    )


@dataclass(frozen=True)
class CellStatus:
    """Coverage and remaining-work estimate for one campaign cell.

    ``eta_sec`` extrapolates the mean stored trial duration of the
    cell's finished trials over its pending count — ``None`` when the
    cell is complete or no finished trial recorded a duration (stores
    written before durations existed carry 0.0).
    """

    protocol: str
    params: str
    n: int
    engine: str
    cached: int
    total: int
    eta_sec: float | None = None
    #: The engine ``auto`` would have picked at this size when the
    #: cell's specs were degraded to the per-agent engine by an
    #: identity-needing (graph-restricted) scheduler spec; ``None``
    #: for undegraded cells.
    degraded_from: str | None = None

    @property
    def pending(self) -> int:
        return self.total - self.cached

    def render(self) -> str:
        line = (
            f"{self.protocol} [{self.params}] n={self.n} "
            f"({self.engine}): {self.cached}/{self.total} cached"
        )
        if self.pending and self.eta_sec is not None:
            line += f", eta ~{self.eta_sec:.0f}s"
        elif self.pending:
            line += ", eta unknown (no timed trials yet)"
        return line


@dataclass(frozen=True)
class FailureStatus:
    """One outstanding failure-ledger row scoped to a campaign."""

    protocol: str
    n: int
    seed: int
    engine: str
    attempts: int
    error: str
    quarantined: bool

    def render(self) -> str:
        tag = "quarantined" if self.quarantined else "failed"
        return (
            f"{self.protocol} n={self.n} seed={self.seed} "
            f"({self.engine}): {tag} after {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''} — {self.error}"
        )


@dataclass(frozen=True)
class ShardStatus:
    """Coverage one member of a sharded store contributes to a campaign."""

    name: str
    #: Trials stored in this member (campaign or not).
    rows: int
    #: How many of this campaign's trials this member holds.
    in_campaign: int

    def render(self) -> str:
        line = f"{self.name}: {self.in_campaign} campaign trial"
        line += "s" if self.in_campaign != 1 else ""
        extra = self.rows - self.in_campaign
        if extra:
            line += f" (+{extra} other)"
        return line


@dataclass(frozen=True)
class LeaseStatus:
    """One live work claim on a sharded campaign's lease table."""

    spec_hash: str
    worker: str
    remaining_sec: float
    renewals: int

    def render(self) -> str:
        return (
            f"{self.spec_hash[:12]} held by {self.worker}, "
            f"{self.remaining_sec:.0f}s left"
            + (f" ({self.renewals} renewals)" if self.renewals else "")
        )


@dataclass(frozen=True)
class CampaignStatus:
    """How much of a campaign the store already holds.

    ``engines`` breaks the same coverage down by the concretely resolved
    engine each trial spec names (``auto``/``ensemble`` resolve before
    specs are hashed, so these are the engines that actually produced —
    or will produce — each store row): ``(engine, cached, total)``
    tuples in engine-name order.  Resumed campaigns can therefore be
    audited for which engine ran which slice of the grid.

    ``cells`` carries per-``(protocol, params, n)`` coverage with an ETA
    extrapolated from the stored durations of that cell's finished
    trials, so a half-finished campaign shows where the remaining
    wall-clock will go.
    """

    campaign: str
    total: int
    cached: int
    engines: tuple[tuple[str, int, int], ...] = ()
    cells: tuple[CellStatus, ...] = ()
    #: Outstanding failure-ledger rows for this campaign's specs
    #: (quarantined poison cells and not-yet-retried failures).
    failures: tuple[FailureStatus, ...] = ()
    #: Per-member coverage when the store is sharded (canonical first,
    #: shards in name order); empty for single-file stores.
    shards: tuple[ShardStatus, ...] = ()
    #: Live work claims on a sharded campaign's lease table.
    leases: tuple[LeaseStatus, ...] = ()

    @property
    def pending(self) -> int:
        return self.total - self.cached

    @property
    def complete(self) -> bool:
        return self.cached == self.total

    @property
    def eta_sec(self) -> float | None:
        """Summed per-cell ETAs (``None`` when no cell can estimate)."""
        known = [
            cell.eta_sec for cell in self.cells if cell.eta_sec is not None
        ]
        if not known:
            return None
        return sum(known)

    def render(self) -> str:
        percent = 100.0 * self.cached / self.total
        lines = [
            f"campaign {self.campaign}: {self.cached}/{self.total} trials "
            f"cached ({percent:.1f}%), {self.pending} pending"
        ]
        if self.engines:
            breakdown = ", ".join(
                f"{engine} {cached}/{total}"
                for engine, cached, total in self.engines
            )
            lines.append(f"  by engine: {breakdown}")
        degraded = [cell for cell in self.cells if cell.degraded_from]
        if degraded:
            lines.append(
                "  degraded to per-agent engine (schedule needs agent "
                "identity):"
            )
            for cell in degraded:
                lines.append(
                    f"    {cell.protocol} [{cell.params}] n={cell.n}: "
                    f"degraded_from={cell.degraded_from}"
                )
        if self.cells and self.pending:
            lines.append("  in flight:")
            for cell in self.cells:
                if cell.pending:
                    lines.append(f"    {cell.render()}")
            eta = self.eta_sec
            if eta is not None:
                lines.append(
                    f"  estimated remaining: ~{eta:.0f}s serial "
                    "(divide by --jobs for wall-clock)"
                )
        if self.shards:
            lines.append("  shards:")
            for shard in self.shards:
                lines.append(f"    {shard.render()}")
        if self.leases:
            lines.append(f"  live leases: {len(self.leases)}")
            for lease in self.leases:
                lines.append(f"    {lease.render()}")
        if self.failures:
            quarantined = sum(f.quarantined for f in self.failures)
            lines.append(
                f"  failures: {len(self.failures)} outstanding "
                f"({quarantined} quarantined)"
            )
            for failure in self.failures:
                lines.append(f"    {failure.render()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcomes of one campaign run (or report)."""

    campaign: CampaignSpec
    outcomes: list[TrialOutcome | None]
    executed: int
    cached: int
    elapsed: float
    executed_duration: float = 0.0
    failed: int = 0
    quarantined: int = 0
    retried: int = 0

    @property
    def throughput(self) -> float:
        """Freshly executed trials per second (0 for pure cache hits).

        Computed from the summed per-trial durations (worker-seconds)
        when the run recorded them; falls back to wall-clock elapsed for
        results hydrated from stores without durations.
        """
        if self.executed and self.executed_duration > 0:
            return self.executed / self.executed_duration
        return self.executed / self.elapsed if self.elapsed > 0 else 0.0

    def aggregate(self) -> Table:
        """Per ``(protocol, params, n)`` summary of the outcome columns."""
        table = Table(_AGGREGATE_HEADERS)
        outcome_of = {
            spec.content_hash(): outcome
            for spec, outcome in zip(self.campaign.trials, self.outcomes)
            if outcome is not None
        }
        for (protocol, params, n), specs in self.campaign.groups():
            group = [
                outcome_of[spec.content_hash()]
                for spec in specs
                if spec.content_hash() in outcome_of
            ]
            if not group:
                continue
            times = summarize([outcome.parallel_time for outcome in group])
            steps = summarize([float(outcome.steps) for outcome in group])
            engines = sorted({spec.engine for spec in specs})
            table.add_record(
                {
                    "protocol": protocol,
                    "params": _params_label(params),
                    "n": n,
                    "engine": "+".join(engines),
                    "trials": len(group),
                    "mean time (parallel)": times.mean,
                    "ci95 half-width": (times.ci95_high - times.ci95_low) / 2,
                    "median": times.median,
                    "min": times.minimum,
                    "max": times.maximum,
                    "mean steps": steps.mean,
                    "max distinct states": max(
                        outcome.distinct_states for outcome in group
                    ),
                }
            )
        return table

    def render(self) -> str:
        """Full plain-text report: provenance line plus aggregate table."""
        known = sum(outcome is not None for outcome in self.outcomes)
        lines = [
            f"campaign {self.campaign.name}: {known}/{len(self.campaign)} "
            f"trials ({self.cached} cached, {self.executed} executed in "
            f"{self.elapsed:.2f}s"
            + (f", {self.throughput:.1f} trials/s" if self.executed else "")
            + (f", {self.retried} retried" if self.retried else "")
            + (
                f", {self.quarantined} quarantined"
                if self.quarantined
                else (f", {self.failed} failed" if self.failed else "")
            )
            + ")",
            "",
            self.aggregate().render(),
        ]
        if self.quarantined:
            lines += [
                "",
                f"note: {self.quarantined} trials quarantined after "
                "repeated failure; see `repro campaign status` for the "
                "ledger",
            ]
        elif known < len(self.campaign):
            lines += [
                "",
                f"note: {len(self.campaign) - known} trials not yet in the "
                "store; run `repro campaign run` to fill them in",
            ]
        return "\n".join(lines)


class CampaignRunner:
    """Execute campaigns against one store with a fixed worker budget.

    Campaign execution runs the fabric in self-healing mode by default:
    failing trials are retried (``retries`` solo rounds with exponential
    backoff) and trials that keep failing are *quarantined* — recorded
    in the store's failure ledger while the rest of the campaign
    completes — rather than aborting the whole run, since a multi-hour
    grid should never die on one poison cell.  ``trial_timeout`` bounds
    each trial's wall-clock seconds.
    """

    def __init__(
        self,
        store: StoreBackend,
        jobs: int = 1,
        progress: ProgressCallback | None = None,
        retries: int = 1,
        trial_timeout: float | None = None,
    ) -> None:
        self.store = store
        self.jobs = jobs
        self.progress = progress
        self.retries = retries
        self.trial_timeout = trial_timeout

    def run(self, campaign: CampaignSpec) -> CampaignResult:
        """Execute every trial not already cached; aggregate all of them."""
        started = time.perf_counter()
        tracer = make_tracer()
        campaign_span = (
            nullcontext()
            if tracer is None
            else tracer.span(
                "campaign",
                cat="campaign",
                campaign=campaign.name,
                trials=len(campaign),
                jobs=self.jobs,
            )
        )
        with campaign_span:
            report = run_specs(
                campaign.trials,
                jobs=self.jobs,
                store=self.store,
                progress=self.progress,
                retries=self.retries,
                trial_timeout=self.trial_timeout,
                on_failure="quarantine",
            )
        return CampaignResult(
            campaign=campaign,
            outcomes=report.outcomes,
            executed=report.executed,
            cached=report.cached,
            elapsed=time.perf_counter() - started,
            executed_duration=report.executed_duration,
            failed=report.failed,
            quarantined=report.quarantined,
            retried=report.retried,
        )

    def status(self, campaign: CampaignSpec) -> CampaignStatus:
        """Cache coverage without executing anything, split per engine.

        Per-cell ETAs come from the stored ``duration`` of the cell's
        finished trials: mean duration times pending count.  No trial is
        re-run and no timing is measured here — the estimate is only as
        fresh as the store.
        """
        cached = self.store.get_many(campaign.trials)
        per_engine: dict[str, list[int]] = {}
        for spec in campaign.trials:
            bucket = per_engine.setdefault(spec.engine, [0, 0])
            bucket[1] += 1
            if spec.content_hash() in cached:
                bucket[0] += 1
        cells = []
        for (protocol, params, n), specs in campaign.groups():
            durations = []
            hits = 0
            for spec in specs:
                outcome = cached.get(spec.content_hash())
                if outcome is None:
                    continue
                hits += 1
                if outcome.duration > 0:
                    durations.append(outcome.duration)
            pending = len(specs) - hits
            eta = (
                pending * (sum(durations) / len(durations))
                if pending and durations
                else None
            )
            degraded = sorted(
                {
                    default_engine(spec.n)
                    for spec in specs
                    if spec.engine == "agent"
                    and spec.scheduler is not None
                    and not spec.scheduler.exchangeable
                    and default_engine(spec.n) != "agent"
                }
            )
            cells.append(
                CellStatus(
                    protocol=protocol,
                    params=_params_label(params),
                    n=n,
                    engine="+".join(sorted({spec.engine for spec in specs})),
                    cached=hits,
                    total=len(specs),
                    eta_sec=eta,
                    degraded_from="+".join(degraded) or None,
                )
            )
        campaign_hashes = {spec.content_hash() for spec in campaign.trials}
        # Sharded stores expose per-member coverage and the lease table;
        # duck-typed so the runner needs no backend import beyond the
        # protocol (single-file stores simply render no shard section).
        shards: tuple[ShardStatus, ...] = ()
        leases: tuple[LeaseStatus, ...] = ()
        coverage = getattr(self.store, "shard_coverage", None)
        if coverage is not None:
            shards = tuple(
                ShardStatus(
                    name=member.name,
                    rows=member.rows,
                    in_campaign=member.in_scope,
                )
                for member in coverage(campaign_hashes)
            )
            leases = tuple(
                LeaseStatus(
                    spec_hash=lease.spec_hash,
                    worker=lease.worker,
                    remaining_sec=max(0.0, lease.remaining()),
                    renewals=lease.renewals,
                )
                for lease in self.store.live_leases()
            )
        failures = tuple(
            FailureStatus(
                protocol=str(row["protocol"]),
                n=int(row["n"]),
                seed=int(row["seed"]),
                engine=str(row["engine"]),
                attempts=int(row["attempts"]),
                error=str(row["error"]),
                quarantined=bool(row["quarantined"]),
            )
            for row in self.store.failures()
            if row["spec_hash"] in campaign_hashes
        )
        return CampaignStatus(
            campaign=campaign.name,
            total=len(campaign),
            cached=len(cached),
            engines=tuple(
                (engine, hits, total)
                for engine, (hits, total) in sorted(per_engine.items())
            ),
            cells=tuple(cells),
            failures=failures,
            shards=shards,
            leases=leases,
        )

    def report(self, campaign: CampaignSpec) -> CampaignResult:
        """Aggregate whatever the store holds, executing nothing."""
        started = time.perf_counter()
        cached = self.store.get_many(campaign.trials)
        outcomes = [
            cached.get(spec.content_hash()) for spec in campaign.trials
        ]
        return CampaignResult(
            campaign=campaign,
            outcomes=outcomes,
            executed=0,
            cached=len(cached),
            elapsed=time.perf_counter() - started,
        )
