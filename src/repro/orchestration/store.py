"""Persistent SQLite-backed cache of trial outcomes.

Every completed :class:`~repro.orchestration.spec.TrialOutcome` is stored
keyed by its spec's content hash.  Re-running a campaign therefore only
executes the trials missing from the store — which is also exactly what a
crash/Ctrl-C leaves behind, so resumption needs no extra bookkeeping:
``repro campaign resume`` is ``run`` against the same store.

Only the orchestrating (parent) process writes; ``multiprocessing``
workers return outcomes over IPC.  The stdlib :mod:`sqlite3` module is the
only dependency, and writes are committed per batch so a kill mid-campaign
loses at most the in-flight trial.

Schema evolution: writable opens migrate older stores in place by adding
the missing columns (``duration``, ``telemetry``, ``phases``,
``faults``, ``scheduler``) with backfill defaults; readonly opens
tolerate their absence instead, so ``status``/``report`` against a pre-migration store
keeps working without write access.

Concurrency hardening (the default backend of the distributed campaign
fabric — see :mod:`repro.orchestration.backend`): writable opens enable
WAL journal mode, so concurrent readers never block a writer and a
reader never sees a half-committed batch, and every open sets a
``busy_timeout`` (default 30 s, overridable per open or via
:data:`BUSY_TIMEOUT_ENV`) so two writers racing for the write lock
queue instead of surfacing ``database is locked`` to one of them.

The campaign fabric's robustness ledger lives here too: a ``failures``
table records specs that errored or timed out — attempt counts, the
offending seed, the last error, and whether the spec was quarantined —
so ``repro campaign status`` can report what a completed-with-failures
campaign skipped, and a later ``resume`` can retry it.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ExperimentError
from repro.orchestration.backend.base import StoreBackend
from repro.orchestration.spec import TrialOutcome, TrialSpec

__all__ = [
    "BUSY_TIMEOUT_ENV",
    "DEFAULT_BUSY_TIMEOUT_MS",
    "DEFAULT_STORE_PATH",
    "TrialStore",
]

#: Where campaign outcomes land unless ``--store`` says otherwise.
DEFAULT_STORE_PATH = ".repro-store.sqlite"

#: How long (milliseconds) an open blocks on another connection's write
#: lock before giving up.  30 s rides out any realistic ``put_many``
#: batch commit from a sibling worker; override per open (ctor) or per
#: process (:data:`BUSY_TIMEOUT_ENV`).
DEFAULT_BUSY_TIMEOUT_MS = 30_000

#: Environment override for the SQLite busy timeout, in milliseconds.
BUSY_TIMEOUT_ENV = "REPRO_SQLITE_BUSY_TIMEOUT_MS"


def busy_timeout_ms(override: int | None = None) -> int:
    """The effective busy timeout: ctor override, env, then default."""
    if override is not None:
        return max(0, int(override))
    raw = os.environ.get(BUSY_TIMEOUT_ENV)
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_BUSY_TIMEOUT_MS

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    spec_hash       TEXT PRIMARY KEY,
    protocol        TEXT NOT NULL,
    n               INTEGER NOT NULL,
    seed            INTEGER NOT NULL,
    engine          TEXT NOT NULL,
    spec_json       TEXT NOT NULL,
    steps           INTEGER NOT NULL,
    parallel_time   REAL NOT NULL,
    leader_count    INTEGER NOT NULL,
    distinct_states INTEGER NOT NULL,
    duration        REAL NOT NULL DEFAULT 0.0,
    telemetry       TEXT,
    phases          TEXT,
    faults          TEXT,
    scheduler       TEXT,
    created_at      TEXT NOT NULL DEFAULT (datetime('now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_protocol_n ON trials (protocol, n);
"""

#: Failed/quarantined specs (campaign-fabric robustness ledger).  Rows
#: are keyed by spec hash like trials; a successful retry deletes the
#: row, so the table holds only *outstanding* failures.
_FAILURES_SCHEMA = """
CREATE TABLE IF NOT EXISTS failures (
    spec_hash   TEXT PRIMARY KEY,
    protocol    TEXT NOT NULL,
    n           INTEGER NOT NULL,
    seed        INTEGER NOT NULL,
    engine      TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    attempts    INTEGER NOT NULL,
    error       TEXT NOT NULL,
    quarantined INTEGER NOT NULL DEFAULT 0,
    updated_at  TEXT NOT NULL DEFAULT (datetime('now'))
);
"""

#: Columns added after the original (PR 1) schema, with the ALTER clause
#: that retrofits each.  Order matters only for readability; each ALTER
#: is applied independently when its column is missing.
_MIGRATIONS = (
    ("duration", "ALTER TABLE trials ADD COLUMN duration REAL NOT NULL DEFAULT 0.0"),
    ("telemetry", "ALTER TABLE trials ADD COLUMN telemetry TEXT"),
    ("phases", "ALTER TABLE trials ADD COLUMN phases TEXT"),
    ("faults", "ALTER TABLE trials ADD COLUMN faults TEXT"),
    ("scheduler", "ALTER TABLE trials ADD COLUMN scheduler TEXT"),
)


class TrialStore(StoreBackend):
    """Content-addressed trial cache over one SQLite file.

    ``path=":memory:"`` gives an ephemeral store (useful in tests and for
    callers that want pooling without persistence).  ``readonly=True``
    opens an existing store without creating or modifying anything —
    the mode for ``repro campaign status|report``, which must not leave
    an empty database behind (or silently mask a mistyped ``--store``
    path as an empty cache).

    Writable file-backed opens run in WAL journal mode with a busy
    timeout (see the module docstring), so N processes can hammer one
    store concurrently without ``database is locked`` failures; the WAL
    switch is persistent, sticking for every later open of the file.
    """

    def __init__(
        self,
        path: str | Path = DEFAULT_STORE_PATH,
        readonly: bool = False,
        busy_timeout: int | None = None,
    ) -> None:
        self.path = str(path)
        self.readonly = readonly
        timeout_ms = busy_timeout_ms(busy_timeout)
        try:
            if readonly:
                self._connection = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True
                )
                self._connection.execute(
                    f"PRAGMA busy_timeout = {timeout_ms}"
                )
                has_table = self._connection.execute(
                    "SELECT 1 FROM sqlite_master WHERE name = 'trials'"
                ).fetchone()
                if has_table is None:
                    raise ExperimentError(
                        f"{self.path!r} is not a trial store"
                    )
            else:
                self._connection = sqlite3.connect(self.path)
                self._connection.execute(
                    f"PRAGMA busy_timeout = {timeout_ms}"
                )
                # WAL is what lets N writer processes share one store:
                # writers queue on one lock (bounded by busy_timeout)
                # while readers go on reading the last committed state.
                # In-memory stores have no journal to switch (the pragma
                # reports "memory"); that is fine, they are single-process
                # by construction.
                self._connection.execute("PRAGMA journal_mode = WAL")
                self._connection.executescript(_SCHEMA)
                self._connection.executescript(_FAILURES_SCHEMA)
                self._connection.commit()
            self._migrate()
        except sqlite3.Error as exc:
            hint = (
                " (has the campaign been run yet?)" if readonly else ""
            )
            raise ExperimentError(
                f"cannot open trial store {self.path!r}: {exc}{hint}"
            ) from exc

    def _migrate(self) -> None:
        """Bring an older store up to the current schema.

        Writable stores gain the missing columns via ``ALTER TABLE``
        (backfilled with the column defaults: zero duration, NULL
        telemetry).  Readonly stores cannot be altered, so reads fall
        back to the defaults per missing column instead.
        """
        present = {
            row[1]
            for row in self._connection.execute(
                "PRAGMA table_info(trials)"
            ).fetchall()
        }
        self._has_duration = "duration" in present
        self._has_telemetry = "telemetry" in present
        self._has_phases = "phases" in present
        self._has_faults = "faults" in present
        self._has_scheduler = "scheduler" in present
        self._has_failures = (
            self._connection.execute(
                "SELECT 1 FROM sqlite_master WHERE name = 'failures'"
            ).fetchone()
            is not None
        )
        if self.readonly:
            return
        migrated = False
        for column, alter in _MIGRATIONS:
            if column not in present:
                self._connection.execute(alter)
                migrated = True
        if migrated:
            self._connection.commit()
        self._has_duration = True
        self._has_telemetry = True
        self._has_phases = True
        self._has_faults = True
        self._has_scheduler = True
        self._has_failures = True

    def _outcome_columns(self) -> str:
        duration = "duration" if self._has_duration else "0.0 AS duration"
        telemetry = "telemetry" if self._has_telemetry else "NULL AS telemetry"
        phases = "phases" if self._has_phases else "NULL AS phases"
        faults = "faults" if self._has_faults else "NULL AS faults"
        scheduler = (
            "scheduler" if self._has_scheduler else "NULL AS scheduler"
        )
        return (
            "seed, steps, parallel_time, leader_count, distinct_states, "
            f"{duration}, {telemetry}, {phases}, {faults}, {scheduler}"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "TrialStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM trials"
        ).fetchone()
        return int(count)

    def __contains__(self, spec: TrialSpec) -> bool:
        return self.get(spec) is not None

    def get(self, spec: TrialSpec) -> TrialOutcome | None:
        """The cached outcome for ``spec``, or ``None``."""
        row = self._connection.execute(
            f"SELECT {self._outcome_columns()}"
            " FROM trials WHERE spec_hash = ?",
            (spec.content_hash(),),
        ).fetchone()
        return None if row is None else _outcome_from_row(row)

    def get_many(
        self, specs: Sequence[TrialSpec]
    ) -> dict[str, TrialOutcome]:
        """Cached outcomes for ``specs``, keyed by spec content hash."""
        results: dict[str, TrialOutcome] = {}
        hashes = [spec.content_hash() for spec in specs]
        # SQLite caps the number of bound parameters; chunk the IN list.
        for start in range(0, len(hashes), 500):
            chunk = hashes[start : start + 500]
            placeholders = ",".join("?" * len(chunk))
            rows = self._connection.execute(
                f"SELECT spec_hash, {self._outcome_columns()} FROM trials"
                f" WHERE spec_hash IN ({placeholders})",
                chunk,
            ).fetchall()
            for spec_hash, *rest in rows:
                results[spec_hash] = _outcome_from_row(rest)
        return results

    def completed_hashes(self) -> set[str]:
        """Every stored trial's spec hash (the store's "done" set).

        The campaign fabric's work-claiming and ``repro store gc`` both
        key on this: a hash in the set means the trial's outcome is
        durable and any leftover artifact keyed by it (lease row,
        checkpoint file) is garbage.
        """
        return {
            row[0]
            for row in self._connection.execute(
                "SELECT spec_hash FROM trials"
            )
        }

    def journal_mode(self) -> str:
        """The connection's active journal mode (``wal`` for hardened
        file stores, ``memory`` for ``:memory:`` ones)."""
        (mode,) = self._connection.execute(
            "PRAGMA journal_mode"
        ).fetchone()
        return str(mode).lower()

    def rows(self) -> Iterator[dict[str, object]]:
        """Every stored trial as a plain dict, for aggregation/reporting.

        Yields the spec-identity columns alongside the outcome ones so
        consumers (``repro telemetry report``) can group by cell without
        re-parsing ``spec_json`` for the common keys.
        """
        cursor = self._connection.execute(
            "SELECT spec_hash, protocol, n, seed, engine, spec_json,"
            f" steps, parallel_time, leader_count, distinct_states,"
            f" {'duration' if self._has_duration else '0.0'},"
            f" {'telemetry' if self._has_telemetry else 'NULL'},"
            f" {'phases' if self._has_phases else 'NULL'},"
            f" {'faults' if self._has_faults else 'NULL'},"
            f" {'scheduler' if self._has_scheduler else 'NULL'}"
            " FROM trials ORDER BY protocol, n, engine, seed"
        )
        names = (
            "spec_hash",
            "protocol",
            "n",
            "seed",
            "engine",
            "spec_json",
            "steps",
            "parallel_time",
            "leader_count",
            "distinct_states",
            "duration",
            "telemetry",
            "phases",
            "faults",
            "scheduler",
        )
        for row in cursor:
            yield dict(zip(names, row))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def put(self, spec: TrialSpec, outcome: TrialOutcome) -> None:
        """Persist one outcome (idempotent: same hash overwrites)."""
        self.put_many([(spec, outcome)])

    def put_many(
        self, items: Iterable[tuple[TrialSpec, TrialOutcome]]
    ) -> None:
        """Persist a batch of outcomes in one transaction."""
        rows = []
        for spec, outcome in items:
            if outcome.seed != spec.seed:
                raise ExperimentError(
                    f"outcome seed {outcome.seed} does not match spec seed "
                    f"{spec.seed} (protocol {spec.protocol!r}, n={spec.n})"
                )
            rows.append(
                (
                    spec.content_hash(),
                    spec.protocol,
                    spec.n,
                    spec.seed,
                    spec.engine,
                    spec.to_json(),
                    outcome.steps,
                    outcome.parallel_time,
                    outcome.leader_count,
                    outcome.distinct_states,
                    outcome.duration,
                    outcome.telemetry,
                    outcome.phases,
                    outcome.faults,
                    outcome.scheduler,
                )
            )
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO trials"
                " (spec_hash, protocol, n, seed, engine, spec_json, steps,"
                "  parallel_time, leader_count, distinct_states, duration,"
                "  telemetry, phases, faults, scheduler)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )

    # ------------------------------------------------------------------
    # failure ledger (campaign-fabric robustness)
    # ------------------------------------------------------------------

    def record_failure(
        self,
        spec: TrialSpec,
        attempts: int,
        error: str,
        quarantined: bool = False,
    ) -> None:
        """Upsert one outstanding failure for ``spec``."""
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO failures"
                " (spec_hash, protocol, n, seed, engine, spec_json,"
                "  attempts, error, quarantined, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, datetime('now'))",
                (
                    spec.content_hash(),
                    spec.protocol,
                    spec.n,
                    spec.seed,
                    spec.engine,
                    spec.to_json(),
                    int(attempts),
                    str(error),
                    1 if quarantined else 0,
                ),
            )

    def clear_failure(self, spec: TrialSpec) -> None:
        """Drop the failure row for ``spec`` (it succeeded after all)."""
        self.clear_failures([spec])

    def clear_failures(self, specs: Iterable[TrialSpec]) -> None:
        """Drop the failure rows for ``specs`` in one transaction."""
        with self._connection:
            self._connection.executemany(
                "DELETE FROM failures WHERE spec_hash = ?",
                [(spec.content_hash(),) for spec in specs],
            )

    def failures(self) -> list[dict[str, object]]:
        """Every outstanding failure as a plain dict (empty when the
        table is absent — pre-migration readonly stores)."""
        if not self._has_failures:
            return []
        cursor = self._connection.execute(
            "SELECT spec_hash, protocol, n, seed, engine, spec_json,"
            " attempts, error, quarantined, updated_at"
            " FROM failures ORDER BY protocol, n, engine, seed"
        )
        names = (
            "spec_hash",
            "protocol",
            "n",
            "seed",
            "engine",
            "spec_json",
            "attempts",
            "error",
            "quarantined",
            "updated_at",
        )
        rows = []
        for row in cursor:
            record = dict(zip(names, row))
            record["quarantined"] = bool(record["quarantined"])
            rows.append(record)
        return rows


def _outcome_from_row(row: Sequence[object]) -> TrialOutcome:
    (
        seed,
        steps,
        parallel_time,
        leader_count,
        distinct_states,
        duration,
        telemetry,
        phases,
        faults,
        scheduler,
    ) = row
    return TrialOutcome(
        seed=int(seed),
        steps=int(steps),
        parallel_time=float(parallel_time),
        leader_count=int(leader_count),
        distinct_states=int(distinct_states),
        duration=float(duration),
        telemetry=None if telemetry is None else str(telemetry),
        phases=None if phases is None else str(phases),
        faults=None if faults is None else str(faults),
        scheduler=None if scheduler is None else str(scheduler),
    )
