"""Trial execution: serial fast path and a multiprocessing worker farm.

:func:`run_specs` is the one entry point.  It consults the optional
:class:`~repro.orchestration.store.TrialStore` first, executes only the
missing trials — serially for ``jobs=1`` (bit-identical to the historical
in-process loop, so determinism guarantees are untouched) or across a
``multiprocessing`` pool for ``jobs>1`` — and persists every fresh outcome
as it arrives, so an interrupt (Ctrl-C, crash, OOM-kill) loses at most the
in-flight trials and a re-run resumes where it stopped.

Each trial re-derives everything from its :class:`TrialSpec` inside the
worker (protocol instance, engine, RNG from the spec's own seed), so
results are independent of worker count and scheduling order: ``jobs=4``
produces byte-identical per-seed outcomes to ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import signal
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.batch import BatchSimulator
from repro.engine.multiset import MultisetSimulator
from repro.engine.protocol import Protocol
from repro.engine.simulator import AgentSimulator
from repro.errors import ConvergenceError, ExperimentError
from repro.orchestration.spec import (
    AUTO_ENGINE,
    ENGINES,
    TrialOutcome,
    TrialSpec,
    default_engine,
)
from repro.orchestration.store import TrialStore

__all__ = [
    "RunReport",
    "build_simulator",
    "execute_trial",
    "measure_trial",
    "run_specs",
]

#: Progress callback: ``progress(done, total, outcome)`` after every trial
#: (cached trials are reported up front as a single batch with outcome
#: ``None``).
ProgressCallback = Callable[[int, int, TrialOutcome | None], None]

Simulator = AgentSimulator | MultisetSimulator | BatchSimulator

_ENGINE_FACTORIES: dict[str, Callable[..., Simulator]] = {
    "agent": AgentSimulator,
    "multiset": MultisetSimulator,
    "batch": BatchSimulator,
}
if set(_ENGINE_FACTORIES) != set(ENGINES):  # pragma: no cover
    raise AssertionError("engine factories out of sync with spec.ENGINES")


def build_simulator(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
) -> Simulator:
    """Build the requested engine (one of :data:`~repro.orchestration.spec.ENGINES`).

    ``engine="auto"`` picks per population size via
    :func:`~repro.orchestration.spec.default_engine`.
    """
    if engine == AUTO_ENGINE:
        engine = default_engine(n)
    try:
        factory = _ENGINE_FACTORIES[engine]
    except KeyError:
        raise ExperimentError(
            f"unknown engine {engine!r}; use one of: {', '.join(ENGINES)}"
        ) from None
    return factory(protocol, n, seed=seed)


def measure_trial(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
    max_steps: int | None = None,
    label: str = "",
) -> TrialOutcome:
    """Run one already-built protocol to stabilization.

    The single implementation of per-trial measurement semantics, shared
    by the declarative :func:`execute_trial` and the factory-callable
    path of :func:`repro.experiments.runner.stabilization_trials`.  A
    budget overrun surfaces as :class:`ConvergenceError` naming the
    offending seed (plus ``label`` for context), so one divergent trial
    never aborts a sweep opaquely.
    """
    sim = build_simulator(protocol, n, seed=seed, engine=engine)
    try:
        steps = sim.run_until_stabilized(max_steps=max_steps)
    except ConvergenceError as exc:
        context = f"{label}, " if label else ""
        raise ConvergenceError(
            f"trial with seed {seed} did not stabilize "
            f"({context}n={n}, engine {engine!r}): {exc}",
            steps=exc.steps,
        ) from exc
    return TrialOutcome(
        seed=seed,
        steps=steps,
        parallel_time=sim.parallel_time,
        leader_count=sim.leader_count,
        distinct_states=sim.distinct_states_seen(),
    )


def execute_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one declaratively specified trial to stabilization.

    A fresh protocol instance per trial keeps per-instance caches (none
    today, but custom protocols may memoize) from leaking across trials.
    """
    return measure_trial(
        spec.build_protocol(),
        spec.n,
        spec.seed,
        engine=spec.engine,
        max_steps=spec.max_steps,
        label=f"protocol {spec.protocol!r}",
    )


def _execute_indexed(task: tuple[int, TrialSpec]) -> tuple[int, TrialOutcome]:
    index, spec = task
    return index, execute_trial(spec)


def _worker_init() -> None:
    # Ctrl-C is the parent's to handle (terminate + resumable store);
    # letting it also hit the workers just spews one KeyboardInterrupt
    # traceback per process over the graceful shutdown message.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass(frozen=True)
class RunReport:
    """Outcomes in spec order, plus how much work the cache saved."""

    outcomes: list[TrialOutcome]
    executed: int
    cached: int

    @property
    def total(self) -> int:
        return self.executed + self.cached


def _chunk_size(pending: int, jobs: int, persisting: bool) -> int:
    """Bounded task chunking: amortize IPC without starving stragglers.

    ``imap_unordered`` only hands back a chunk's results once the whole
    chunk finishes, so when outcomes are being persisted each trial is its
    own chunk — an interrupt then loses at most the truly in-flight
    trials, never completed-but-undelivered ones.  Without a store there
    is nothing to lose, and chunking just amortizes IPC.
    """
    if persisting:
        return 1
    return max(1, min(16, pending // (jobs * 4) or 1))


def run_specs(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    store: TrialStore | None = None,
    progress: ProgressCallback | None = None,
) -> RunReport:
    """Execute ``specs``, reusing ``store`` hits; return outcomes in order.

    ``jobs=1`` runs in-process.  ``jobs>1`` shards the *missing* trials
    over a worker pool; fresh outcomes are persisted to ``store`` as they
    complete, so a ``KeyboardInterrupt`` (re-raised after the pool is torn
    down) leaves a resumable store behind.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be positive, got {jobs}")
    cached = store.get_many(specs) if store is not None else {}
    results: dict[int, TrialOutcome] = {}
    pending: list[tuple[int, TrialSpec]] = []
    for index, spec in enumerate(specs):
        hit = cached.get(spec.content_hash())
        if hit is None:
            pending.append((index, spec))
        else:
            results[index] = hit
    total = len(specs)
    done = len(results)
    if progress is not None and done:
        progress(done, total, None)

    def record(index: int, outcome: TrialOutcome) -> None:
        nonlocal done
        results[index] = outcome
        if store is not None:
            store.put(specs[index], outcome)
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    if jobs == 1 or len(pending) <= 1:
        for index, spec in pending:
            record(index, execute_trial(spec))
    else:
        processes = min(jobs, len(pending))
        chunksize = _chunk_size(len(pending), processes, store is not None)
        pool = multiprocessing.Pool(processes=processes, initializer=_worker_init)
        try:
            for index, outcome in pool.imap_unordered(
                _execute_indexed, pending, chunksize=chunksize
            ):
                record(index, outcome)
            pool.close()
        except BaseException:
            # Covers worker failures (e.g. ConvergenceError) and Ctrl-C in
            # the parent alike: stop the workers, keep what's persisted.
            pool.terminate()
            raise
        finally:
            pool.join()
    outcomes = [results[index] for index in range(total)]
    return RunReport(
        outcomes=outcomes, executed=len(pending), cached=total - len(pending)
    )
