"""Trial execution: serial fast path and a multiprocessing worker farm.

:func:`run_specs` is the one entry point.  It consults the optional
:class:`~repro.orchestration.store.TrialStore` first, executes only the
missing trials — serially for ``jobs=1`` (bit-identical to the historical
in-process loop, so determinism guarantees are untouched) or across a
``multiprocessing`` pool for ``jobs>1`` — and persists every fresh outcome
as it arrives, so an interrupt (Ctrl-C, crash, OOM-kill) loses at most the
in-flight trials and a re-run resumes where it stopped.

Each trial re-derives everything from its :class:`TrialSpec` inside the
worker (protocol instance, engine, RNG from the spec's own seed), so
results are independent of worker count and scheduling order: ``jobs=4``
produces byte-identical per-seed outcomes to ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import signal
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

from repro.engine.batch import BatchSimulator
from repro.engine.ensemble import EnsembleLaneSimulator, EnsembleSimulator
from repro.engine.ensemble.simulator import DEFAULT_DETACH_LANES
from repro.engine.kernel import compiled_kernel_for, kernels_enabled
from repro.engine.kernel.multiset import KernelMultisetSimulator
from repro.engine.multiset import MultisetSimulator
from repro.engine.protocol import Protocol
from repro.engine.simulator import AgentSimulator
from repro.engine.superbatch import SuperBatchSimulator
from repro.errors import ConvergenceError, ExperimentError
from repro.orchestration.spec import (
    AUTO_ENGINE,
    ENGINES,
    ENSEMBLE_ENGINE,
    ENSEMBLE_MIN_TRIALS,
    TrialOutcome,
    TrialSpec,
    default_engine,
)
from repro.orchestration.store import TrialStore
from repro.telemetry.core import trial_telemetry_json
from repro.telemetry.trace import make_tracer

__all__ = [
    "ENSEMBLE_MAX_LANES",
    "RunReport",
    "build_simulator",
    "execute_trial",
    "measure_trial",
    "run_specs",
]

#: Largest lane count packed into one :class:`EnsembleSimulator`; bigger
#: cells run as consecutive full-width ensembles (bounds the draw-buffer
#: working set to ~64 MiB at the default batch size).
ENSEMBLE_MAX_LANES = 256

#: Progress callback: ``progress(done, total, outcome)`` after every trial
#: (cached trials are reported up front as a single batch with outcome
#: ``None``).
ProgressCallback = Callable[[int, int, TrialOutcome | None], None]

Simulator = (
    AgentSimulator
    | MultisetSimulator
    | KernelMultisetSimulator
    | BatchSimulator
    | SuperBatchSimulator
    | EnsembleLaneSimulator
)

_ENGINE_FACTORIES: dict[str, Callable[..., Simulator]] = {
    "agent": AgentSimulator,
    "multiset": MultisetSimulator,
    "batch": BatchSimulator,
    "superbatch": SuperBatchSimulator,
}
if set(_ENGINE_FACTORIES) != set(ENGINES):  # pragma: no cover
    raise AssertionError("engine factories out of sync with spec.ENGINES")


def build_simulator(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
    use_kernel: bool | None = None,
) -> Simulator:
    """Build the requested engine (one of :data:`~repro.orchestration.spec.ENGINES`).

    ``engine="auto"`` picks per population size via
    :func:`~repro.orchestration.spec.default_engine`;
    ``engine="ensemble"`` builds a single-lane facade over the ensemble
    engine's exact scalar lane (multi-lane packing lives in
    :func:`run_specs`, which needs whole spec batches to vectorize over).

    ``use_kernel`` selects the transition-resolution path (see
    :mod:`repro.engine.kernel`): ``None`` auto-selects the compiled
    kernel for protocols that ship one — which for ``"multiset"`` also
    swaps in the kernel-backed sorted-slot engine, the same chain with
    byte-identical trajectories — while ``True``/``False`` force one
    path (benchmarks and equivalence tests).  The choice never touches
    spec identity: trial hashes name the engine, not the path.
    """
    if engine == AUTO_ENGINE:
        engine = default_engine(n)
    if engine == ENSEMBLE_ENGINE:
        return EnsembleLaneSimulator(protocol, n, seed=seed, use_kernel=use_kernel)
    if engine == "multiset":
        kernelize = use_kernel
        if kernelize is None:
            kernelize = (
                kernels_enabled() and compiled_kernel_for(protocol) is not None
            )
        if kernelize:
            return KernelMultisetSimulator(protocol, n, seed=seed)
    try:
        factory = _ENGINE_FACTORIES[engine]
    except KeyError:
        raise ExperimentError(
            f"unknown engine {engine!r}; use one of: "
            f"{', '.join(ENGINES)}, {ENSEMBLE_ENGINE}, {AUTO_ENGINE}"
        ) from None
    return factory(protocol, n, seed=seed, use_kernel=use_kernel)


def measure_trial(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
    max_steps: int | None = None,
    label: str = "",
) -> TrialOutcome:
    """Run one already-built protocol to stabilization.

    The single implementation of per-trial measurement semantics, shared
    by the declarative :func:`execute_trial` and the factory-callable
    path of :func:`repro.experiments.runner.stabilization_trials`.  A
    budget overrun surfaces as :class:`ConvergenceError` naming the
    offending seed (plus ``label`` for context), so one divergent trial
    never aborts a sweep opaquely.
    """
    sim = build_simulator(protocol, n, seed=seed, engine=engine)
    started = perf_counter()
    try:
        steps = sim.run_until_stabilized(max_steps=max_steps)
    except ConvergenceError as exc:
        context = f"{label}, " if label else ""
        raise ConvergenceError(
            f"trial with seed {seed} did not stabilize "
            f"({context}n={n}, engine {engine!r}): {exc}",
            steps=exc.steps,
        ) from exc
    duration = perf_counter() - started
    return TrialOutcome(
        seed=seed,
        steps=steps,
        parallel_time=sim.parallel_time,
        leader_count=sim.leader_count,
        distinct_states=sim.distinct_states_seen(),
        duration=duration,
        telemetry=trial_telemetry_json(sim),
        phases=getattr(sim, "phases_json", lambda: None)(),
    )


def execute_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one declaratively specified trial to stabilization.

    A fresh protocol instance per trial keeps per-instance caches (none
    today, but custom protocols may memoize) from leaking across trials.
    """
    return measure_trial(
        spec.build_protocol(),
        spec.n,
        spec.seed,
        engine=spec.engine,
        max_steps=spec.max_steps,
        label=f"protocol {spec.protocol!r}",
    )


def _execute_task(task):
    """Worker entry point: one solo trial or one ensemble lane chunk.

    ``("trial", index, spec)`` runs one spec solo; ``("ensemble",
    chunk)`` advances a same-cell chunk through ensemble lanes inside
    the worker.  Returns ``(outcomes, failure)``: index-tagged outcomes
    for every lane/trial that finished, plus a ``(message, steps)``
    marker when a lane in the chunk overran its budget.  The marker —
    rather than a raised exception — is what lets the parent record the
    chunk's completed lanes into the store *before* re-raising, so a
    divergent seed costs a resumed campaign only itself and the
    genuinely in-flight work.
    """
    if task[0] == "trial":
        _kind, index, spec = task
        return [(index, execute_trial(spec))], None
    _kind, chunk = task
    results: list[tuple[int, TrialOutcome]] = []
    failure: tuple[str, int | None] | None = None
    try:
        _run_ensemble_chunk(
            chunk, lambda index, outcome: results.append((index, outcome))
        )
    except ConvergenceError as exc:
        failure = (str(exc), exc.steps)
    return results, failure


def _worker_init() -> None:
    # Ctrl-C is the parent's to handle (terminate + resumable store);
    # letting it also hit the workers just spews one KeyboardInterrupt
    # traceback per process over the graceful shutdown message.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass(frozen=True)
class RunReport:
    """Outcomes in spec order, plus how much work the cache saved.

    ``executed_duration`` sums the wall-clock seconds of the freshly
    executed trials (worker-seconds under ``jobs>1``, not elapsed time).
    """

    outcomes: list[TrialOutcome]
    executed: int
    cached: int
    executed_duration: float = 0.0

    @property
    def total(self) -> int:
        return self.executed + self.cached


def _chunk_size(pending: int, jobs: int, persisting: bool) -> int:
    """Bounded task chunking: amortize IPC without starving stragglers.

    ``imap_unordered`` only hands back a chunk's results once the whole
    chunk finishes, so when outcomes are being persisted each trial is its
    own chunk — an interrupt then loses at most the truly in-flight
    trials, never completed-but-undelivered ones.  Without a store there
    is nothing to lose, and chunking just amortizes IPC.
    """
    if persisting:
        return 1
    return max(1, min(16, pending // (jobs * 4) or 1))


def _ensemble_groups(
    pending: Sequence[tuple[int, TrialSpec]], min_lanes: int
) -> list[list[tuple[int, TrialSpec]]]:
    """Pending multiset trials grouped into packable same-cell batches.

    A group shares everything but the seed — one protocol instance, one
    population size, one budget — which is exactly what
    :class:`EnsembleSimulator` lanes require.  Groups below ``min_lanes``
    stay with the solo path (vector overhead would not amortize).
    """
    grouped: dict[tuple, list[tuple[int, TrialSpec]]] = {}
    for index, spec in pending:
        if spec.engine != "multiset":
            continue
        key = (spec.protocol, spec.params, spec.n, spec.max_steps, spec.detector)
        grouped.setdefault(key, []).append((index, spec))
    return [group for group in grouped.values() if len(group) >= min_lanes]


#: Preferred minimum lanes per worker-dispatched chunk: twice the
#: engine's default detach floor, so a shard still has a meaningful
#: vectorized phase instead of detaching straight to scalar lanes.
ENSEMBLE_CHUNK_FLOOR = 2 * DEFAULT_DETACH_LANES


def _ensemble_chunks(
    group: list[tuple[int, TrialSpec]], jobs: int, min_lanes: int
) -> list[list[tuple[int, TrialSpec]]]:
    """Split one cell's group into per-task lane chunks.

    With ``jobs`` workers a deep cell must not serialize onto one of
    them — but sharding too finely defeats the packing: a chunk below
    the engine's detach floor would run every lane scalar.  So the
    group splits into at most ``jobs`` chunks of at least
    :data:`ENSEMBLE_CHUNK_FLOOR` lanes (whole group when smaller),
    capped at :data:`ENSEMBLE_MAX_LANES` (draw-buffer memory).
    Chunking never affects results: lanes are packing-independent.
    """
    floor = max(min_lanes, ENSEMBLE_CHUNK_FLOOR)
    chunk_count = max(1, min(max(jobs, 1), len(group) // floor))
    per_chunk = min(-(-len(group) // chunk_count), ENSEMBLE_MAX_LANES)
    return [
        group[start : start + per_chunk]
        for start in range(0, len(group), per_chunk)
    ]


def _lane_outcome_to_trial(
    lane_outcome, n: int, duration: float = 0.0
) -> TrialOutcome:
    # ``telemetry`` stays None for packed lanes: a lane's counters would
    # depend on which siblings it was packed with (a jobs-dependent
    # runtime choice), and store rows must stay packing-independent.
    # ``phases`` likewise: the packed engine carries no per-lane probe
    # schedule, so only solo runs (and the lane facade) record a series.
    return TrialOutcome(
        seed=lane_outcome.seed,
        steps=lane_outcome.steps,
        parallel_time=lane_outcome.steps / n,
        leader_count=lane_outcome.leader_count,
        distinct_states=lane_outcome.distinct_states,
        duration=duration,
    )


def _run_ensemble_chunk(
    chunk: list[tuple[int, TrialSpec]],
    record: Callable[[int, TrialOutcome], None],
) -> None:
    """Execute one same-cell chunk through ensemble lanes.

    Outcomes stream into ``record`` as lanes retire, so the store stays
    resumable even if a later lane's ConvergenceError aborts the run.
    Results are byte-identical to executing each spec solo (the lanes are
    the same chain), independent of packing and chunking.
    """
    sample = chunk[0][1]
    n = sample.n
    index_of_lane = [index for index, _spec in chunk]
    simulator = EnsembleSimulator(
        sample.build_protocol(), n, [spec.seed for _index, spec in chunk]
    )
    started = perf_counter()

    def lane_done(lane_outcome) -> None:
        # Chunk-start-to-retire wall time: lanes share sweeps, so this
        # is the honest "how long did this trial occupy a worker" figure
        # (siblings' work included), not a per-lane solo cost.
        record(
            index_of_lane[lane_outcome.index],
            _lane_outcome_to_trial(
                lane_outcome, n, duration=perf_counter() - started
            ),
        )

    tracer = make_tracer()
    cell_span = (
        nullcontext()
        if tracer is None
        else tracer.span(
            "cell",
            cat="cell",
            protocol=sample.protocol,
            n=n,
            lanes=len(chunk),
        )
    )
    with cell_span:
        simulator.run_until_stabilized(
            max_steps=sample.max_steps, on_lane_done=lane_done
        )


def run_specs(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    store: TrialStore | None = None,
    progress: ProgressCallback | None = None,
    ensemble_lanes: int | None = ENSEMBLE_MIN_TRIALS,
) -> RunReport:
    """Execute ``specs``, reusing ``store`` hits; return outcomes in order.

    ``jobs=1`` runs in-process.  ``jobs>1`` shards the *missing* trials
    over a worker pool; fresh outcomes are persisted to ``store`` as they
    complete, so a ``KeyboardInterrupt`` (re-raised after the pool is torn
    down) leaves a resumable store behind.

    Missing *multiset* trials that share a cell (protocol, params, n,
    budget) are packed ``ensemble_lanes``-or-more at a time into
    :class:`~repro.engine.ensemble.EnsembleSimulator` lanes — an
    optimization that is invisible in results (lanes are bit-identical
    to solo multiset runs; rows land in the same store slots) but
    reaches an order of magnitude in throughput on multi-trial campaign
    cells.  With ``jobs=1`` the lanes run in-process and persist one by
    one as they retire; with ``jobs>1`` each cell shards into ~``jobs``
    lane chunks that run as pool tasks alongside the unpackable
    remainder, persisting per completed chunk.  Pass
    ``ensemble_lanes=0``/``None`` to force every trial down the solo
    path (benchmarks do, to measure the pool baseline the ensemble is
    compared against).
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be positive, got {jobs}")
    cached = store.get_many(specs) if store is not None else {}
    results: dict[int, TrialOutcome] = {}
    pending: list[tuple[int, TrialSpec]] = []
    for index, spec in enumerate(specs):
        hit = cached.get(spec.content_hash())
        if hit is None:
            pending.append((index, spec))
        else:
            results[index] = hit
    total = len(specs)
    done = len(results)
    if progress is not None and done:
        progress(done, total, None)

    executed_duration = 0.0

    def record(index: int, outcome: TrialOutcome) -> None:
        nonlocal done, executed_duration
        results[index] = outcome
        executed_duration += outcome.duration
        if store is not None:
            store.put(specs[index], outcome)
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    missing = len(pending)
    groups = (
        _ensemble_groups(pending, ensemble_lanes) if ensemble_lanes else []
    )
    packed = {index for group in groups for index, _spec in group}
    solo_pending = [
        (index, spec) for index, spec in pending if index not in packed
    ]

    if jobs == 1 or len(pending) <= 1:
        # In-process: ensemble lanes stream straight into ``record`` as
        # they retire — the finest persistence granularity available.
        for group in groups:
            for chunk in _ensemble_chunks(group, 1, ensemble_lanes or 1):
                _run_ensemble_chunk(chunk, record)
        for index, spec in solo_pending:
            record(index, execute_trial(spec))
    else:
        # Worker pool: ensemble chunks are pool tasks like any solo
        # trial, so deep cells shard across workers and packed work
        # overlaps the unpackable remainder.
        tasks: list = [
            ("ensemble", chunk)
            for group in groups
            for chunk in _ensemble_chunks(group, jobs, ensemble_lanes or 1)
        ]
        tasks += [("trial", index, spec) for index, spec in solo_pending]
        processes = min(jobs, len(tasks))
        chunksize = _chunk_size(len(tasks), processes, store is not None)
        pool = multiprocessing.Pool(processes=processes, initializer=_worker_init)
        try:
            for task_results, failure in pool.imap_unordered(
                _execute_task, tasks, chunksize=chunksize
            ):
                for index, outcome in task_results:
                    record(index, outcome)
                if failure is not None:
                    message, failed_steps = failure
                    raise ConvergenceError(message, steps=failed_steps)
            pool.close()
        except BaseException:
            # Covers worker failures (e.g. ConvergenceError) and Ctrl-C in
            # the parent alike: stop the workers, keep what's persisted.
            pool.terminate()
            raise
        finally:
            pool.join()
    outcomes = [results[index] for index in range(total)]
    return RunReport(
        outcomes=outcomes,
        executed=missing,
        cached=total - missing,
        executed_duration=executed_duration,
    )
