"""Trial execution: serial fast path and a multiprocessing worker farm.

:func:`run_specs` is the one entry point.  It consults the optional
:class:`~repro.orchestration.store.TrialStore` first, executes only the
missing trials — serially for ``jobs=1`` (bit-identical to the historical
in-process loop, so determinism guarantees are untouched) or across a
``multiprocessing`` pool for ``jobs>1`` — and persists every fresh outcome
as it arrives, so an interrupt (Ctrl-C, crash, OOM-kill) loses at most the
in-flight trials and a re-run resumes where it stopped.

Each trial re-derives everything from its :class:`TrialSpec` inside the
worker (protocol instance, engine, RNG from the spec's own seed), so
results are independent of worker count and scheduling order: ``jobs=4``
produces byte-identical per-seed outcomes to ``jobs=1``.

Campaign-fabric robustness (opt-in per call): a per-trial wall-clock
``trial_timeout``, bounded ``retries`` with exponential backoff, and
``on_failure="quarantine"`` — record repeatedly-failing specs in the
store's failure ledger and *complete the campaign around them* instead
of aborting it.  The default (``on_failure="raise"``, no retries) is
byte-for-byte the historical behavior.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

from repro.engine.batch import BatchSimulator
from repro.engine.ensemble import EnsembleLaneSimulator, EnsembleSimulator
from repro.engine.ensemble.simulator import DEFAULT_DETACH_LANES
from repro.engine.kernel import compiled_kernel_for, kernels_enabled
from repro.engine.kernel.multiset import KernelMultisetSimulator
from repro.engine.multiset import MultisetSimulator
from repro.engine.protocol import Protocol
from repro.engine.simulator import AgentSimulator
from repro.engine.superbatch import SuperBatchSimulator
from repro.errors import ConvergenceError, ExperimentError, TrialTimeoutError
from repro.faults.checkpoint import TrialCheckpointer, make_checkpointer
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.orchestration.spec import (
    AUTO_ENGINE,
    ENGINES,
    ENSEMBLE_ENGINE,
    ENSEMBLE_MIN_TRIALS,
    TrialOutcome,
    TrialSpec,
    default_engine,
)
from repro.orchestration.store import TrialStore
from repro.schedulers.graphs import graph_scheduler_for
from repro.schedulers.spec import SchedulerSpec, scheduler_json
from repro.schedulers.weighted import (
    StateWeightedScheduler,
    WeightedBatchSimulator,
    WeightedMultisetSimulator,
    WeightedSuperBatchSimulator,
)
from repro.telemetry.core import trial_telemetry_json
from repro.telemetry.trace import make_tracer

__all__ = [
    "ENSEMBLE_MAX_LANES",
    "RunReport",
    "build_simulator",
    "execute_trial",
    "measure_trial",
    "run_specs",
]

#: Largest lane count packed into one :class:`EnsembleSimulator`; bigger
#: cells run as consecutive full-width ensembles (bounds the draw-buffer
#: working set to ~64 MiB at the default batch size).
ENSEMBLE_MAX_LANES = 256

#: Progress callback: ``progress(done, total, outcome)`` after every trial
#: (cached trials are reported up front as a single batch with outcome
#: ``None``).
ProgressCallback = Callable[[int, int, TrialOutcome | None], None]

Simulator = (
    AgentSimulator
    | MultisetSimulator
    | KernelMultisetSimulator
    | BatchSimulator
    | SuperBatchSimulator
    | EnsembleLaneSimulator
)

_ENGINE_FACTORIES: dict[str, Callable[..., Simulator]] = {
    "agent": AgentSimulator,
    "multiset": MultisetSimulator,
    "batch": BatchSimulator,
    "superbatch": SuperBatchSimulator,
}
if set(_ENGINE_FACTORIES) != set(ENGINES):  # pragma: no cover
    raise AssertionError("engine factories out of sync with spec.ENGINES")


def build_simulator(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
    use_kernel: bool | None = None,
    scheduler: SchedulerSpec | None = None,
) -> Simulator:
    """Build the requested engine (one of :data:`~repro.orchestration.spec.ENGINES`).

    ``engine="auto"`` picks per population size via
    :func:`~repro.orchestration.spec.default_engine`;
    ``engine="ensemble"`` builds a single-lane facade over the ensemble
    engine's exact scalar lane (multi-lane packing lives in
    :func:`run_specs`, which needs whole spec batches to vectorize over).

    ``use_kernel`` selects the transition-resolution path (see
    :mod:`repro.engine.kernel`): ``None`` auto-selects the compiled
    kernel for protocols that ship one — which for ``"multiset"`` also
    swaps in the kernel-backed sorted-slot engine, the same chain with
    byte-identical trajectories — while ``True``/``False`` force one
    path (benchmarks and equivalence tests).  The choice never touches
    spec identity: trial hashes name the engine, not the path.

    ``scheduler`` selects the interaction schedule
    (:class:`~repro.schedulers.spec.SchedulerSpec`).  ``None`` and an
    explicit ``uniform`` spec take the exact pre-scheduler path — same
    construction, same draws, bit-identical trajectories.  A
    ``weighted`` spec routes count-level engines to the reweighted
    block samplers (:mod:`repro.schedulers.weighted`) and the agent
    engine to a thinning :class:`StateWeightedScheduler`; graph
    families attach a :class:`~repro.schedulers.graphs.GraphScheduler`
    to the agent engine (the only engine with agent identity — the
    degradation ladder in :func:`~repro.orchestration.spec.trial_specs`
    routes such specs here).
    """
    if engine == AUTO_ENGINE:
        engine = default_engine(n)
    if scheduler is not None and scheduler.family != "uniform":
        return _build_scheduled_simulator(
            protocol, n, seed, engine, scheduler, use_kernel
        )
    if engine == ENSEMBLE_ENGINE:
        return EnsembleLaneSimulator(protocol, n, seed=seed, use_kernel=use_kernel)
    if engine == "multiset":
        kernelize = use_kernel
        if kernelize is None:
            kernelize = (
                kernels_enabled() and compiled_kernel_for(protocol) is not None
            )
        if kernelize:
            return KernelMultisetSimulator(protocol, n, seed=seed)
    try:
        factory = _ENGINE_FACTORIES[engine]
    except KeyError:
        raise ExperimentError(
            f"unknown engine {engine!r}; use one of: "
            f"{', '.join(ENGINES)}, {ENSEMBLE_ENGINE}, {AUTO_ENGINE}"
        ) from None
    return factory(protocol, n, seed=seed, use_kernel=use_kernel)


def _build_scheduled_simulator(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str,
    scheduler: SchedulerSpec,
    use_kernel: bool | None,
) -> Simulator:
    """Engine construction for non-uniform schedules.

    The weighted family has a sound implementation on every engine
    (thinning — see :mod:`repro.schedulers.weighted`); graph families
    exist only on the per-agent engine, which the spec layer guarantees
    by construction (``TrialSpec.create`` rejects count-level engines
    for them), so anything else arriving here is a programming error.
    """
    scheduler.validate_against(n)
    if scheduler.family == "weighted":
        weights = scheduler.weight_map
        if engine == "multiset":
            # The kernel-backed sorted-slot engine has no thinning hook;
            # the weighted multiset engine resolves transitions through
            # the same cache (kernel-backed when available), so only the
            # sampling loop differs.
            return WeightedMultisetSimulator(
                protocol, n, weights, seed=seed, use_kernel=use_kernel
            )
        if engine == "batch":
            return WeightedBatchSimulator(
                protocol, n, weights, seed=seed, use_kernel=use_kernel
            )
        if engine == "superbatch":
            return WeightedSuperBatchSimulator(
                protocol, n, weights, seed=seed, use_kernel=use_kernel
            )
        if engine == "agent":
            sim = AgentSimulator(protocol, n, seed=seed, use_kernel=use_kernel)
            sim.set_scheduler(StateWeightedScheduler(sim, weights, seed))
            return sim
        raise ExperimentError(
            f"weighted schedule has no {engine!r} implementation; use one "
            f"of: {', '.join(ENGINES)}"
        )
    if engine != "agent":
        raise ExperimentError(
            f"graph-restricted schedule ({scheduler.family!r}) needs the "
            f"per-agent engine, got {engine!r} — spec validation should "
            "have rejected or degraded this"
        )
    return AgentSimulator(
        protocol,
        n,
        seed=seed,
        scheduler=graph_scheduler_for(scheduler, n, seed),
        use_kernel=use_kernel,
    )


def measure_trial(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
    max_steps: int | None = None,
    label: str = "",
    fault_plan: FaultPlan | None = None,
    checkpointer: TrialCheckpointer | None = None,
    scheduler: SchedulerSpec | None = None,
) -> TrialOutcome:
    """Run one already-built protocol to stabilization.

    The single implementation of per-trial measurement semantics, shared
    by the declarative :func:`execute_trial` and the factory-callable
    path of :func:`repro.experiments.runner.stabilization_trials`.  A
    budget overrun surfaces as :class:`ConvergenceError` naming the
    offending seed (plus ``label`` for context), so one divergent trial
    never aborts a sweep opaquely.

    With a ``fault_plan`` the run is driven by a
    :class:`~repro.faults.injector.FaultInjector` through the plan's
    fault schedule and the outcome carries the serialized fault record
    (applied events, per-fault recovery times, and the engine the spec
    was degraded from when a non-exchangeable plan forced the per-agent
    engine).  With a ``checkpointer`` the run first restores any on-disk
    snapshot (in-trial resume after a kill), attaches the checkpointer
    to the engine's block loop, and clears the snapshot on success.

    With a ``scheduler`` spec the simulator is built for that schedule
    (see :func:`build_simulator`) and the outcome carries the serialized
    scheduler record, including the engine a graph-restricted spec was
    degraded from when the ladder forced the per-agent engine.
    """
    sim = build_simulator(protocol, n, seed=seed, engine=engine, scheduler=scheduler)
    injector = None
    degraded_from = None
    sched_degraded_from = None
    # Record what `auto` would have picked at this size, so the store
    # row says *why* a production-scale spec ran per-agent — once per
    # identity-needing input, in its own record.
    resolved = default_engine(n)
    degraded = engine == "agent" and resolved != "agent"
    if fault_plan is not None:
        injector = FaultInjector(fault_plan, n, seed)
        if not fault_plan.exchangeable and degraded:
            degraded_from = resolved
    if scheduler is not None and not scheduler.exchangeable and degraded:
        sched_degraded_from = resolved
    if checkpointer is not None:
        checkpointer.injector = injector
        checkpointer.restore(sim, injector)
        if hasattr(sim, "checkpointer"):
            sim.checkpointer = checkpointer
    started = perf_counter()
    try:
        if injector is not None:
            steps = injector.drive(sim, max_steps=max_steps)
        else:
            steps = sim.run_until_stabilized(max_steps=max_steps)
    except ConvergenceError as exc:
        context = f"{label}, " if label else ""
        raise ConvergenceError(
            f"trial with seed {seed} did not stabilize "
            f"({context}n={n}, engine {engine!r}): {exc}",
            steps=exc.steps,
        ) from exc
    duration = perf_counter() - started
    if checkpointer is not None:
        checkpointer.clear()
    return TrialOutcome(
        seed=seed,
        steps=steps,
        parallel_time=sim.parallel_time,
        leader_count=sim.leader_count,
        distinct_states=sim.distinct_states_seen(),
        duration=duration,
        telemetry=trial_telemetry_json(sim),
        phases=getattr(sim, "phases_json", lambda: None)(),
        faults=None if injector is None else injector.to_json(degraded_from),
        scheduler=(
            None
            if scheduler is None
            else scheduler_json(scheduler, sched_degraded_from)
        ),
    )


def execute_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one declaratively specified trial to stabilization.

    A fresh protocol instance per trial keeps per-instance caches (none
    today, but custom protocols may memoize) from leaking across trials.
    """
    return measure_trial(
        spec.build_protocol(),
        spec.n,
        spec.seed,
        engine=spec.engine,
        max_steps=spec.max_steps,
        label=f"protocol {spec.protocol!r}",
        fault_plan=spec.fault_plan,
        checkpointer=make_checkpointer(spec),
        scheduler=spec.scheduler,
    )


@contextmanager
def _trial_timeout(seconds: float | None):
    """Raise :class:`TrialTimeoutError` if the body outlives ``seconds``.

    SIGALRM-based, so it interrupts a trial stuck inside a NumPy call
    too.  A no-op when no timeout is set, off POSIX, or off the main
    thread (``signal.signal`` refuses there) — the timeout is a
    best-effort campaign guard, never a correctness dependency.
    """
    if not seconds or seconds <= 0 or not hasattr(signal, "setitimer"):
        yield
        return

    def _alarm(signum, frame):
        raise TrialTimeoutError(
            f"trial exceeded its {seconds:g}s wall-clock timeout"
        )

    try:
        previous = signal.signal(signal.SIGALRM, _alarm)
    except ValueError:  # not the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: A captured trial failure: ``(index, kind, message, steps)`` where
#: ``kind`` preserves the exception family across process boundaries so
#: the parent re-raises the matching type in ``on_failure="raise"`` mode.
Failure = tuple[int, str, str, int | None]


def _classify(exc: BaseException) -> str:
    if isinstance(exc, ConvergenceError):
        return "convergence"
    if isinstance(exc, TrialTimeoutError):
        return "timeout"
    return "error"


def _describe_failure(spec: TrialSpec, exc: BaseException) -> str:
    if isinstance(exc, ConvergenceError):
        return str(exc)  # measure_trial already named the seed
    return (
        f"trial with seed {spec.seed} failed (protocol {spec.protocol!r}, "
        f"n={spec.n}, engine {spec.engine!r}): {type(exc).__name__}: {exc}"
    )


def _raise_failure(kind: str, message: str, steps: int | None):
    if kind == "convergence":
        raise ConvergenceError(message, steps=steps)
    if kind == "timeout":
        raise TrialTimeoutError(message)
    raise ExperimentError(message)


def _attempt_solo(
    index: int, spec: TrialSpec, timeout: float | None
) -> tuple[tuple[int, TrialOutcome] | None, Failure | None]:
    """One captured solo execution: an outcome or a failure, never both.

    Catches :class:`Exception` only — ``KeyboardInterrupt`` and friends
    stay abort signals, not retryable trial failures.
    """
    try:
        with _trial_timeout(timeout):
            return (index, execute_trial(spec)), None
    except Exception as exc:
        return None, (
            index,
            _classify(exc),
            _describe_failure(spec, exc),
            getattr(exc, "steps", None),
        )


def _run_ensemble_task(
    chunk: list[tuple[int, TrialSpec]], timeout: float | None
) -> tuple[list[tuple[int, TrialOutcome]], list[Failure]]:
    """One ensemble chunk with per-spec failure isolation.

    A lane failure (budget overrun, timeout) aborts the packed run, but
    lanes are bit-identical to solo multiset runs — so the unretired
    lanes simply re-run solo inside the same task, each under its own
    timeout, and only the genuinely failing seeds come back as
    failures.  The chunk-level timeout scales with the lane count: a
    chunk is up to ``len(chunk)`` trials of work sharing sweeps.
    """
    results: list[tuple[int, TrialOutcome]] = []
    failures: list[Failure] = []
    retired: set[int] = set()

    def lane_record(index: int, outcome: TrialOutcome) -> None:
        retired.add(index)
        results.append((index, outcome))

    try:
        chunk_timeout = None if timeout is None else timeout * len(chunk)
        with _trial_timeout(chunk_timeout):
            _run_ensemble_chunk(chunk, lane_record)
    except Exception:
        for index, spec in chunk:
            if index in retired:
                continue
            result, failure = _attempt_solo(index, spec, timeout)
            if result is not None:
                results.append(result)
            if failure is not None:
                failures.append(failure)
    return results, failures


def _execute_task(task):
    """Worker entry point: one solo trial or one ensemble lane chunk.

    ``("trial", index, spec, timeout)`` runs one spec solo;
    ``("ensemble", chunk, timeout)`` advances a same-cell chunk through
    ensemble lanes inside the worker.  Returns ``(outcomes, failures)``:
    index-tagged outcomes for every lane/trial that finished, plus a
    captured :data:`Failure` per trial that did not.  Captured failures
    — rather than raised exceptions — are what let the parent record a
    task's completed work into the store *before* deciding (re-raise,
    retry, or quarantine), so a divergent seed costs a resumed campaign
    only itself and the genuinely in-flight work.
    """
    if task[0] == "trial":
        _kind, index, spec, timeout = task
        result, failure = _attempt_solo(index, spec, timeout)
        return ([result] if result is not None else []), (
            [failure] if failure is not None else []
        )
    _kind, chunk, timeout = task
    return _run_ensemble_task(chunk, timeout)


def _worker_init() -> None:
    # Ctrl-C is the parent's to handle (terminate + resumable store);
    # letting it also hit the workers just spews one KeyboardInterrupt
    # traceback per process over the graceful shutdown message.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass(frozen=True)
class RunReport:
    """Outcomes in spec order, plus how much work the cache saved.

    ``executed_duration`` sums the wall-clock seconds of the freshly
    executed trials (worker-seconds under ``jobs>1``, not elapsed time).

    Under ``on_failure="quarantine"`` the ``outcomes`` slots of failed
    trials hold ``None`` (the default raise mode never returns with
    one); ``failed``/``quarantined``/``retried`` count trials that ended
    the run failed, were recorded as quarantined, and were given at
    least one retry attempt, respectively.
    """

    outcomes: list[TrialOutcome | None]
    executed: int
    cached: int
    executed_duration: float = 0.0
    failed: int = 0
    quarantined: int = 0
    retried: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cached + self.failed


def _chunk_size(pending: int, jobs: int, persisting: bool) -> int:
    """Bounded task chunking: amortize IPC without starving stragglers.

    ``imap_unordered`` only hands back a chunk's results once the whole
    chunk finishes, so when outcomes are being persisted each trial is its
    own chunk — an interrupt then loses at most the truly in-flight
    trials, never completed-but-undelivered ones.  Without a store there
    is nothing to lose, and chunking just amortizes IPC.
    """
    if persisting:
        return 1
    return max(1, min(16, pending // (jobs * 4) or 1))


def _ensemble_groups(
    pending: Sequence[tuple[int, TrialSpec]], min_lanes: int
) -> list[list[tuple[int, TrialSpec]]]:
    """Pending multiset trials grouped into packable same-cell batches.

    A group shares everything but the seed — one protocol instance, one
    population size, one budget — which is exactly what
    :class:`EnsembleSimulator` lanes require.  Groups below ``min_lanes``
    stay with the solo path (vector overhead would not amortize).
    """
    grouped: dict[tuple, list[tuple[int, TrialSpec]]] = {}
    for index, spec in pending:
        # Faulted trials never pack: lanes share one sweep schedule, and
        # a mid-run count rewrite on one lane has no packed equivalent.
        # Scheduled trials likewise — per-lane proposal thinning has no
        # packed equivalent either.
        if (
            spec.engine != "multiset"
            or spec.fault_plan is not None
            or spec.scheduler is not None
        ):
            continue
        key = (spec.protocol, spec.params, spec.n, spec.max_steps, spec.detector)
        grouped.setdefault(key, []).append((index, spec))
    return [group for group in grouped.values() if len(group) >= min_lanes]


#: Preferred minimum lanes per worker-dispatched chunk: twice the
#: engine's default detach floor, so a shard still has a meaningful
#: vectorized phase instead of detaching straight to scalar lanes.
ENSEMBLE_CHUNK_FLOOR = 2 * DEFAULT_DETACH_LANES


def _ensemble_chunks(
    group: list[tuple[int, TrialSpec]], jobs: int, min_lanes: int
) -> list[list[tuple[int, TrialSpec]]]:
    """Split one cell's group into per-task lane chunks.

    With ``jobs`` workers a deep cell must not serialize onto one of
    them — but sharding too finely defeats the packing: a chunk below
    the engine's detach floor would run every lane scalar.  So the
    group splits into at most ``jobs`` chunks of at least
    :data:`ENSEMBLE_CHUNK_FLOOR` lanes (whole group when smaller),
    capped at :data:`ENSEMBLE_MAX_LANES` (draw-buffer memory).
    Chunking never affects results: lanes are packing-independent.
    """
    floor = max(min_lanes, ENSEMBLE_CHUNK_FLOOR)
    chunk_count = max(1, min(max(jobs, 1), len(group) // floor))
    per_chunk = min(-(-len(group) // chunk_count), ENSEMBLE_MAX_LANES)
    return [
        group[start : start + per_chunk]
        for start in range(0, len(group), per_chunk)
    ]


def _lane_outcome_to_trial(
    lane_outcome, n: int, duration: float = 0.0
) -> TrialOutcome:
    # ``telemetry`` stays None for packed lanes: a lane's counters would
    # depend on which siblings it was packed with (a jobs-dependent
    # runtime choice), and store rows must stay packing-independent.
    # ``phases`` likewise: the packed engine carries no per-lane probe
    # schedule, so only solo runs (and the lane facade) record a series.
    return TrialOutcome(
        seed=lane_outcome.seed,
        steps=lane_outcome.steps,
        parallel_time=lane_outcome.steps / n,
        leader_count=lane_outcome.leader_count,
        distinct_states=lane_outcome.distinct_states,
        duration=duration,
    )


def _run_ensemble_chunk(
    chunk: list[tuple[int, TrialSpec]],
    record: Callable[[int, TrialOutcome], None],
) -> None:
    """Execute one same-cell chunk through ensemble lanes.

    Outcomes stream into ``record`` as lanes retire, so the store stays
    resumable even if a later lane's ConvergenceError aborts the run.
    Results are byte-identical to executing each spec solo (the lanes are
    the same chain), independent of packing and chunking.
    """
    sample = chunk[0][1]
    n = sample.n
    index_of_lane = [index for index, _spec in chunk]
    simulator = EnsembleSimulator(
        sample.build_protocol(), n, [spec.seed for _index, spec in chunk]
    )
    started = perf_counter()

    def lane_done(lane_outcome) -> None:
        # Chunk-start-to-retire wall time: lanes share sweeps, so this
        # is the honest "how long did this trial occupy a worker" figure
        # (siblings' work included), not a per-lane solo cost.
        record(
            index_of_lane[lane_outcome.index],
            _lane_outcome_to_trial(
                lane_outcome, n, duration=perf_counter() - started
            ),
        )

    tracer = make_tracer()
    cell_span = (
        nullcontext()
        if tracer is None
        else tracer.span(
            "cell",
            cat="cell",
            protocol=sample.protocol,
            n=n,
            lanes=len(chunk),
        )
    )
    with cell_span:
        simulator.run_until_stabilized(
            max_steps=sample.max_steps, on_lane_done=lane_done
        )


#: First-retry backoff in seconds; each further round doubles it, capped
#: at :data:`RETRY_BACKOFF_CAP`.
RETRY_BACKOFF = 0.5
RETRY_BACKOFF_CAP = 30.0


def run_specs(
    specs: Sequence[TrialSpec],
    jobs: int = 1,
    store: TrialStore | None = None,
    progress: ProgressCallback | None = None,
    ensemble_lanes: int | None = ENSEMBLE_MIN_TRIALS,
    retries: int = 0,
    trial_timeout: float | None = None,
    on_failure: str = "raise",
    retry_backoff: float = RETRY_BACKOFF,
) -> RunReport:
    """Execute ``specs``, reusing ``store`` hits; return outcomes in order.

    ``jobs=1`` runs in-process.  ``jobs>1`` shards the *missing* trials
    over a worker pool; fresh outcomes are persisted to ``store`` as they
    complete, so a ``KeyboardInterrupt`` (re-raised after the pool is torn
    down) leaves a resumable store behind.

    Missing *multiset* trials that share a cell (protocol, params, n,
    budget) are packed ``ensemble_lanes``-or-more at a time into
    :class:`~repro.engine.ensemble.EnsembleSimulator` lanes — an
    optimization that is invisible in results (lanes are bit-identical
    to solo multiset runs; rows land in the same store slots) but
    reaches an order of magnitude in throughput on multi-trial campaign
    cells.  With ``jobs=1`` the lanes run in-process and persist one by
    one as they retire; with ``jobs>1`` each cell shards into ~``jobs``
    lane chunks that run as pool tasks alongside the unpackable
    remainder, persisting per completed chunk.  Pass
    ``ensemble_lanes=0``/``None`` to force every trial down the solo
    path (benchmarks do, to measure the pool baseline the ensemble is
    compared against).

    Robustness controls: ``trial_timeout`` bounds each trial's
    wall-clock seconds (SIGALRM, POSIX main thread; raises
    :class:`TrialTimeoutError`); ``retries`` re-runs failed trials as
    solo tasks up to that many extra rounds, sleeping an exponentially
    growing ``retry_backoff`` between rounds (transient failures — OOM
    kills, machine hiccups — get a fresh chance, deterministic ones
    fail identically and fall through).  ``on_failure`` decides what
    happens to trials that are still failing after the last round:
    ``"raise"`` (the historical default) records them in the store's
    failure ledger and re-raises the first failure; ``"quarantine"``
    records them as quarantined and *returns*, with ``None`` in the
    failed trials' outcome slots — a campaign completes and reports
    around its poison cells instead of dying on them.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be positive, got {jobs}")
    if on_failure not in ("raise", "quarantine"):
        raise ExperimentError(
            f"on_failure must be 'raise' or 'quarantine', got {on_failure!r}"
        )
    if retries < 0:
        raise ExperimentError(f"retries must be non-negative, got {retries}")
    cached = store.get_many(specs) if store is not None else {}
    results: dict[int, TrialOutcome] = {}
    pending: list[tuple[int, TrialSpec]] = []
    for index, spec in enumerate(specs):
        hit = cached.get(spec.content_hash())
        if hit is None:
            pending.append((index, spec))
        else:
            results[index] = hit
    total = len(specs)
    done = len(results)
    if progress is not None and done:
        progress(done, total, None)

    executed_duration = 0.0

    def record(index: int, outcome: TrialOutcome) -> None:
        nonlocal done, executed_duration
        results[index] = outcome
        executed_duration += outcome.duration
        if store is not None:
            store.put(specs[index], outcome)
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    # Captured-failure mode: failures accumulate instead of aborting the
    # round.  The historical raise-everything path survives untouched
    # for the default arguments (tier-1 determinism tests pin it).
    capture = retries > 0 or on_failure == "quarantine"
    failures: list[Failure] = []

    def run_round(tasks: list) -> None:
        if not tasks:
            return
        if jobs == 1 or len(tasks) <= 1:
            # In-process: ensemble lanes stream straight into ``record``
            # as they retire — the finest persistence granularity.
            for task in tasks:
                if task[0] == "trial":
                    _kind, index, spec, timeout = task
                    if capture:
                        result, failure = _attempt_solo(index, spec, timeout)
                        if result is not None:
                            record(*result)
                        if failure is not None:
                            failures.append(failure)
                    else:
                        with _trial_timeout(timeout):
                            record(index, execute_trial(spec))
                else:
                    _kind, chunk, timeout = task
                    if capture:
                        chunk_results, chunk_failures = _run_ensemble_task(
                            chunk, timeout
                        )
                        for index, outcome in chunk_results:
                            record(index, outcome)
                        failures.extend(chunk_failures)
                    else:
                        _run_ensemble_chunk(chunk, record)
        else:
            # Worker pool: ensemble chunks are pool tasks like any solo
            # trial, so deep cells shard across workers and packed work
            # overlaps the unpackable remainder.
            processes = min(jobs, len(tasks))
            chunksize = _chunk_size(len(tasks), processes, store is not None)
            pool = multiprocessing.Pool(
                processes=processes, initializer=_worker_init
            )
            try:
                for task_results, task_failures in pool.imap_unordered(
                    _execute_task, tasks, chunksize=chunksize
                ):
                    for index, outcome in task_results:
                        record(index, outcome)
                    if task_failures:
                        if not capture:
                            # Completed lanes above are already recorded
                            # (and persisted) before the re-raise.
                            _index, kind, message, steps = task_failures[0]
                            _raise_failure(kind, message, steps)
                        failures.extend(task_failures)
                pool.close()
            except BaseException:
                # Covers worker failures (e.g. ConvergenceError) and
                # Ctrl-C in the parent alike: stop the workers, keep
                # what's persisted.
                pool.terminate()
                raise
            finally:
                pool.join()

    missing = len(pending)
    groups = (
        _ensemble_groups(pending, ensemble_lanes) if ensemble_lanes else []
    )
    packed = {index for group in groups for index, _spec in group}
    solo_pending = [
        (index, spec) for index, spec in pending if index not in packed
    ]
    first_round: list = [
        ("ensemble", chunk, trial_timeout)
        for group in groups
        for chunk in _ensemble_chunks(
            group, jobs if len(pending) > 1 else 1, ensemble_lanes or 1
        )
    ]
    first_round += [
        ("trial", index, spec, trial_timeout) for index, spec in solo_pending
    ]
    run_round(first_round)

    # Retry rounds: still-failing trials re-run solo (no packing — the
    # siblings already succeeded) with exponential backoff in between.
    retried: set[int] = set()
    attempt = 0
    while failures and attempt < retries:
        time.sleep(min(RETRY_BACKOFF_CAP, retry_backoff * (2**attempt)))
        retry_indices = sorted({failure[0] for failure in failures})
        retried.update(retry_indices)
        failures = []
        run_round(
            [
                ("trial", index, specs[index], trial_timeout)
                for index in retry_indices
            ]
        )
        attempt += 1

    if store is not None:
        # Successful trials clear any stale ledger entry (a failure from
        # an earlier run of the same campaign that now succeeded).
        recovered = [
            spec
            for index, spec in pending
            if results.get(index) is not None
        ]
        if recovered and store.failures():
            store.clear_failures(recovered)
        for index, _kind, message, _steps in failures:
            store.record_failure(
                specs[index],
                attempts=attempt + 1,
                error=message,
                quarantined=on_failure == "quarantine",
            )
    if failures and on_failure == "raise":
        _index, kind, message, steps = min(failures)
        _raise_failure(kind, message, steps)

    outcomes = [results.get(index) for index in range(total)]
    return RunReport(
        outcomes=outcomes,
        executed=missing - len(failures),
        cached=total - missing,
        executed_duration=executed_duration,
        failed=len(failures),
        quarantined=len(failures) if on_failure == "quarantine" else 0,
        retried=len(retried),
    )
