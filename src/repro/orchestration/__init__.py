"""Parallel campaign orchestration with a persistent, resumable trial store.

The subsystem splits trial farming into four layers:

* :mod:`~repro.orchestration.spec` — declarative, content-hashed
  :class:`TrialSpec`/:class:`CampaignSpec` descriptions of work;
* :mod:`~repro.orchestration.store` — a SQLite :class:`TrialStore` caching
  every completed outcome by spec hash (resume-after-crash for free);
* :mod:`~repro.orchestration.backend` — the :class:`StoreBackend`
  protocol behind the store, plus the distributed campaign fabric: a
  sharded multi-worker backend, TTL work leases, and a deterministic
  shard → canonical merge;
* :mod:`~repro.orchestration.pool` — serial fast path plus a
  ``multiprocessing`` worker farm sharding missing trials across cores;
* :mod:`~repro.orchestration.runner` — :class:`CampaignRunner` diffing
  campaigns against the store and aggregating outcomes into the
  ``analysis`` statistics.

:mod:`~repro.orchestration.context` threads CLI-level settings
(``--jobs``, ``--store``, ``--engine``, ``--trials``) to the experiment
layer without touching experiment signatures, and
:mod:`~repro.orchestration.registry` names protocols so specs stay
picklable and hashable.
"""

from repro.orchestration.backend import (
    StoreBackend,
    is_sharded_root,
    open_store,
)
from repro.orchestration.context import (
    ExecutionContext,
    current_context,
    execution_context,
)
from repro.orchestration.pool import (
    RunReport,
    build_simulator,
    execute_trial,
    run_specs,
)
from repro.orchestration.registry import (
    build_protocol,
    protocol_names,
    register_protocol,
)
from repro.orchestration.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignStatus,
)
from repro.orchestration.spec import (
    AUTO_ENGINE,
    BATCH_ENGINE_MIN_N,
    ENGINES,
    SUPERBATCH_ENGINE_MIN_N,
    CampaignSpec,
    TrialOutcome,
    TrialSpec,
    default_engine,
    trial_specs,
)
from repro.orchestration.store import DEFAULT_STORE_PATH, TrialStore

__all__ = [
    "AUTO_ENGINE",
    "BATCH_ENGINE_MIN_N",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "DEFAULT_STORE_PATH",
    "ENGINES",
    "SUPERBATCH_ENGINE_MIN_N",
    "ExecutionContext",
    "RunReport",
    "StoreBackend",
    "TrialOutcome",
    "TrialSpec",
    "TrialStore",
    "build_protocol",
    "build_simulator",
    "current_context",
    "default_engine",
    "execute_trial",
    "execution_context",
    "is_sharded_root",
    "open_store",
    "protocol_names",
    "register_protocol",
    "run_specs",
    "trial_specs",
]
