"""Declarative trial and campaign specifications.

A :class:`TrialSpec` names *one* stabilization measurement — protocol (by
registry name plus parameter mapping), population size, engine, seed, step
budget, and detector — without holding any live objects.  That makes it

* **hashable**: :meth:`TrialSpec.content_hash` is a stable SHA-256 over
  the canonical JSON form, used as the primary key of the persistent
  :class:`~repro.orchestration.store.TrialStore`;
* **portable**: specs pickle cheaply into ``multiprocessing`` workers and
  serialize losslessly into SQLite for resume-after-crash.

A :class:`CampaignSpec` is an ordered batch of trial specs (typically a
grid of ``n`` times a trial count), the unit the
:class:`~repro.orchestration.runner.CampaignRunner` executes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.engine.protocol import Protocol
from repro.errors import ExperimentError
from repro.faults.plan import FaultPlan, resolve_engine
from repro.orchestration.crossover import batch_crossover, superbatch_crossover
from repro.orchestration.registry import build_protocol, canonical_params
from repro.schedulers.spec import SchedulerSpec, resolve_schedule_engine

__all__ = [
    "AUTO_ENGINE",
    "BATCH_ENGINE_MIN_N",
    "ENGINES",
    "ENSEMBLE_ENGINE",
    "ENSEMBLE_MIN_TRIALS",
    "SUPERBATCH_ENGINE_MIN_N",
    "TrialOutcome",
    "TrialSpec",
    "CampaignSpec",
    "default_engine",
    "trial_specs",
]

#: Bump when the execution semantics behind a hash change incompatibly
#: (e.g. a different default detector), so stale store rows never alias
#: fresh ones.
SPEC_VERSION = 1

#: The only stabilization detector the orchestration layer runs today.
#: Kept in the hash so future detector options invalidate cleanly.
MONOTONE_LEADER = "monotone-leader"

#: The simulation engines a spec may name; the single source of truth for
#: engine-name validation, the pool's dispatch table, and CLI choices.
ENGINES = ("agent", "multiset", "batch", "superbatch")

#: Pseudo-engine accepted by grid builders and the CLI: resolves per
#: (population size, trial count) via :func:`default_engine` before specs
#: are created, so content hashes always name a concrete engine.
AUTO_ENGINE = "auto"

#: User-facing engine name for across-trial vectorized execution.  It is
#: an *execution strategy*, not a spec identity: lanes of the ensemble
#: engine are bit-identical to solo multiset runs, so specs resolve to
#: ``engine="multiset"`` (sharing store rows with solo multiset trials in
#: both directions) and the pool packs same-cell specs into
#: :class:`~repro.engine.ensemble.EnsembleSimulator` lanes at run time.
ENSEMBLE_ENGINE = "ensemble"

#: Smallest pending same-cell trial group the pool packs into ensemble
#: lanes (below it, per-sweep vector overhead would not amortize and the
#: solo path runs instead).
ENSEMBLE_MIN_TRIALS = 4

#: Population size at which ``auto`` switches to the batch engine.
#: Derived from the committed BENCH_engine.json (the smallest measured
#: PLL ``n`` from which batch stays faster than both per-interaction
#: engines — see :mod:`repro.orchestration.crossover`); the PR 2
#: hard-coded constant survives only as that module's fallback for
#: benchless checkouts.
BATCH_ENGINE_MIN_N = batch_crossover()

#: Population size at which ``auto`` switches again, to the count-level
#: super-batch engine — the smallest measured PLL ``n`` from which it is
#: the fastest engine outright at every larger measured size (same
#: derivation module, same committed record).
SUPERBATCH_ENGINE_MIN_N = superbatch_crossover()


def default_engine(n: int) -> str:
    """Concrete engine the ``auto`` pseudo-engine resolves to at size ``n``.

    Three measured regimes: production-scale sweeps route through the
    count-level super-batch engine from
    :data:`SUPERBATCH_ENGINE_MIN_N`, mid-size sweeps through the batch
    engine from :data:`BATCH_ENGINE_MIN_N`, and everything below the
    batch crossover names the multiset chain — where multi-trial cells
    pack into across-trial ensemble lanes at execution time
    (:func:`repro.orchestration.pool.run_specs`), which is where
    campaign throughput comes from, while stragglers and single-trial
    points run the solo multiset engine.

    The resolution deliberately depends on ``n`` alone — never on the
    trial count — so a given ``(protocol, params, n, seed)`` data point
    hashes identically regardless of which campaign (or how big a
    campaign) requested it, keeping store rows shared across entry
    points.  It compares against the import-time derivations rather
    than re-deriving per call, so the exported constants and the
    resolution can never disagree within a process.
    """
    if n >= SUPERBATCH_ENGINE_MIN_N:
        return "superbatch"
    return "batch" if n >= BATCH_ENGINE_MIN_N else "multiset"


@dataclass(frozen=True)
class TrialOutcome:
    """One stabilization measurement.

    ``duration`` (trial wall-clock seconds, measured even with telemetry
    off) and ``telemetry`` (the engine's canonical-JSON counter summary,
    or ``None``) are runtime records, not part of the measurement: they
    are excluded from equality so outcomes compare by what the chain did,
    never by how fast the host ran it.  ``phases`` is the serialized
    protocol phase series (:mod:`repro.telemetry.probe`) — deterministic
    data, but a *derived view* of the trajectory rather than part of the
    stabilization measurement, so it is likewise excluded from equality
    (packed ensemble lanes legitimately store ``None`` for outcomes that
    solo runs store a series for).
    """

    seed: int
    steps: int
    parallel_time: float
    leader_count: int
    distinct_states: int
    duration: float = field(default=0.0, compare=False)
    telemetry: str | None = field(default=None, compare=False)
    phases: str | None = field(default=None, compare=False)
    #: Serialized fault record (:func:`repro.faults.injector.faults_json`)
    #: for faulted trials: applied events with per-fault recovery times
    #: and any recorded engine degradation.  ``None`` for clean trials —
    #: the pre-fault-subsystem store row, byte-identical.  Deterministic
    #: data, but a derived view like ``phases``, so excluded from
    #: equality.
    faults: str | None = field(default=None, compare=False)
    #: Serialized scheduler record
    #: (:func:`repro.schedulers.spec.scheduler_json`) for trials run
    #: under an adversarial schedule: the spec's canonical form plus any
    #: recorded engine degradation.  ``None`` for uniform-scheduler
    #: trials — the pre-scheduler-subsystem store row, byte-identical.
    scheduler: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to (re)run one trial, and nothing else.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs with
    builder-default values dropped, so semantically equal mappings
    compare and hash identically regardless of insertion order or
    explicit defaults (``("pll", {"variant": "full"})`` is ``("pll",
    {})``).  Build instances through :meth:`create`, which normalizes
    and validates.
    """

    protocol: str
    n: int
    seed: int
    engine: str = "agent"
    params: tuple[tuple[str, object], ...] = ()
    max_steps: int | None = None
    detector: str = MONOTONE_LEADER
    #: Optional fault schedule (:class:`~repro.faults.plan.FaultPlan`).
    #: Part of the trial's hashed identity when present; ``None`` adds
    #: nothing to the canonical form, so every clean spec hash is
    #: byte-identical to the pre-fault-subsystem one.
    fault_plan: FaultPlan | None = None
    #: Optional interaction schedule
    #: (:class:`~repro.schedulers.spec.SchedulerSpec`).  Part of the
    #: trial's hashed identity when present, with the same
    #: None-neutrality contract as ``fault_plan``; an explicit
    #: ``uniform`` spec normalizes to ``None`` (it *is* the default
    #: scheduler), so both spellings hash identically.
    scheduler: SchedulerSpec | None = None

    @classmethod
    def create(
        cls,
        protocol: str,
        n: int,
        seed: int,
        engine: str = "agent",
        params: Mapping[str, object] | None = None,
        max_steps: int | None = None,
        detector: str = MONOTONE_LEADER,
        fault_plan: FaultPlan | Sequence | None = None,
        scheduler: SchedulerSpec | Mapping | None = None,
    ) -> "TrialSpec":
        if n < 2:
            raise ExperimentError(f"population needs at least 2 agents, got n={n}")
        if engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {engine!r}; use one of: {', '.join(ENGINES)}"
            )
        if detector != MONOTONE_LEADER:
            raise ExperimentError(
                f"unknown detector {detector!r}; only {MONOTONE_LEADER!r} "
                "is supported"
            )
        if max_steps is not None and max_steps < 1:
            raise ExperimentError(f"max_steps must be positive, got {max_steps}")
        plan = FaultPlan.coerce(fault_plan)
        if plan is not None:
            plan.validate_against(n, max_steps)
            if not plan.exchangeable and engine != "agent":
                raise ExperimentError(
                    f"fault plan needs per-agent identity (targeted agents "
                    f"or a partition) but engine {engine!r} is count-level; "
                    "use engine='agent' or 'auto' (which degrades)"
                )
        sched = SchedulerSpec.coerce(scheduler)
        if sched is not None:
            sched.validate_against(n)
            if sched.family == "uniform":
                # An explicit uniform spec *is* the default scheduler:
                # normalize it away so both spellings hash (and run)
                # identically — the None-neutrality contract.
                sched = None
        if sched is not None:
            if not sched.exchangeable and engine != "agent":
                raise ExperimentError(
                    f"scheduler family {sched.family!r} needs per-agent "
                    f"identity but engine {engine!r} is count-level; use "
                    "engine='agent' or 'auto' (which degrades)"
                )
            if plan is not None and any(
                event.kind == "partition" for event in plan.events
            ):
                raise ExperimentError(
                    "a partition fault heals back to the uniform scheduler "
                    "and would clobber the trial's scheduler spec; use "
                    "churn/corrupt faults with an adversarial schedule"
                )
        normalized = tuple(sorted(canonical_params(protocol, params).items()))
        try:
            json.dumps(dict(normalized))
        except TypeError as exc:
            raise ExperimentError(
                f"trial params must be JSON-serializable: {exc}"
            ) from exc
        return cls(
            protocol=protocol,
            n=n,
            seed=seed,
            engine=engine,
            params=normalized,
            max_steps=max_steps,
            detector=detector,
            fault_plan=plan,
            scheduler=sched,
        )

    def params_dict(self) -> dict[str, object]:
        return dict(self.params)

    def canonical(self) -> dict[str, object]:
        """The hashed identity of this trial, as a JSON-ready mapping.

        The ``faults`` key exists only for faulted specs: ``plan=None``
        must keep the serialized form — and therefore the content hash
        and every store row keyed by it — byte-identical to specs
        created before the fault subsystem existed (pinned by
        ``tests/faults/test_hash_neutrality.py``).  The ``scheduler``
        key follows the same contract (pinned by
        ``tests/schedulers/test_hash_neutrality.py``).
        """
        payload: dict[str, object] = {
            "version": SPEC_VERSION,
            "protocol": self.protocol,
            "params": [list(pair) for pair in self.params],
            "n": self.n,
            "seed": self.seed,
            "engine": self.engine,
            "max_steps": self.max_steps,
            "detector": self.detector,
        }
        if self.fault_plan is not None:
            payload["faults"] = self.fault_plan.canonical()
        if self.scheduler is not None:
            payload["scheduler"] = self.scheduler.canonical()
        return payload

    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the canonical form."""
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def build_protocol(self) -> Protocol:
        """Instantiate the protocol this spec names."""
        return build_protocol(self.protocol, self.n, self.params_dict())

    def to_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "TrialSpec":
        data = json.loads(payload)
        return cls.create(
            protocol=data["protocol"],
            n=data["n"],
            seed=data["seed"],
            engine=data["engine"],
            params={key: value for key, value in data["params"]},
            max_steps=data["max_steps"],
            detector=data["detector"],
            fault_plan=data.get("faults"),
            scheduler=data.get("scheduler"),
        )


def trial_specs(
    protocol: str,
    n: int,
    trials: int,
    base_seed: int = 0,
    engine: str = "agent",
    params: Mapping[str, object] | None = None,
    max_steps: int | None = None,
    fault_plan: FaultPlan | Sequence | None = None,
    scheduler: SchedulerSpec | Mapping | None = None,
) -> list[TrialSpec]:
    """Specs for ``trials`` independent runs with sequentially derived seeds.

    Seed derivation (``base_seed + trial``) matches the historical
    :func:`repro.experiments.runner.stabilization_trials` convention, so
    any single data point in EXPERIMENTS.md stays reproducible in
    isolation — and so campaign-store rows are shared between ``repro
    run`` and ``repro campaign run`` for identical grids.

    ``engine="auto"`` resolves here, per ``n``, via
    :func:`default_engine`, so specs (and therefore content hashes)
    always name a concrete engine.  ``engine="ensemble"`` resolves to
    ``"multiset"`` — ensemble lanes are bit-identical to solo multiset
    runs, so the hash (and store row) is the multiset trial's; the pool
    supplies the across-trial vectorization at execution time.

    A non-exchangeable ``fault_plan`` (targeted agents, partitions)
    needs per-agent identity: on the resolved-engine paths (``auto``,
    ``ensemble``) it deterministically degrades the engine to
    ``"agent"`` via :func:`repro.faults.plan.resolve_engine`, and the
    degradation is recorded per trial in the stored fault record.  An
    explicit count-level engine choice with such a plan is rejected by
    :meth:`TrialSpec.create` instead of silently overridden.

    A ``scheduler`` spec rides the same ladder
    (:func:`repro.schedulers.spec.resolve_schedule_engine`):
    exchangeable families (``uniform``, ``weighted``) keep whatever
    engine the population size would get — the count-level engines run
    them via reweighted block samplers — while graph-restricted
    families need per-agent identity and degrade to ``"agent"``, with
    the degradation recorded per trial in the stored scheduler record.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be positive, got {trials}")
    plan = FaultPlan.coerce(fault_plan)
    sched = SchedulerSpec.coerce(scheduler)
    if engine == AUTO_ENGINE:
        engine = resolve_engine(plan, resolve_schedule_engine(sched, default_engine(n)))
    elif engine == ENSEMBLE_ENGINE:
        engine = resolve_engine(plan, resolve_schedule_engine(sched, "multiset"))
    return [
        TrialSpec.create(
            protocol=protocol,
            n=n,
            seed=base_seed + trial,
            engine=engine,
            params=params,
            max_steps=max_steps,
            fault_plan=plan,
            scheduler=sched,
        )
        for trial in range(trials)
    ]


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered batch of trials executed and aggregated together."""

    name: str
    trials: tuple[TrialSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("a campaign needs a non-empty name")
        if not self.trials:
            raise ExperimentError(f"campaign {self.name!r} has no trials")
        hashes = {spec.content_hash() for spec in self.trials}
        if len(hashes) != len(self.trials):
            raise ExperimentError(
                f"campaign {self.name!r} contains duplicate trial specs"
            )

    def __len__(self) -> int:
        return len(self.trials)

    def content_hash(self) -> str:
        """Order-insensitive digest over the member trial hashes."""
        digest = hashlib.sha256()
        for trial_hash in sorted(spec.content_hash() for spec in self.trials):
            digest.update(trial_hash.encode("ascii"))
        return digest.hexdigest()

    def groups(self) -> list[tuple[tuple[str, tuple, int], list[TrialSpec]]]:
        """Trials grouped by ``(protocol, params, n)`` in first-seen order."""
        grouped: dict[tuple[str, tuple, int], list[TrialSpec]] = {}
        for spec in self.trials:
            grouped.setdefault((spec.protocol, spec.params, spec.n), []).append(
                spec
            )
        return list(grouped.items())

    @classmethod
    def from_grid(
        cls,
        name: str,
        protocol: str,
        ns: Sequence[int] | Iterable[int],
        trials: int,
        base_seed: int = 0,
        engine: str = "agent",
        params: Mapping[str, object] | None = None,
        max_steps: int | None = None,
        fault_plan: FaultPlan | Sequence | None = None,
        scheduler: SchedulerSpec | Mapping | None = None,
    ) -> "CampaignSpec":
        """A ``len(ns) x trials`` grid over one protocol."""
        specs: list[TrialSpec] = []
        for n in ns:
            specs.extend(
                trial_specs(
                    protocol,
                    n,
                    trials,
                    base_seed=base_seed,
                    engine=engine,
                    params=params,
                    max_steps=max_steps,
                    fault_plan=fault_plan,
                    scheduler=scheduler,
                )
            )
        return cls(name=name, trials=tuple(specs))
