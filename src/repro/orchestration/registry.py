"""Named, picklable protocol builders for declarative trial specs.

The orchestration layer identifies protocols by *name + parameter mapping*
rather than by factory callables: names serialize into content hashes and
cross process boundaries (``multiprocessing`` workers rebuild the protocol
from the name), where lambdas cannot.  The registry is the single source
of truth for those names — the CLI's ``repro simulate --protocol`` choices
are derived from it.

Builders receive ``(n, **params)`` so one name can cover a parameter
family (e.g. ``pll`` with ``variant="no-tournament"``); common variants
are also registered under their own alias for CLI convenience.
"""

from __future__ import annotations

import inspect
from typing import Callable, Mapping

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.core.symmetric import SymmetricPLLProtocol
from repro.engine.protocol import Protocol
from repro.errors import ExperimentError
from repro.protocols.angluin import AngluinProtocol
from repro.protocols.fast_nonce import FastNonceProtocol
from repro.protocols.loose_stabilization import LooselyStabilizingProtocol
from repro.protocols.lottery import lottery_protocol
from repro.protocols.majority import ApproximateMajority, ExactMajority
from repro.protocols.size_estimation import SizeEstimationProtocol
from repro.sync.countup import CountUpTimerProtocol

__all__ = [
    "ProtocolBuilder",
    "register_protocol",
    "build_protocol",
    "canonical_params",
    "protocol_names",
]

#: Builder signature: ``builder(n, **params) -> Protocol``.
ProtocolBuilder = Callable[..., Protocol]

_BUILDERS: dict[str, ProtocolBuilder] = {}


def register_protocol(name: str) -> Callable[[ProtocolBuilder], ProtocolBuilder]:
    """Decorator registering a protocol builder under ``name``."""

    def decorator(builder: ProtocolBuilder) -> ProtocolBuilder:
        if name in _BUILDERS:
            raise ExperimentError(f"duplicate protocol name {name!r}")
        _BUILDERS[name] = builder
        return builder

    return decorator


def _builder(name: str) -> ProtocolBuilder:
    try:
        return _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise ExperimentError(
            f"unknown protocol {name!r}; known: {known}"
        ) from None


def canonical_params(
    name: str, params: Mapping[str, object] | None
) -> dict[str, object]:
    """Validate ``params`` against the builder and drop default values.

    Semantically identical trials must hash identically, so
    ``("pll", {"variant": "full"})`` and ``("pll", {})`` — which build
    the same protocol — canonicalize to the same (empty) mapping.
    Unknown keys are rejected here, at spec-creation time, rather than
    surfacing as a :class:`TypeError` inside a worker process.
    """
    signature = inspect.signature(_builder(name))
    by_name = dict(list(signature.parameters.items())[1:])  # skip ``n``
    canonical: dict[str, object] = {}
    for key, value in (params or {}).items():
        parameter = by_name.get(key)
        if parameter is None:
            known = ", ".join(sorted(by_name)) or "none"
            raise ExperimentError(
                f"protocol {name!r} has no parameter {key!r}; known: {known}"
            )
        if (
            parameter.default is not inspect.Parameter.empty
            and value == parameter.default
        ):
            continue
        canonical[key] = value
    return canonical


def build_protocol(
    name: str, n: int, params: Mapping[str, object] | None = None
) -> Protocol:
    """Instantiate the named protocol for population size ``n``."""
    builder = _builder(name)
    try:
        return builder(n, **dict(params or {}))
    except TypeError as exc:
        raise ExperimentError(
            f"protocol {name!r} rejected params {dict(params or {})!r}: {exc}"
        ) from exc


def protocol_names() -> list[str]:
    """All registered protocol names, sorted."""
    return sorted(_BUILDERS)


@register_protocol("pll")
def _pll(n: int, variant: str = "full") -> Protocol:
    return PLLProtocol.for_population(n, variant=variant)


@register_protocol("pll-symmetric")
def _pll_symmetric(n: int) -> Protocol:
    return SymmetricPLLProtocol.for_population(n)


@register_protocol("pll-no-tournament")
def _pll_no_tournament(n: int) -> Protocol:
    return PLLProtocol.for_population(n, variant="no-tournament")


@register_protocol("pll-backup-only")
def _pll_backup_only(n: int) -> Protocol:
    return PLLProtocol.for_population(n, variant="backup-only")


@register_protocol("lottery")
def _lottery(n: int, slack: float = 1.0) -> Protocol:
    return lottery_protocol(PLLParameters.for_population(n, slack=slack))


@register_protocol("angluin")
def _angluin(n: int) -> Protocol:
    return AngluinProtocol()


@register_protocol("fast-nonce")
def _fast_nonce(n: int, bits: int | None = None) -> Protocol:
    # ``bits`` overrides the population-derived nonce width.  The E14
    # graph cells use a wide fixed width (48) so the equal-nonce backstop
    # — which needs *direct* meetings and therefore crawls on sparse
    # interaction graphs — is never exercised in practice.
    if bits is None:
        return FastNonceProtocol.for_population(n)
    return FastNonceProtocol(bits=bits)


@register_protocol("loose")
def _loose(n: int, holding_factor: int = 16) -> Protocol:
    return LooselyStabilizingProtocol.for_population(
        n, holding_factor=holding_factor
    )


@register_protocol("countup-timer")
def _countup_timer(n: int, cmax: int | None = None) -> Protocol:
    """Isolated Algorithm 2 count-up timers (the Lemma 5/6 primitive).

    ``cmax`` defaults to the PLL parameterization for ``n`` — the value
    the lemma experiments sweep — but stays overridable for ablations.
    """
    if cmax is None:
        cmax = PLLParameters.for_population(n).cmax
    return CountUpTimerProtocol(cmax=cmax)


@register_protocol("approximate-majority")
def _approximate_majority(n: int) -> Protocol:
    return ApproximateMajority()


@register_protocol("exact-majority")
def _exact_majority(n: int) -> Protocol:
    return ExactMajority()


@register_protocol("size-estimation")
def _size_estimation(n: int, level_cap: int = 64) -> Protocol:
    return SizeEstimationProtocol(level_cap=level_cap)
