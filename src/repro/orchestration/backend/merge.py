"""Deterministic shard → canonical compaction (``repro store merge``).

Folds every shard store in a shard root into the canonical file.  The
merge is a pure function of the member stores' *contents*:

* Rows are keyed by spec content hash; duplicates across members pick a
  winner by a total order (earliest execution first, full-row ``repr``
  as the final tiebreak), so no input ordering, filename, or mtime can
  influence a row.
* The output is written as a **fresh** database — schema, then trial
  rows in sorted spec-hash order, then failure rows in sorted spec-hash
  order, one transaction, rollback journal (no WAL frames) — and then
  atomically :func:`os.replace`-d onto ``canonical.sqlite``.

Merging the same members in any order therefore produces
**byte-identical** canonical files, which is the property the CI
fabric-smoke job asserts and the property that makes cross-machine
result aggregation auditable: two operators merging the same shards get
files with equal checksums.

The failure ledger federates with *trial-row-wins*: a spec that has a
trial row in any member is done, so its failure rows (stale leftovers
from a worker that errored before a sibling succeeded) are dropped.
Surviving duplicate failures keep the most-failed copy — max attempts,
quarantine sticky — so a quarantine verdict can never be washed out by
a shard that only saw the first attempt.

A crash mid-merge loses nothing: the temp file is garbage (swept by
``repro store gc``), the canonical and every shard are untouched, and
re-running the merge from the same members produces the same bytes.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError
from repro.orchestration.backend.sharded import (
    CANONICAL_NAME,
    shard_paths,
)
from repro.orchestration.store import _FAILURES_SCHEMA, _SCHEMA

__all__ = [
    "FAILURE_COLUMNS",
    "MERGE_TMP_SUFFIX",
    "MergeReport",
    "TRIAL_COLUMNS",
    "merge_store",
]

#: Full current trials schema, in table order.  ``created_at`` rides
#: along so the merge preserves execution timestamps (and uses them as
#: the primary winner key).
TRIAL_COLUMNS = (
    "spec_hash",
    "protocol",
    "n",
    "seed",
    "engine",
    "spec_json",
    "steps",
    "parallel_time",
    "leader_count",
    "distinct_states",
    "duration",
    "telemetry",
    "phases",
    "faults",
    "scheduler",
    "created_at",
)

FAILURE_COLUMNS = (
    "spec_hash",
    "protocol",
    "n",
    "seed",
    "engine",
    "spec_json",
    "attempts",
    "error",
    "quarantined",
    "updated_at",
)

#: Defaults substituted when a member store predates a column (PR 1–9
#: schema generations) — mirrors the readonly-open fallbacks in
#: :class:`~repro.orchestration.store.TrialStore`.
_TRIAL_DEFAULTS = {
    "duration": "0.0",
    "telemetry": "NULL",
    "phases": "NULL",
    "faults": "NULL",
    "scheduler": "NULL",
}

MERGE_TMP_SUFFIX = ".merge-tmp"


@dataclass(frozen=True)
class MergeReport:
    """What one ``merge_store`` call folded together."""

    root: str
    #: Member files that contributed rows (canonical first, shards in
    #: name order).
    members: tuple[str, ...]
    #: Distinct trials in the merged canonical store.
    trials: int
    #: Outstanding failures in the merged canonical store.
    failures: int
    #: Duplicate trial rows collapsed (same hash in >1 member, or a
    #: canonical row re-read from a shard).
    duplicate_trials: int
    #: Failure rows dropped because some member held a trial row for the
    #: same spec (the trial-row-wins federation rule).
    superseded_failures: int
    #: Shard files deleted after folding (empty with ``keep_shards``).
    removed_shards: tuple[str, ...] = field(default_factory=tuple)

    def render(self) -> str:
        lines = [
            f"merged {len(self.members)} store(s) -> "
            f"{Path(self.root) / CANONICAL_NAME}",
            f"  trials:   {self.trials}"
            + (
                f" ({self.duplicate_trials} duplicate row(s) collapsed)"
                if self.duplicate_trials
                else ""
            ),
            f"  failures: {self.failures}"
            + (
                f" ({self.superseded_failures} superseded by trial rows)"
                if self.superseded_failures
                else ""
            ),
        ]
        for member in self.members:
            lines.append(f"  from {member}")
        if self.removed_shards:
            lines.append(
                f"  removed {len(self.removed_shards)} folded shard(s)"
            )
        return "\n".join(lines)


def _columns_present(
    connection: sqlite3.Connection, table: str
) -> set[str]:
    return {
        row[1]
        for row in connection.execute(f"PRAGMA table_info({table})")
    }


def _read_member(
    path: Path,
) -> tuple[list[tuple], list[tuple]]:
    """All (trial, failure) rows of one member store, full-width.

    Columns a pre-migration member lacks are filled with the same
    defaults a writable open would backfill, so old shards merge
    losslessly into the current schema.
    """
    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        present = _columns_present(connection, "trials")
        if "spec_hash" not in present:
            raise ExperimentError(f"{path} is not a trial store")
        select = ", ".join(
            column
            if column in present
            else f"{_TRIAL_DEFAULTS[column]} AS {column}"
            for column in TRIAL_COLUMNS
        )
        trials = connection.execute(
            f"SELECT {select} FROM trials"
        ).fetchall()
        failures: list[tuple] = []
        if _columns_present(connection, "failures"):
            failures = connection.execute(
                "SELECT {} FROM failures".format(", ".join(FAILURE_COLUMNS))
            ).fetchall()
        return trials, failures
    finally:
        connection.close()


def _trial_rank(row: tuple) -> tuple:
    """Winner order for duplicate trial rows: earliest ``created_at``,
    then shortest ``duration``, then full-row ``repr`` — a total order,
    so the winner never depends on member enumeration order."""
    created_at = row[TRIAL_COLUMNS.index("created_at")]
    duration = row[TRIAL_COLUMNS.index("duration")]
    return (str(created_at or ""), float(duration or 0.0), repr(row))


def _failure_rank(row: tuple) -> tuple:
    """Winner order for duplicate failure rows: most attempts, then
    quarantined, then latest update, then full-row ``repr`` (the *max*
    wins — quarantine verdicts are sticky across shards)."""
    attempts = row[FAILURE_COLUMNS.index("attempts")]
    quarantined = row[FAILURE_COLUMNS.index("quarantined")]
    updated_at = row[FAILURE_COLUMNS.index("updated_at")]
    return (
        int(attempts or 0),
        int(bool(quarantined)),
        str(updated_at or ""),
        repr(row),
    )


def merge_store(
    root: str | Path, keep_shards: bool = False
) -> MergeReport:
    """Fold every shard in ``root`` into ``canonical.sqlite``.

    Deterministic and idempotent (see the module docstring); with
    ``keep_shards`` the folded shard files stay on disk (useful while
    workers are still appending — merge is safe mid-campaign, it only
    reads committed rows).  Without it, folded shards are deleted, so
    the steady state after a finished campaign is one canonical file.
    """
    root = Path(root)
    if not root.is_dir():
        raise ExperimentError(
            f"{str(root)!r} is not a sharded store root (need the "
            "directory that holds canonical.sqlite and shard-*.sqlite)"
        )
    canonical = root / CANONICAL_NAME
    members: list[Path] = []
    if canonical.exists():
        members.append(canonical)
    shards = shard_paths(root)
    members.extend(shards)
    if not members:
        raise ExperimentError(
            f"nothing to merge under {str(root)!r}: no canonical store "
            "and no shards"
        )

    hash_at = TRIAL_COLUMNS.index("spec_hash")
    best_trials: dict[str, tuple] = {}
    best_failures: dict[str, tuple] = {}
    duplicate_trials = 0
    for member in members:
        trials, failures = _read_member(member)
        for row in trials:
            key = str(row[hash_at])
            kept = best_trials.get(key)
            if kept is None:
                best_trials[key] = row
            else:
                duplicate_trials += 1
                if _trial_rank(row) < _trial_rank(kept):
                    best_trials[key] = row
        for row in failures:
            key = str(row[0])
            kept = best_failures.get(key)
            if kept is None or _failure_rank(row) > _failure_rank(kept):
                best_failures[key] = row

    superseded = [
        key for key in best_failures if key in best_trials
    ]
    for key in superseded:
        del best_failures[key]

    # Fresh output file: rollback journal (never WAL frames), schema +
    # sorted rows in one transaction — identical inputs give identical
    # bytes no matter which member order fed the dicts above.
    tmp = root / (CANONICAL_NAME + MERGE_TMP_SUFFIX)
    if tmp.exists():
        tmp.unlink()
    out = sqlite3.connect(tmp)
    try:
        out.executescript(_SCHEMA)
        out.executescript(_FAILURES_SCHEMA)
        trial_slots = ", ".join("?" * len(TRIAL_COLUMNS))
        out.executemany(
            f"INSERT INTO trials ({', '.join(TRIAL_COLUMNS)})"
            f" VALUES ({trial_slots})",
            (best_trials[key] for key in sorted(best_trials)),
        )
        failure_slots = ", ".join("?" * len(FAILURE_COLUMNS))
        out.executemany(
            f"INSERT INTO failures ({', '.join(FAILURE_COLUMNS)})"
            f" VALUES ({failure_slots})",
            (best_failures[key] for key in sorted(best_failures)),
        )
        out.commit()
    finally:
        out.close()

    os.replace(tmp, canonical)
    # The replaced file is a fresh rollback-journal db; stale WAL
    # sidecars from the previous canonical generation must not survive
    # next to it.
    for suffix in ("-wal", "-shm"):
        sidecar = Path(str(canonical) + suffix)
        if sidecar.exists():
            sidecar.unlink()

    removed: list[str] = []
    if not keep_shards:
        for shard in shards:
            for victim in (
                shard,
                Path(str(shard) + "-wal"),
                Path(str(shard) + "-shm"),
            ):
                if victim.exists():
                    victim.unlink()
            removed.append(shard.name)

    return MergeReport(
        root=str(root),
        members=tuple(member.name for member in members),
        trials=len(best_trials),
        failures=len(best_failures),
        duplicate_trials=duplicate_trials,
        superseded_failures=len(superseded),
        removed_shards=tuple(removed),
    )
