"""The sharded store backend: one directory, N crash-isolated writers.

Layout of a shard root directory::

    campaign.shards/
        canonical.sqlite          # the merged, compacted store
        shard-<worker>.sqlite     # one private store per worker
        leases.sqlite             # TTL work claims (advisory)

Each worker appends only to its *own* shard (a plain
:class:`~repro.orchestration.store.TrialStore` file it never shares a
writer lock on), so a crash, a lock conflict, or a full disk on one
worker can never corrupt — or even stall — another's writes.  Reads
federate: the canonical store plus every shard, deduplicated by spec
hash, which is sound because rows are content-addressed and trial
outcomes are deterministic — any two rows with one hash describe the
same measurement.

``repro store merge`` (:mod:`repro.orchestration.backend.merge`) folds
shards into the canonical file; until then the federated view *is* the
store, so ``status``/``report``/``telemetry report`` work mid-campaign.

Graceful degradation: when the canonical store is unreachable (locked
by a dying writer, read-only mount, deleted mid-run), reads fall back
to the shards and re-attachment is retried with exponential backoff;
coordinator-mode writes spill to a private ``shard-spill-<pid>`` store
instead of aborting.  Workers therefore keep making durable progress
through canonical outages, and the spill folds in at the next merge.
"""

from __future__ import annotations

import os
import re
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ExperimentError
from repro.orchestration.backend.base import StoreBackend
from repro.orchestration.backend.leases import (
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseManager,
)
from repro.orchestration.spec import TrialOutcome, TrialSpec
from repro.orchestration.store import TrialStore

__all__ = [
    "CANONICAL_NAME",
    "LEASES_NAME",
    "SHARD_PREFIX",
    "ShardCoverage",
    "ShardedStore",
    "shard_name",
    "shard_paths",
]

CANONICAL_NAME = "canonical.sqlite"
LEASES_NAME = "leases.sqlite"
SHARD_PREFIX = "shard-"

#: Worker ids must stay filename- and shell-safe.
_WORKER_ID = re.compile(r"^[A-Za-z0-9._-]+$")

#: First canonical re-attachment retry delay; doubles per failure up to
#: the cap, so a genuinely gone canonical costs one failed open per
#: ~minute, not per read.
_ATTACH_BACKOFF = 0.5
_ATTACH_BACKOFF_CAP = 60.0


def shard_name(worker: str) -> str:
    return f"{SHARD_PREFIX}{worker}.sqlite"


def shard_paths(root: str | Path) -> list[Path]:
    """Every shard store under ``root``, in deterministic name order."""
    return sorted(Path(root).glob(f"{SHARD_PREFIX}*.sqlite"))


@dataclass(frozen=True)
class ShardCoverage:
    """Row counts for one member store of a shard root."""

    name: str
    rows: int
    #: Rows whose hash is in the queried campaign (equals ``rows`` when
    #: no campaign scope was given).
    in_scope: int


class ShardedStore(StoreBackend):
    """Federated multi-writer trial store over a shard root directory.

    ``worker="w1"`` opens worker mode: writes (outcomes *and* failure
    rows) land in the private ``shard-w1.sqlite``; reads see canonical
    plus every shard.  ``worker=None`` opens coordinator mode: writes
    go to the canonical store (spilling to a private shard when it is
    unreachable), which makes a ShardedStore a drop-in ``--store`` for
    non-sharded commands pointed at a directory.  ``readonly=True``
    never creates anything and tolerates a missing canonical (a root
    that has only shards so far).
    """

    def __init__(
        self,
        root: str | Path,
        worker: str | None = None,
        readonly: bool = False,
    ) -> None:
        self.root = Path(root)
        self.path = str(root)
        self.worker = worker
        self.readonly = readonly
        if worker is not None and not _WORKER_ID.match(worker):
            raise ExperimentError(
                f"worker id {worker!r} is not filename-safe; use letters, "
                "digits, dots, underscores, dashes"
            )
        if worker is not None and readonly:
            raise ExperimentError(
                "a readonly sharded store cannot have a worker shard"
            )
        if self.root.exists() and not self.root.is_dir():
            raise ExperimentError(
                f"{self.path!r} is a regular file; a sharded store needs a "
                "directory (pass a fresh path, or drop --shard to use the "
                "single-file backend)"
            )
        if not self.root.exists():
            if readonly:
                raise ExperimentError(
                    f"cannot open sharded store {self.path!r}: no such "
                    "directory (has the campaign been run yet?)"
                )
            self.root.mkdir(parents=True, exist_ok=True)
        #: Open handles for federated reads, keyed by file name.
        self._readers: dict[str, TrialStore] = {}
        self._own: TrialStore | None = None
        self._canonical: TrialStore | None = None
        self._canonical_retry_at = 0.0
        self._canonical_backoff = _ATTACH_BACKOFF
        #: Where coordinator-mode writes landed after a canonical
        #: failure (``None`` until the first spill).
        self._spill: TrialStore | None = None

    # ------------------------------------------------------------------
    # member stores
    # ------------------------------------------------------------------

    @property
    def canonical_path(self) -> Path:
        return self.root / CANONICAL_NAME

    @property
    def leases_path(self) -> Path:
        return self.root / LEASES_NAME

    def _own_store(self) -> TrialStore:
        """This worker's private shard (created on first use)."""
        if self._own is None:
            assert self.worker is not None
            self._own = TrialStore(self.root / shard_name(self.worker))
        return self._own

    def _canonical_store(self) -> TrialStore | None:
        """The canonical store, or ``None`` while it is unreachable.

        Worker and readonly modes open it read-only (workers write to
        their shard, never the canonical); coordinator mode opens it
        writable, creating it on first use.  Open failures degrade: the
        store runs on shards alone and re-attachment is retried with
        exponential backoff.
        """
        if self._canonical is not None:
            return self._canonical
        now = time.monotonic()
        if now < self._canonical_retry_at:
            return None
        writable = self.worker is None and not self.readonly
        try:
            if writable:
                self._canonical = TrialStore(self.canonical_path)
            else:
                if not self.canonical_path.exists():
                    # Normal pre-merge state, not an outage: nothing to
                    # attach, and nothing worth backing off over.
                    return None
                self._canonical = TrialStore(
                    self.canonical_path, readonly=True
                )
        except ExperimentError:
            self._canonical_retry_at = now + self._canonical_backoff
            self._canonical_backoff = min(
                self._canonical_backoff * 2, _ATTACH_BACKOFF_CAP
            )
            return None
        self._canonical_backoff = _ATTACH_BACKOFF
        return self._canonical

    def _detach_canonical(self) -> None:
        """Drop a canonical handle that just failed mid-operation."""
        if self._canonical is not None:
            try:
                self._canonical.close()
            except Exception:
                pass
            self._canonical = None
        self._canonical_retry_at = time.monotonic() + self._canonical_backoff
        self._canonical_backoff = min(
            self._canonical_backoff * 2, _ATTACH_BACKOFF_CAP
        )

    def _shard_stores(self) -> list[tuple[str, TrialStore]]:
        """Readonly handles on every shard file currently in the root.

        Fresh shards appear between calls (other workers joining), so
        the directory is re-globbed per read; handles are cached.  A
        shard that cannot be opened yet (its writer is mid-creation) is
        skipped this round and retried on the next read.
        """
        stores: list[tuple[str, TrialStore]] = []
        own_name = (
            shard_name(self.worker) if self.worker is not None else None
        )
        for path in shard_paths(self.root):
            name = path.name
            if name == own_name:
                stores.append((name, self._own_store()))
                continue
            handle = self._readers.get(name)
            if handle is None:
                try:
                    handle = TrialStore(path, readonly=True)
                except ExperimentError:
                    continue
                self._readers[name] = handle
            stores.append((name, handle))
        return stores

    def _read_stores(self) -> list[tuple[str, TrialStore]]:
        """Every member store to consult for reads, canonical first."""
        stores: list[tuple[str, TrialStore]] = []
        canonical = self._canonical_store()
        if canonical is not None:
            stores.append((CANONICAL_NAME, canonical))
        stores.extend(self._shard_stores())
        return stores

    def _write_store(self) -> TrialStore:
        """Where this handle's writes go.

        Worker mode: always the private shard.  Coordinator mode: the
        canonical store, spilling to a pid-named local shard when the
        canonical cannot be opened — durable progress beats failing the
        trial that was just paid for.
        """
        if self.readonly:
            raise ExperimentError(
                f"sharded store {self.path!r} is readonly"
            )
        if self.worker is not None:
            return self._own_store()
        canonical = self._canonical_store()
        if canonical is not None:
            return canonical
        if self._spill is None:
            self._spill = TrialStore(
                self.root / shard_name(f"spill-{os.getpid()}")
            )
        return self._spill

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        for handle in (
            self._own,
            self._canonical,
            self._spill,
            *self._readers.values(),
        ):
            if handle is not None:
                try:
                    handle.close()
                except Exception:
                    pass
        self._own = None
        self._canonical = None
        self._spill = None
        self._readers.clear()

    # ------------------------------------------------------------------
    # reads (federated)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.completed_hashes())

    def get(self, spec: TrialSpec) -> TrialOutcome | None:
        hits = self.get_many([spec])
        return hits.get(spec.content_hash())

    def get_many(
        self, specs: Sequence[TrialSpec]
    ) -> dict[str, TrialOutcome]:
        results: dict[str, TrialOutcome] = {}
        remaining = list(specs)
        for _name, store in self._read_stores():
            if not remaining:
                break
            try:
                hits = store.get_many(remaining)
            except ExperimentError:
                if store is self._canonical:
                    self._detach_canonical()
                continue
            results.update(hits)
            remaining = [
                spec
                for spec in remaining
                if spec.content_hash() not in results
            ]
        return results

    def completed_hashes(self) -> set[str]:
        hashes: set[str] = set()
        for _name, store in self._read_stores():
            try:
                hashes |= store.completed_hashes()
            except ExperimentError:
                if store is self._canonical:
                    self._detach_canonical()
        return hashes

    def rows(self) -> Iterator[dict[str, object]]:
        """Federated rows, deduplicated by spec hash.

        Duplicates across members describe the same deterministic
        measurement; the earliest-executed copy wins (the same rule the
        merge compaction applies — see
        :func:`repro.orchestration.backend.merge.merge_store`), so the
        federated view and the post-merge canonical agree row for row.
        """
        best: dict[str, dict[str, object]] = {}
        for _name, store in self._read_stores():
            try:
                for row in store.rows():
                    key = str(row["spec_hash"])
                    kept = best.get(key)
                    if kept is None or _row_rank(row) < _row_rank(kept):
                        best[key] = row
            except ExperimentError:
                if store is self._canonical:
                    self._detach_canonical()
        ordered = sorted(
            best.values(),
            key=lambda row: (
                row["protocol"],
                row["n"],
                row["engine"],
                row["seed"],
            ),
        )
        yield from ordered

    # ------------------------------------------------------------------
    # writes (private shard / canonical with spill)
    # ------------------------------------------------------------------

    def put(self, spec: TrialSpec, outcome: TrialOutcome) -> None:
        self.put_many([(spec, outcome)])

    def put_many(
        self, items: Iterable[tuple[TrialSpec, TrialOutcome]]
    ) -> None:
        items = list(items)
        target = self._write_store()
        try:
            target.put_many(items)
        except ExperimentError:
            raise
        except sqlite3.Error:
            if target is not self._canonical:
                raise
            # Canonical died mid-write (locked beyond the busy timeout,
            # remounted read-only, file gone): spill and carry on.
            self._detach_canonical()
            self._write_store().put_many(items)

    # ------------------------------------------------------------------
    # failure ledger (federated reads, private writes)
    # ------------------------------------------------------------------

    def record_failure(
        self,
        spec: TrialSpec,
        attempts: int,
        error: str,
        quarantined: bool = False,
    ) -> None:
        self._write_store().record_failure(
            spec, attempts, error, quarantined=quarantined
        )

    def clear_failures(self, specs: Iterable[TrialSpec]) -> None:
        # Only the writable member can be cleared directly; stale rows
        # in sibling shards are masked by the trial-row-wins rule in
        # :meth:`failures` and dropped at merge time.
        self._write_store().clear_failures(specs)

    def failures(self) -> list[dict[str, object]]:
        """Federated outstanding failures.

        A spec with a trial row in *any* member is not outstanding —
        some worker eventually succeeded — so it is dropped even when a
        sibling shard still carries its failure row.  Duplicate failure
        rows keep the most-failed copy (max attempts, quarantine
        sticky), matching the merge-time federation rule.
        """
        done = self.completed_hashes()
        best: dict[str, dict[str, object]] = {}
        for _name, store in self._read_stores():
            try:
                ledger = store.failures()
            except ExperimentError:
                if store is self._canonical:
                    self._detach_canonical()
                continue
            for row in ledger:
                key = str(row["spec_hash"])
                if key in done:
                    continue
                kept = best.get(key)
                if kept is None or _failure_rank(row) > _failure_rank(kept):
                    best[key] = row
        return sorted(
            best.values(),
            key=lambda row: (
                row["protocol"],
                row["n"],
                row["engine"],
                row["seed"],
            ),
        )

    # ------------------------------------------------------------------
    # fabric coordination
    # ------------------------------------------------------------------

    def lease_manager(
        self, ttl_secs: float = DEFAULT_LEASE_TTL
    ) -> LeaseManager:
        """A lease manager for this store's worker over the shared
        ``leases.sqlite`` (worker mode only)."""
        if self.worker is None:
            raise ExperimentError(
                "lease claims need worker mode: open the store with a "
                "worker id (repro campaign run --shard <worker>)"
            )
        return LeaseManager(self.leases_path, self.worker, ttl_secs=ttl_secs)

    def live_leases(self) -> list[Lease]:
        """Every unexpired work claim (empty when no lease file yet)."""
        if not self.leases_path.exists():
            return []
        manager = LeaseManager(self.leases_path, worker="status-reader")
        try:
            return manager.live()
        finally:
            manager.close()

    def shard_coverage(
        self, hashes: Iterable[str] | None = None
    ) -> list[ShardCoverage]:
        """Per-member row counts, optionally scoped to ``hashes``.

        The canonical store leads (when present), shards follow in name
        order — the per-shard view behind ``repro campaign status`` and
        ``repro store status``.
        """
        scope = None if hashes is None else set(hashes)
        coverage = []
        for name, store in self._read_stores():
            try:
                stored = store.completed_hashes()
            except ExperimentError:
                if store is self._canonical:
                    self._detach_canonical()
                continue
            coverage.append(
                ShardCoverage(
                    name=name,
                    rows=len(stored),
                    in_scope=len(
                        stored if scope is None else stored & scope
                    ),
                )
            )
        return coverage


def _row_rank(row: dict[str, object]) -> tuple:
    """Deterministic preference order for duplicate trial rows.

    Earliest execution wins (``created_at``, then ``duration``); the
    ``repr`` of the full row is a total-order tiebreak so the choice
    can never depend on which member store was read first.
    """
    return (
        str(row.get("created_at") or ""),
        float(row.get("duration") or 0.0),
        repr(sorted(row.items(), key=lambda item: item[0])),
    )


def _failure_rank(row: dict[str, object]) -> tuple:
    """Deterministic preference order for duplicate failure rows:
    most attempts, quarantine sticky, latest update; full-row ``repr``
    tiebreak for total order."""
    return (
        int(row.get("attempts") or 0),
        bool(row.get("quarantined")),
        str(row.get("updated_at") or ""),
        repr(sorted(row.items(), key=lambda item: (item[0], repr(item[1])))),
    )
