"""The sharded campaign worker loop (``repro campaign run --shard``).

One :func:`run_sharded_campaign` call is one *worker* of a distributed
campaign: it opens its private shard in the shared store root, then
loops — claim a chunk of unfinished cells through the lease table, run
them with the ordinary trial pool, release, repeat — until every spec
in the campaign is either stored or quarantined *somewhere* in the
federated view.  Any number of workers (processes or machines sharing
the root) run the same loop concurrently; the lease table keeps them
off each other's cells, and content-hashed idempotent writes make the
residual races (a lease expiring under a slow-but-alive worker)
harmless duplicates rather than corruption.

Crash recovery is emergent from the pieces, not special-cased here:

* A SIGKILLed worker stops renewing; its leases expire after the TTL
  and a survivor reclaims the cells on its next loop iteration.
* If the dead worker had in-trial checkpoints enabled
  (:mod:`repro.faults.checkpoint`) against a shared checkpoint
  directory, the reclaiming worker's engines resume from the last
  checkpoint automatically — the checkpoint files are keyed by spec
  hash, not by worker.
* Whatever the dead worker *had* committed is still in its shard file,
  visible to every survivor's federated reads, and folded in by the
  next ``repro store merge``.

Mid-trial lease renewal piggybacks on the telemetry heartbeat's
block-loop poll (:class:`~repro.orchestration.backend.leases.LeaseRenewer`
registered as a beat listener), so a single trial longer than the TTL
does not get stolen from a healthy worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.orchestration.backend.leases import (
    DEFAULT_LEASE_TTL,
    LeaseRenewer,
)
from repro.orchestration.backend.sharded import ShardedStore
from repro.orchestration.pool import ProgressCallback, run_specs
from repro.orchestration.spec import TrialSpec
from repro.telemetry.heartbeat import add_beat_listener, remove_beat_listener

__all__ = ["FabricReport", "run_sharded_campaign"]

#: Upper bound on one starvation wait (seconds): even when the soonest
#: lease expiry is far off, re-check this often — a sibling finishing
#: (and writing rows) unblocks us without any lease expiring.
_MAX_WAIT = 5.0


@dataclass(frozen=True)
class FabricReport:
    """One worker's share of a sharded campaign."""

    worker: str
    root: str
    total: int
    #: Trials this worker executed (fresh outcomes written to its shard).
    executed: int
    #: Trials that were already stored when this worker first looked.
    cached: int
    #: Claim rounds this worker won work in.
    rounds: int
    #: Rounds spent waiting on siblings' live leases.
    starved_rounds: int
    #: Cells claimed off an expired sibling lease (crash takeover).
    reclaimed: int
    #: Specs quarantined campaign-wide when the worker finished.
    quarantined: int

    def render(self) -> str:
        parts = [
            f"worker {self.worker}: {self.executed} executed,"
            f" {self.cached} cached, {self.rounds} claim round(s)",
        ]
        if self.reclaimed:
            parts.append(
                f"  reclaimed {self.reclaimed} cell(s) from expired leases"
            )
        if self.starved_rounds:
            parts.append(
                f"  waited through {self.starved_rounds} starved round(s)"
            )
        if self.quarantined:
            parts.append(f"  {self.quarantined} spec(s) quarantined")
        return "\n".join(parts)


def run_sharded_campaign(
    specs: Sequence[TrialSpec],
    root: str | Path,
    worker: str,
    jobs: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    claim_chunk: int | None = None,
    progress: ProgressCallback | None = None,
    retries: int = 0,
    trial_timeout: float | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> FabricReport:
    """Run one worker of a sharded campaign until nothing is left.

    ``claim_chunk`` bounds how many cells one claim round grabs
    (default ``max(4, 2 * jobs)``): small enough that a crash orphans
    little work for one TTL, large enough to keep a multi-process pool
    fed.  Failures are always run in *quarantine* mode — a distributed
    worker aborting on a poison cell would just make every sibling
    retry the same poison, so the failure ledger (federated at merge
    time) is the single place poison cells are reported.

    Returns when every spec is stored or quarantined in the federated
    view — which may include work *other* workers did; a worker that
    claims nothing but sees siblings still holding leases waits for
    the earliest expiry (bounded) and re-checks rather than exiting
    with the campaign incomplete.
    """
    if not worker:
        raise ExperimentError("a sharded campaign worker needs an id")
    chunk = max(4, 2 * jobs) if claim_chunk is None else claim_chunk
    if chunk < 1:
        raise ExperimentError(
            f"claim chunk must be positive, got {chunk}"
        )
    store = ShardedStore(root, worker=worker)
    manager = store.lease_manager(ttl_secs=lease_ttl)
    renewer = LeaseRenewer(manager)
    add_beat_listener(renewer)
    executed = 0
    cached: int | None = None
    rounds = 0
    starved = 0
    reclaimed = 0
    by_hash = {spec.content_hash(): spec for spec in specs}
    try:
        while True:
            done = store.completed_hashes()
            if cached is None:
                cached = sum(1 for key in by_hash if key in done)
            quarantined = {
                str(row["spec_hash"])
                for row in store.failures()
                if row["quarantined"]
            }
            missing = [
                key
                for key in by_hash
                if key not in done and key not in quarantined
            ]
            if not missing:
                break
            # Deterministic claim order (cell-sorted) gives sibling
            # workers disjoint prefixes the fastest way possible: the
            # loser of a race on hash k moves on to k+1.
            missing.sort(
                key=lambda key: (
                    by_hash[key].protocol,
                    by_hash[key].n,
                    by_hash[key].engine,
                    by_hash[key].seed,
                )
            )
            # All rows, not just live ones: an *expired* row under a
            # different worker's name is exactly what a crash takeover
            # looks like at claim time.
            held_before = {
                lease.spec_hash: lease.worker for lease in manager.rows()
            }
            won = manager.claim(missing, limit=chunk)
            if not won:
                # Every missing cell is under a sibling's live lease.
                # Wait for the soonest possible change of state: a
                # lease expiry, or (bounded poll) a sibling finishing.
                starved += 1
                expiry = manager.next_expiry()
                sleep(min(_MAX_WAIT, expiry) if expiry else _MAX_WAIT)
                continue
            rounds += 1
            reclaimed += sum(
                1
                for key in won
                if held_before.get(key) not in (None, worker)
            )
            claimed_specs = [by_hash[key] for key in won]
            renewer.maybe_renew()

            def renewing_progress(done_n, total_n, outcome):
                renewer.maybe_renew()
                if progress is not None:
                    progress(done_n, total_n, outcome)

            report = run_specs(
                claimed_specs,
                jobs=jobs,
                store=store,
                progress=renewing_progress,
                retries=retries,
                trial_timeout=trial_timeout,
                on_failure="quarantine",
            )
            executed += report.executed
            manager.release(won)
        final_quarantined = sum(
            1
            for row in store.failures()
            if row["quarantined"] and str(row["spec_hash"]) in by_hash
        )
        return FabricReport(
            worker=worker,
            root=str(root),
            total=len(by_hash),
            executed=executed,
            cached=cached or 0,
            rounds=rounds,
            starved_rounds=starved,
            reclaimed=reclaimed,
            quarantined=final_quarantined,
        )
    finally:
        remove_beat_listener(renewer)
        try:
            manager.release_all()
        finally:
            manager.close()
            store.close()
