"""Store backends for the distributed campaign fabric.

* :mod:`~repro.orchestration.backend.base` — the :class:`StoreBackend`
  protocol every backend implements (the historical ``TrialStore``
  surface, unchanged).
* :mod:`~repro.orchestration.backend.sharded` — :class:`ShardedStore`:
  a directory of per-worker shard stores plus one canonical file, for
  crash-isolated multi-worker campaigns.
* :mod:`~repro.orchestration.backend.merge` — deterministic shard →
  canonical compaction (``repro store merge``).
* :mod:`~repro.orchestration.backend.leases` — TTL work claims with
  heartbeat renewal (crash-recovering work stealing).
* :mod:`~repro.orchestration.backend.fabric` — the sharded campaign
  worker loop (``repro campaign run --shard``).

Only :mod:`base` is imported eagerly: :mod:`~repro.orchestration.store`
implements the protocol and therefore imports this package while the
other submodules import *it* — the lazy attributes below keep that a
one-way dependency at import time.
"""

from __future__ import annotations

from pathlib import Path

from repro.orchestration.backend.base import StoreBackend

__all__ = [
    "DEFAULT_SHARD_ROOT",
    "LeaseManager",
    "MergeReport",
    "ShardedStore",
    "StoreBackend",
    "is_sharded_root",
    "merge_store",
    "open_store",
    "run_sharded_campaign",
]

#: Default shard-root directory for ``repro campaign run --shard`` when
#: ``--store`` was left at the single-file default (a sharded campaign
#: cannot use a ``.sqlite`` file path).
DEFAULT_SHARD_ROOT = ".repro-store.shards"

#: Lazily importable submodule attributes (``backend.ShardedStore``
#: etc.) — resolved on first access to keep the store → base import
#: one-way.
_LAZY = {
    "ShardedStore": ("repro.orchestration.backend.sharded", "ShardedStore"),
    "LeaseManager": ("repro.orchestration.backend.leases", "LeaseManager"),
    "MergeReport": ("repro.orchestration.backend.merge", "MergeReport"),
    "merge_store": ("repro.orchestration.backend.merge", "merge_store"),
    "run_sharded_campaign": (
        "repro.orchestration.backend.fabric",
        "run_sharded_campaign",
    ),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def is_sharded_root(path: str | Path) -> bool:
    """Whether ``path`` names a sharded store directory.

    A directory is a sharded root if it exists (even empty — a worker
    about to write its first shard) — single-file stores are regular
    files, so the two layouts can never be confused.
    """
    return Path(path).is_dir()


def open_store(
    path: str | Path,
    readonly: bool = False,
    worker: str | None = None,
):
    """Open the right backend for ``path``.

    * ``worker`` given → the sharded backend, writing to that worker's
      private shard (creates the directory when missing).
    * ``path`` is a directory → the sharded backend's federated view
      (canonical + every shard).
    * otherwise → the default single-file SQLite backend.
    """
    from repro.orchestration.backend.sharded import ShardedStore
    from repro.orchestration.store import TrialStore

    if worker is not None:
        return ShardedStore(path, worker=worker, readonly=readonly)
    if is_sharded_root(path):
        return ShardedStore(path, readonly=readonly)
    return TrialStore(path, readonly=readonly)
