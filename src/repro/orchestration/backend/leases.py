"""Lease-based work claims: crash-recovering work stealing.

A sharded campaign's workers coordinate through one tiny SQLite file
(``leases.sqlite`` in the shard root): before running a cell, a worker
*claims* it — an upsert that succeeds only if the cell is unclaimed,
expired, or already its own — and the claim carries a TTL.  A healthy
worker renews its leases well inside the TTL (between trials, and
mid-trial by piggybacking on the telemetry heartbeat's block-loop poll
— see :class:`LeaseRenewer`); a SIGKILLed or wedged worker stops
renewing, its leases expire, and any surviving worker reclaims and
re-runs the cells.  Re-running is safe by construction: trial outcomes
are deterministic functions of content-hashed specs, so a duplicate
execution upserts an identical row.

The lease table is *advisory*, never load-bearing for correctness — it
only prevents wasted duplicate work.  Losing it (or racing it across a
filesystem without working locks) degrades throughput, not results.
"""

from __future__ import annotations

import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import ExperimentError

__all__ = [
    "DEFAULT_LEASE_TTL",
    "Lease",
    "LeaseManager",
    "LeaseRenewer",
]

#: Default seconds a claim stays valid without renewal.  Generous next
#: to the renewal cadence (TTL/4): four missed renewals in a row means
#: the worker is gone or wedged, not slow.
DEFAULT_LEASE_TTL = 120.0

_LEASE_SCHEMA = """
CREATE TABLE IF NOT EXISTS leases (
    spec_hash   TEXT PRIMARY KEY,
    worker      TEXT NOT NULL,
    acquired_at REAL NOT NULL,
    expires_at  REAL NOT NULL,
    renewals    INTEGER NOT NULL DEFAULT 0
);
"""


@dataclass(frozen=True)
class Lease:
    """One live (or expired) work claim."""

    spec_hash: str
    worker: str
    acquired_at: float
    expires_at: float
    renewals: int

    def remaining(self, now: float | None = None) -> float:
        return self.expires_at - (time.time() if now is None else now)


class LeaseManager:
    """TTL work claims for one worker over one ``leases.sqlite``.

    Claims are row-atomic (``INSERT .. ON CONFLICT DO UPDATE .. WHERE``
    inside SQLite's write lock), so two workers racing for one cell
    cannot both win.  Connections are per-process: the manager reopens
    its handle after a fork, so a renewer inherited by a
    ``multiprocessing`` worker keeps working.
    """

    def __init__(
        self,
        path: str | Path,
        worker: str,
        ttl_secs: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not worker:
            raise ExperimentError("a lease manager needs a worker id")
        if ttl_secs <= 0:
            raise ExperimentError(
                f"lease ttl must be positive, got {ttl_secs}"
            )
        self.path = str(path)
        self.worker = worker
        self.ttl_secs = float(ttl_secs)
        self._clock = clock
        self._connection: sqlite3.Connection | None = None
        self._pid: int | None = None

    # -- connection ----------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._connection is None or self._pid != pid:
            # A connection must never cross a fork; reopen lazily in
            # whichever process is asking.
            self._connection = sqlite3.connect(self.path)
            self._connection.execute("PRAGMA busy_timeout = 30000")
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute(_LEASE_SCHEMA)
            self._connection.commit()
            self._pid = pid
        return self._connection

    def close(self) -> None:
        if self._connection is not None and self._pid == os.getpid():
            self._connection.close()
        self._connection = None
        self._pid = None

    def __enter__(self) -> "LeaseManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- claims --------------------------------------------------------

    def claim(
        self, spec_hashes: Sequence[str], limit: int | None = None
    ) -> list[str]:
        """Claim up to ``limit`` of ``spec_hashes``; return the wins.

        A hash is claimable when it has no lease, an *expired* lease, or
        a lease this worker already holds (re-claiming one's own live
        lease just renews it).  Claims are attempted in the given order,
        so callers control affinity (e.g. cell-contiguous chunks).
        """
        connection = self._conn()
        now = self._clock()
        claimed: list[str] = []
        with connection:
            for spec_hash in spec_hashes:
                if limit is not None and len(claimed) >= limit:
                    break
                cursor = connection.execute(
                    "INSERT INTO leases"
                    " (spec_hash, worker, acquired_at, expires_at)"
                    " VALUES (?, ?, ?, ?)"
                    " ON CONFLICT(spec_hash) DO UPDATE SET"
                    "  worker = excluded.worker,"
                    "  acquired_at = excluded.acquired_at,"
                    "  expires_at = excluded.expires_at,"
                    "  renewals = 0"
                    " WHERE leases.expires_at <= excluded.acquired_at"
                    "    OR leases.worker = excluded.worker",
                    (spec_hash, self.worker, now, now + self.ttl_secs),
                )
                if cursor.rowcount:
                    claimed.append(spec_hash)
        return claimed

    def renew(self) -> int:
        """Extend every live lease this worker holds; return the count."""
        connection = self._conn()
        now = self._clock()
        with connection:
            cursor = connection.execute(
                "UPDATE leases SET expires_at = ?, renewals = renewals + 1"
                " WHERE worker = ? AND expires_at > ?",
                (now + self.ttl_secs, self.worker, now),
            )
        return cursor.rowcount

    def release(self, spec_hashes: Iterable[str]) -> None:
        """Drop this worker's leases on ``spec_hashes`` (work finished)."""
        connection = self._conn()
        with connection:
            connection.executemany(
                "DELETE FROM leases WHERE spec_hash = ? AND worker = ?",
                [(spec_hash, self.worker) for spec_hash in spec_hashes],
            )

    def release_all(self) -> None:
        """Drop every lease this worker holds (clean shutdown)."""
        connection = self._conn()
        with connection:
            connection.execute(
                "DELETE FROM leases WHERE worker = ?", (self.worker,)
            )

    # -- inspection ----------------------------------------------------

    def _leases(self, where: str, arguments: tuple) -> list[Lease]:
        rows = self._conn().execute(
            "SELECT spec_hash, worker, acquired_at, expires_at, renewals"
            f" FROM leases {where} ORDER BY spec_hash",
            arguments,
        )
        return [Lease(*row) for row in rows]

    def live(self) -> list[Lease]:
        """Every unexpired lease, any worker."""
        return self._leases("WHERE expires_at > ?", (self._clock(),))

    def rows(self) -> list[Lease]:
        """Every lease row, live *or* expired — expired rows are how a
        reclaiming worker knows it is taking over a crashed sibling's
        cell rather than claiming fresh work."""
        return self._leases("", ())

    def holder(self, spec_hash: str) -> Lease | None:
        """The live lease on ``spec_hash``, or ``None``."""
        leases = self._leases(
            "WHERE spec_hash = ? AND expires_at > ?",
            (spec_hash, self._clock()),
        )
        return leases[0] if leases else None

    def next_expiry(self) -> float | None:
        """Seconds until the soonest live lease expires (``None`` when
        no lease is live) — how long a starved worker should wait
        before a reclaim attempt can possibly succeed."""
        now = self._clock()
        row = self._conn().execute(
            "SELECT MIN(expires_at) FROM leases WHERE expires_at > ?",
            (now,),
        ).fetchone()
        if row is None or row[0] is None:
            return None
        return max(0.0, float(row[0]) - now)

    def sweep_expired(self) -> int:
        """Delete expired lease rows (``repro store gc``); return count."""
        connection = self._conn()
        with connection:
            cursor = connection.execute(
                "DELETE FROM leases WHERE expires_at <= ?",
                (self._clock(),),
            )
        return cursor.rowcount


class LeaseRenewer:
    """Wall-clock-throttled lease renewal, pluggable everywhere.

    One instance serves both renewal sites: registered as a telemetry
    beat listener (:func:`repro.telemetry.heartbeat.add_beat_listener`)
    it renews from *inside* a long trial's block loop, and called
    directly from the fabric's progress callback it renews between
    trials.  Renewal cadence is TTL/4, so a lease survives three
    consecutive missed renewals before a sibling can steal the cell.
    """

    def __init__(
        self, manager: LeaseManager, interval_secs: float | None = None
    ) -> None:
        self.manager = manager
        self.interval_secs = (
            manager.ttl_secs / 4.0 if interval_secs is None else interval_secs
        )
        self.renewals = 0
        self._last = time.monotonic()

    def maybe_renew(self) -> None:
        now = time.monotonic()
        if now - self._last < self.interval_secs:
            return
        self._last = now
        self.manager.renew()
        self.renewals += 1

    def __call__(self, event: dict | None = None) -> None:
        """Beat-listener entry point (the event payload is ignored)."""
        self.maybe_renew()
