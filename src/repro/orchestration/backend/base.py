"""The store backend interface.

Everything above the persistence layer — :func:`~repro.orchestration.pool.run_specs`,
:class:`~repro.orchestration.runner.CampaignRunner`, the telemetry
reports, the CLI — talks to a trial store through this protocol and
nothing else.  Two backends implement it today:

* :class:`~repro.orchestration.store.TrialStore` — one SQLite file, the
  default.  Hardened for concurrent writers (WAL + busy timeout), which
  covers N worker *processes* on one machine sharing one file.
* :class:`~repro.orchestration.backend.sharded.ShardedStore` — a
  directory of stores: one canonical file plus one private shard per
  worker, for workers that must never contend on a single writer lock
  (across machines on a shared filesystem, or when the canonical store
  can disappear mid-run).  ``repro store merge`` folds shards back into
  the canonical file deterministically.

The interface is deliberately the *existing* ``TrialStore`` surface:
the refactor moved the contract into a base class rather than changing
any call site, so every pre-backend caller keeps working against both
backends unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec only)
    from repro.orchestration.spec import TrialOutcome, TrialSpec

__all__ = ["StoreBackend"]


class StoreBackend(ABC):
    """Abstract trial store: content-addressed outcomes + failure ledger.

    Contract highlights every backend must honor:

    * **Idempotent writes.**  ``put`` of an existing hash replaces the
      row; duplicate execution of one spec is harmless by construction
      (spec hashes are content hashes, and trial outcomes are
      deterministic functions of the spec).
    * **Readonly opens never create or mutate anything** — they are the
      mode for ``status``/``report`` inspection.
    * **Reads see only committed outcomes**: a crash mid-write loses at
      most the in-flight trial, never corrupts stored ones.
    """

    #: Filesystem path (or ``":memory:"``) the backend persists under.
    path: str
    readonly: bool

    # -- lifecycle -----------------------------------------------------

    @abstractmethod
    def close(self) -> None:
        """Release every underlying connection/handle."""

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads ---------------------------------------------------------

    @abstractmethod
    def __len__(self) -> int:
        """Number of distinct stored trials."""

    def __contains__(self, spec: "TrialSpec") -> bool:
        return self.get(spec) is not None

    @abstractmethod
    def get(self, spec: "TrialSpec") -> "TrialOutcome | None":
        """The cached outcome for ``spec``, or ``None``."""

    @abstractmethod
    def get_many(
        self, specs: Sequence["TrialSpec"]
    ) -> dict[str, "TrialOutcome"]:
        """Cached outcomes for ``specs``, keyed by spec content hash."""

    @abstractmethod
    def completed_hashes(self) -> set[str]:
        """Every stored trial's spec hash (the backend's "done" set)."""

    @abstractmethod
    def rows(self) -> Iterator[dict[str, object]]:
        """Every stored trial as a plain dict (spec identity + outcome
        columns), ordered by ``(protocol, n, engine, seed)``."""

    # -- writes --------------------------------------------------------

    @abstractmethod
    def put(self, spec: "TrialSpec", outcome: "TrialOutcome") -> None:
        """Persist one outcome (idempotent: same hash overwrites)."""

    @abstractmethod
    def put_many(
        self, items: Iterable[tuple["TrialSpec", "TrialOutcome"]]
    ) -> None:
        """Persist a batch of outcomes in one transaction."""

    # -- failure ledger ------------------------------------------------

    @abstractmethod
    def record_failure(
        self,
        spec: "TrialSpec",
        attempts: int,
        error: str,
        quarantined: bool = False,
    ) -> None:
        """Upsert one outstanding failure for ``spec``."""

    @abstractmethod
    def clear_failures(self, specs: Iterable["TrialSpec"]) -> None:
        """Drop the failure rows for ``specs`` (they succeeded after all)."""

    def clear_failure(self, spec: "TrialSpec") -> None:
        self.clear_failures([spec])

    @abstractmethod
    def failures(self) -> list[dict[str, object]]:
        """Every outstanding failure as a plain dict."""
