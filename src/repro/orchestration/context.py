"""Ambient execution settings threaded to every declarative trial batch.

Experiment ``run()`` functions keep their historical ``(scale, seed, ...)``
signatures; parallelism, caching, and CLI-level overrides travel out of
band through a :class:`ExecutionContext` instead.  ``repro run E9 --jobs 4
--store x.sqlite --engine multiset --trials 8`` installs a context, and
every :func:`~repro.experiments.runner.stabilization_trials` call the
experiment makes picks it up — no signature churn across a dozen
experiment modules.

The default context (``jobs=1``, no store, no overrides) reproduces the
historical serial behavior exactly.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ExperimentError
from repro.orchestration.pool import ProgressCallback
from repro.orchestration.store import TrialStore

__all__ = ["ExecutionContext", "current_context", "execution_context"]


@dataclass(frozen=True)
class ExecutionContext:
    """How declarative trial batches should execute right now.

    ``engine`` and ``trials``, when set, override the values the
    experiment code passes — the CLI's ``--engine``/``--trials`` flags.
    """

    jobs: int = 1
    store: TrialStore | None = None
    engine: str | None = None
    trials: int | None = None
    progress: ProgressCallback | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be positive, got {self.jobs}")
        if self.trials is not None and self.trials < 1:
            raise ExperimentError(
                f"trials must be positive, got {self.trials}"
            )


_DEFAULT = ExecutionContext()
_current: ContextVar[ExecutionContext] = ContextVar(
    "repro_execution_context", default=_DEFAULT
)


def current_context() -> ExecutionContext:
    """The active context (the serial default unless one is installed)."""
    return _current.get()


@contextmanager
def execution_context(
    jobs: int = 1,
    store: TrialStore | None = None,
    engine: str | None = None,
    trials: int | None = None,
    progress: ProgressCallback | None = None,
) -> Iterator[ExecutionContext]:
    """Install an :class:`ExecutionContext` for the enclosed block."""
    context = ExecutionContext(
        jobs=jobs, store=store, engine=engine, trials=trials, progress=progress
    )
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)
