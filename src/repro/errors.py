"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ProtocolError",
    "SimulationError",
    "ConvergenceError",
    "TrialTimeoutError",
    "ParameterError",
    "ScheduleError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ProtocolError(ReproError):
    """A protocol definition is malformed or produced an invalid state."""


class SimulationError(ReproError):
    """A simulation was driven into an invalid configuration or misused."""


class ConvergenceError(SimulationError):
    """A run exceeded its step budget before reaching its target predicate."""

    def __init__(self, message: str, steps: int | None = None) -> None:
        super().__init__(message)
        #: Number of steps executed before giving up (``None`` if unknown).
        self.steps = steps


class TrialTimeoutError(SimulationError):
    """A trial exceeded its wall-clock budget (campaign per-trial timeout)."""


class ParameterError(ReproError, ValueError):
    """A protocol or experiment parameter is out of its documented domain."""


class ScheduleError(ReproError):
    """A deterministic schedule is malformed (bad pair, exhausted, ...)."""


class ExperimentError(ReproError):
    """An experiment specification or run is invalid."""
