"""repro — reproduction of Sudo et al., "Logarithmic Expected-Time Leader
Election in Population Protocol Model" (PODC 2019).

Quickstart::

    from repro import AgentSimulator, PLLProtocol

    protocol = PLLProtocol.for_population(256)
    sim = AgentSimulator(protocol, n=256, seed=1)
    sim.run_until_stabilized()
    print(sim.parallel_time, sim.leader_count)  # O(log n) expected, 1

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.core.state import PLLState
from repro.core.symmetric import SymmetricPLLProtocol
from repro.engine import (
    AgentSimulator,
    Configuration,
    DeterministicSchedule,
    FOLLOWER,
    LEADER,
    LeaderElectionProtocol,
    MonotoneLeaderStabilization,
    MultisetSimulator,
    Protocol,
    RandomScheduler,
    SilenceDetector,
    check_symmetry,
)
from repro.errors import (
    ConvergenceError,
    ExperimentError,
    ParameterError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.protocols import AngluinProtocol, FastNonceProtocol, lottery_protocol

__version__ = "1.0.0"

__all__ = [
    "AgentSimulator",
    "AngluinProtocol",
    "Configuration",
    "ConvergenceError",
    "DeterministicSchedule",
    "ExperimentError",
    "FastNonceProtocol",
    "FOLLOWER",
    "LEADER",
    "LeaderElectionProtocol",
    "MonotoneLeaderStabilization",
    "MultisetSimulator",
    "ParameterError",
    "PLLParameters",
    "PLLProtocol",
    "PLLState",
    "Protocol",
    "ProtocolError",
    "RandomScheduler",
    "ReproError",
    "ScheduleError",
    "SilenceDetector",
    "SimulationError",
    "SymmetricPLLProtocol",
    "check_symmetry",
    "lottery_protocol",
    "__version__",
]
