"""Command-line interface.

Eight subcommands::

    repro list                      # enumerate the experiment registry
    repro run E9 [--scale 1.0] [--jobs 4] [--store x.sqlite]
    repro simulate --protocol pll --n 256 [--seed 0] [--engine agent]
    repro campaign run|resume|status|report E1 [--jobs 4] [--store ...]
    repro store merge|status|gc ...    # trial-store maintenance
    repro telemetry report|profile|phases ...  # runtime records
    repro trace export events.jsonl [--out trace.json]   # Perfetto export
    repro bench [--quick] [--check ...]   # BENCH_engine.json harness

``repro run all`` executes the full per-lemma/per-table sweep (the data
behind EXPERIMENTS.md).  ``repro campaign`` drives the orchestration
subsystem: trials shard across ``--jobs`` worker processes and every
outcome persists to the SQLite trial store (default
``.repro-store.sqlite``), so re-running only executes missing trials and
``resume`` picks up exactly where an interrupted ``run`` stopped.

``repro campaign run --shard <worker>`` joins the *distributed* campaign
fabric instead: the store becomes a directory of per-worker shard
stores, work is claimed through a TTL lease table (a killed worker's
cells are reclaimed by survivors after the TTL), and ``repro store
merge`` deterministically folds the shards into one canonical store.
Every store-reading command accepts either layout — pass the shard root
directory where you would pass a ``.sqlite`` path.

``repro bench`` runs the machine-readable engine benchmark
(:mod:`repro.bench.report`) — the same harness CI's bench-smoke job
drives — without path-invoking ``benchmarks/report.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.errors import ReproError
from repro.experiments import (
    all_experiments,
    campaign_for,
    campaign_ids,
    make_simulator,
    run_experiment,
)
from repro.orchestration import (
    DEFAULT_STORE_PATH,
    CampaignRunner,
    TrialStore,
    build_protocol,
    is_sharded_root,
    open_store,
    protocol_names,
)
from repro.orchestration.spec import (
    AUTO_ENGINE,
    ENGINES,
    ENSEMBLE_ENGINE,
    TrialOutcome,
)

#: CLI engine choices: the concrete engines, the across-trial ensemble
#: strategy, and per-``(n, trials)`` resolution.
ENGINE_CHOICES = (*ENGINES, ENSEMBLE_ENGINE, AUTO_ENGINE)

__all__ = ["main", "build_parser"]

#: Protocol factories for `repro simulate`, derived from the registry.
PROTOCOLS = {
    name: (lambda n, _name=name: build_protocol(_name, n))
    for name in protocol_names()
}


def _add_store_flags(parser: argparse.ArgumentParser, default: str | None) -> None:
    parser.add_argument(
        "--store",
        default=default,
        help=(
            "SQLite trial store path"
            + (
                f" (default {DEFAULT_STORE_PATH})"
                if default
                else " (default: no store, trials are not cached)"
            )
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for trial execution (default 1: in-process)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Logarithmic Expected-Time Leader Election in "
            "Population Protocol Model' (Sudo et al., PODC 2019)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the experiment registry")

    run_parser = subparsers.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment", help="experiment id (e.g. E9) or 'all'")
    run_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trial-count scale factor (default 1.0)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="base seed")
    run_parser.add_argument(
        "--out",
        default=None,
        help="also append the rendered report(s) to this file",
    )
    run_parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default=None,
        help=(
            "override the engine for declarative trial batches ('ensemble' "
            "packs same-cell trials into vectorized lanes; 'auto' picks "
            "per population size)"
        ),
    )
    run_parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the per-point trial count for declarative batches",
    )
    _add_store_flags(run_parser, default=None)

    sim_parser = subparsers.add_parser(
        "simulate", help="run one protocol to stabilization"
    )
    sim_parser.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="pll"
    )
    sim_parser.add_argument("--n", type=int, default=256, help="population size")
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="agent"
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="orchestrate an experiment's trial grid against the trial store",
    )
    actions = campaign_parser.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("run", "execute every trial missing from the store"),
        ("resume", "alias of run: continue an interrupted campaign"),
        ("status", "show cache coverage without executing anything"),
        ("report", "aggregate stored outcomes without executing anything"),
    ):
        action_parser = actions.add_parser(action, help=help_text)
        action_parser.add_argument(
            "experiment",
            help=f"experiment id with a campaign ({', '.join(campaign_ids())})",
        )
        action_parser.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="trial-count scale factor (default 1.0)",
        )
        action_parser.add_argument("--seed", type=int, default=0, help="base seed")
        action_parser.add_argument(
            "--engine",
            choices=ENGINE_CHOICES,
            default=AUTO_ENGINE,
            help=(
                "engine the campaign's trials run on (default auto: "
                "count-level superbatch at production n, batch in the "
                "mid regime, ensemble-dispatched multiset below the "
                "batch crossover)"
            ),
        )
        if action in ("run", "resume"):
            action_parser.add_argument(
                "--retries",
                type=int,
                default=1,
                help=(
                    "solo retry rounds for failed trials before "
                    "quarantining them (default 1)"
                ),
            )
            action_parser.add_argument(
                "--trial-timeout",
                type=float,
                default=None,
                metavar="SECS",
                help=(
                    "per-trial wall-clock timeout in seconds (default: "
                    "unlimited); a timed-out trial is retried, then "
                    "quarantined"
                ),
            )
            action_parser.add_argument(
                "--shard",
                default=None,
                metavar="WORKER",
                help=(
                    "join the distributed campaign fabric as this worker: "
                    "--store becomes a shard-root directory (default "
                    ".repro-store.shards), work is claimed via TTL leases, "
                    "and outcomes land in a private per-worker shard "
                    "(fold with `repro store merge`)"
                ),
            )
            action_parser.add_argument(
                "--lease-ttl",
                type=float,
                default=None,
                metavar="SECS",
                help=(
                    "seconds a sharded worker's work claim survives "
                    "without renewal (default 120); only with --shard"
                ),
            )
        _add_store_flags(action_parser, default=DEFAULT_STORE_PATH)

    store_parser = subparsers.add_parser(
        "store",
        help=(
            "trial-store maintenance: fold shards into the canonical "
            "store (merge), inspect any store layout (status), sweep "
            "orphaned checkpoints and expired leases (gc)"
        ),
    )
    store_actions = store_parser.add_subparsers(dest="action", required=True)
    store_merge = store_actions.add_parser(
        "merge",
        help=(
            "deterministically fold every shard-*.sqlite in a shard root "
            "into canonical.sqlite (idempotent; order-independent; "
            "byte-identical output for identical inputs)"
        ),
    )
    store_merge.add_argument("root", help="shard-root directory")
    store_merge.add_argument(
        "--keep-shards",
        action="store_true",
        help=(
            "leave folded shard files in place (safe mid-campaign: the "
            "merge reads only committed rows)"
        ),
    )
    store_status = store_actions.add_parser(
        "status",
        help=(
            "summarize a store: trials, outstanding failures, journal "
            "mode; per-shard coverage and live leases for shard roots"
        ),
    )
    store_status.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_STORE_PATH,
        help=(
            "store path — a .sqlite file or a shard-root directory "
            f"(default {DEFAULT_STORE_PATH})"
        ),
    )
    store_gc = store_actions.add_parser(
        "gc",
        help=(
            "sweep garbage a crashed worker leaves behind: checkpoint "
            "files whose trial is already stored, interrupted "
            "checkpoint tmp files, and expired lease rows"
        ),
    )
    store_gc.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_STORE_PATH,
        help=(
            "store path — a .sqlite file or a shard-root directory "
            f"(default {DEFAULT_STORE_PATH})"
        ),
    )
    store_gc.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "checkpoint directory to sweep (default: REPRO_CHECKPOINT_DIR "
            "or .repro-checkpoints)"
        ),
    )

    telemetry_parser = subparsers.add_parser(
        "telemetry",
        help=(
            "inspect runtime records: per-cell durations (report), "
            "stage-cost profiles (profile), protocol phase timelines "
            "(phases)"
        ),
    )
    telemetry_actions = telemetry_parser.add_subparsers(
        dest="action", required=True
    )
    telemetry_report = telemetry_actions.add_parser(
        "report",
        help=(
            "aggregate per-(protocol, n, engine) runtime profiles — trial "
            "durations, steps/sec, parallel time/sec, cache hit rates"
        ),
    )
    telemetry_report.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_STORE_PATH,
        help=f"SQLite trial store path (default {DEFAULT_STORE_PATH})",
    )
    telemetry_report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text table; json is machine-readable)",
    )
    telemetry_profile = telemetry_actions.add_parser(
        "profile",
        help=(
            "aggregate profile events from a JSONL event file into the "
            "per-(engine, protocol, n) stage-cost table"
        ),
    )
    telemetry_profile.add_argument(
        "events",
        help="JSONL event file (the REPRO_TELEMETRY_EVENTS target)",
    )
    telemetry_phases = telemetry_actions.add_parser(
        "phases",
        help=(
            "render stored protocol phase timelines (Algorithm 1 phase "
            "occupancy over each trial's steps)"
        ),
    )
    telemetry_phases.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_STORE_PATH,
        help=f"SQLite trial store path (default {DEFAULT_STORE_PATH})",
    )
    telemetry_phases.add_argument(
        "--protocol", default=None, help="only this protocol's trials"
    )
    telemetry_phases.add_argument(
        "--n", type=int, default=None, help="only this population size"
    )
    telemetry_phases.add_argument(
        "--seed", type=int, default=None, help="only this seed"
    )
    telemetry_phases.add_argument(
        "--engine", default=None, help="only this engine's trials"
    )
    telemetry_phases.add_argument(
        "--limit",
        type=int,
        default=4,
        help="render at most this many trials (default 4)",
    )
    telemetry_faults = telemetry_actions.add_parser(
        "faults",
        help=(
            "render stored fault records (injected events with per-fault "
            "recovery times) for faulted trials"
        ),
    )
    telemetry_faults.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_STORE_PATH,
        help=f"SQLite trial store path (default {DEFAULT_STORE_PATH})",
    )
    telemetry_faults.add_argument(
        "--protocol", default=None, help="only this protocol's trials"
    )
    telemetry_faults.add_argument(
        "--n", type=int, default=None, help="only this population size"
    )
    telemetry_faults.add_argument(
        "--seed", type=int, default=None, help="only this seed"
    )
    telemetry_faults.add_argument(
        "--engine", default=None, help="only this engine's trials"
    )
    telemetry_faults.add_argument(
        "--limit",
        type=int,
        default=8,
        help="render at most this many trials (default 8)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="export JSONL trace events for Perfetto / chrome://tracing",
    )
    trace_actions = trace_parser.add_subparsers(dest="action", required=True)
    trace_export = trace_actions.add_parser(
        "export",
        help=(
            "convert a REPRO_TELEMETRY_EVENTS file to Chrome trace-event "
            "JSON (open the result in ui.perfetto.dev)"
        ),
    )
    trace_export.add_argument(
        "events",
        help="JSONL event file written under REPRO_TRACE=1",
    )
    trace_export.add_argument(
        "--out",
        default=None,
        help="output path (default: <events>.trace.json)",
    )

    # Registered so `repro --help` lists it; actual dispatch happens in
    # main() before parse_args (the harness owns its own flags, which
    # argparse's REMAINDER cannot forward when they lead).
    subparsers.add_parser(
        "bench",
        help=(
            "run the engine benchmark harness (writes BENCH_engine.json; "
            "flags are the harness's own, e.g. --quick --check-kernel)"
        ),
    )
    return parser


def _command_list() -> int:
    for experiment_id, (spec, _run) in all_experiments().items():
        print(f"{experiment_id:4s} {spec.paper_artifact:18s} {spec.title}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        ids = list(all_experiments())
    else:
        ids = [args.experiment]
    store = TrialStore(args.store) if args.store else None
    try:
        for experiment_id in ids:
            result = run_experiment(
                experiment_id,
                scale=args.scale,
                seed=args.seed,
                jobs=args.jobs,
                store=store,
                engine=args.engine,
                trials=args.trials,
            )
            report = result.render()
            print(report)
            print()
            if args.out is not None:
                with open(args.out, "a", encoding="utf-8") as sink:
                    sink.write(report + "\n\n")
    finally:
        if store is not None:
            store.close()
    return 0


def _command_simulate(protocol_name: str, n: int, seed: int, engine: str) -> int:
    protocol = PROTOCOLS[protocol_name](n)
    sim = make_simulator(protocol, n, seed=seed, engine=engine)
    steps = sim.run_until_stabilized()
    print(sim.describe())
    print(
        f"stabilized after {steps} interactions = "
        f"{sim.parallel_time:.2f} parallel time; "
        f"{sim.distinct_states_seen()} distinct states reached"
    )
    return 0


def _progress_printer(stride: int):
    """Progress callback printing every ``stride`` completed trials.

    Stride lines carry elapsed wall-clock and the cumulative interaction
    throughput of the freshly executed trials, and every line flushes
    explicitly — campaigns are exactly the runs that get piped to ``tee``
    or a log file, where block buffering would otherwise sit on hours of
    progress.
    """
    started = time.perf_counter()
    fresh_steps = 0

    def progress(done: int, total: int, outcome: TrialOutcome | None) -> None:
        nonlocal fresh_steps
        if outcome is None:
            print(f"  {done}/{total} trials already cached", flush=True)
            return
        fresh_steps += outcome.steps
        if done % stride == 0 or done == total:
            elapsed = time.perf_counter() - started
            rate = fresh_steps / elapsed if elapsed > 0 else 0.0
            print(
                f"  {done}/{total} trials done in {elapsed:.1f}s"
                f" ({rate:,.0f} steps/s)",
                flush=True,
            )

    return progress


def _command_campaign(args: argparse.Namespace) -> int:
    campaign = campaign_for(
        args.experiment, scale=args.scale, seed=args.seed, engine=args.engine
    )
    if args.action in ("status", "report"):
        # Read-only: inspecting a campaign must not create a store file.
        # open_store routes a directory path to the sharded backend's
        # federated view, so a mid-campaign shard root reports the union
        # of canonical + every worker shard plus live lease holders.
        with open_store(args.store, readonly=True) as store:
            runner = CampaignRunner(store)
            if args.action == "status":
                print(runner.status(campaign).render())
            else:
                print(runner.report(campaign).render())
        return 0
    if getattr(args, "shard", None) is not None:
        return _command_campaign_sharded(args, campaign)
    if getattr(args, "lease_ttl", None) is not None:
        raise ReproError("--lease-ttl only applies with --shard")
    if is_sharded_root(args.store):
        raise ReproError(
            f"{args.store!r} is a shard-root directory; run it with "
            "--shard <worker> (or point --store at a .sqlite file)"
        )
    with TrialStore(args.store) as store:
        stride = max(1, len(campaign) // 10)
        runner = CampaignRunner(
            store,
            jobs=args.jobs,
            progress=_progress_printer(stride),
            retries=args.retries,
            trial_timeout=args.trial_timeout,
        )
        print(
            f"campaign {campaign.name}: {len(campaign)} trials, "
            f"jobs={args.jobs}, store={args.store}"
        )
        try:
            result = runner.run(campaign)
        except KeyboardInterrupt:
            status = runner.status(campaign)
            print()
            print(status.render())
            print("interrupted; `repro campaign resume` will pick up here")
            return 130
        print()
        print(result.render())
    return 0


def _command_campaign_sharded(args: argparse.Namespace, campaign) -> int:
    from repro.orchestration.backend import DEFAULT_SHARD_ROOT
    from repro.orchestration.backend.fabric import run_sharded_campaign
    from repro.orchestration.backend.leases import DEFAULT_LEASE_TTL

    # A sharded campaign's store is a directory; the single-file default
    # path would be wrong, so --shard without --store gets its own root.
    root = (
        DEFAULT_SHARD_ROOT if args.store == DEFAULT_STORE_PATH else args.store
    )
    ttl = DEFAULT_LEASE_TTL if args.lease_ttl is None else args.lease_ttl
    stride = max(1, len(campaign) // 10)
    print(
        f"campaign {campaign.name}: {len(campaign)} trials, "
        f"worker={args.shard}, jobs={args.jobs}, root={root}, "
        f"lease_ttl={ttl:.0f}s"
    )
    report = run_sharded_campaign(
        campaign.trials,
        root,
        worker=args.shard,
        jobs=args.jobs,
        lease_ttl=ttl,
        progress=_progress_printer(stride),
        retries=args.retries,
        trial_timeout=args.trial_timeout,
    )
    print()
    print(report.render())
    print(
        "fold shards into the canonical store with "
        f"`repro store merge {root}`"
    )
    return 0


def _command_store(args: argparse.Namespace) -> int:
    if args.action == "merge":
        from repro.orchestration.backend.merge import merge_store

        print(merge_store(args.root, keep_shards=args.keep_shards).render())
        return 0
    if args.action == "status":
        return _command_store_status(args)
    return _command_store_gc(args)


def _command_store_status(args: argparse.Namespace) -> int:
    with open_store(args.store, readonly=True) as store:
        trials = len(store)
        failures = store.failures()
        quarantined = sum(1 for row in failures if row["quarantined"])
        print(f"store {args.store}: {trials} trials")
        if failures:
            print(
                f"  failures: {len(failures)} outstanding "
                f"({quarantined} quarantined)"
            )
        coverage = getattr(store, "shard_coverage", None)
        if coverage is None:
            print(f"  journal mode: {store.journal_mode()}")
            return 0
        print("  members:")
        for member in coverage():
            plural = "s" if member.rows != 1 else ""
            print(f"    {member.name}: {member.rows} trial{plural}")
        leases = store.live_leases()
        if leases:
            print(f"  live leases: {len(leases)}")
            for lease in leases:
                print(
                    f"    {lease.spec_hash[:12]} held by {lease.worker}, "
                    f"{max(0.0, lease.remaining()):.0f}s left"
                )
        else:
            print("  live leases: none")
    return 0


def _command_store_gc(args: argparse.Namespace) -> int:
    from repro.faults.checkpoint import checkpoint_dir, sweep_orphans

    with open_store(args.store, readonly=True) as store:
        completed = store.completed_hashes()
        swept_leases = 0
        expired_sweeper = getattr(store, "leases_path", None)
        if expired_sweeper is not None and expired_sweeper.exists():
            from repro.orchestration.backend.leases import LeaseManager

            manager = LeaseManager(expired_sweeper, worker="gc")
            try:
                swept_leases = manager.sweep_expired()
            finally:
                manager.close()
    directory = (
        checkpoint_dir() if args.checkpoint_dir is None else args.checkpoint_dir
    )
    removed = sweep_orphans(completed, directory)
    print(
        f"gc {args.store}: removed {len(removed)} orphaned checkpoint "
        f"file(s) under {directory}"
        + (f", {swept_leases} expired lease row(s)" if swept_leases else "")
    )
    for path in removed:
        print(f"  {path}")
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    if args.action == "report":
        # Imported lazily: report aggregation pulls in numpy percentiles
        # the other subcommands never need at startup.
        from repro.telemetry.report import build_report, render_report

        with open_store(args.store, readonly=True) as store:
            print(render_report(build_report(store), fmt=args.format))
        return 0
    if args.action == "profile":
        from repro.telemetry.profile import (
            load_profile_records,
            render_profile_table,
        )

        try:
            records = load_profile_records(args.events)
        except OSError as exc:
            raise ReproError(f"cannot read event file: {exc}") from exc
        print(render_profile_table(records))
        return 0
    if args.action == "faults":
        return _command_telemetry_faults(args)
    return _command_telemetry_phases(args)


def _command_telemetry_faults(args: argparse.Namespace) -> int:
    from repro.faults.report import render_faults

    shown = 0
    with open_store(args.store, readonly=True) as store:
        for row in store.rows():
            if args.protocol is not None and row["protocol"] != args.protocol:
                continue
            if args.n is not None and row["n"] != args.n:
                continue
            if args.seed is not None and row["seed"] != args.seed:
                continue
            if args.engine is not None and row["engine"] != args.engine:
                continue
            if not row["faults"]:
                continue
            if shown:
                print()
            print(
                f"{row['protocol']} n={row['n']:,} seed={row['seed']} "
                f"({row['engine']}, {row['steps']:,} steps)"
            )
            print(render_faults(row["faults"], int(row["n"])))
            shown += 1
            if shown >= args.limit:
                break
    if shown == 0:
        print("no stored fault records match (clean trials carry none)")
    return 0


def _command_telemetry_phases(args: argparse.Namespace) -> int:
    from repro.telemetry.probe import render_phases

    shown = 0
    skipped_without_series = 0
    with open_store(args.store, readonly=True) as store:
        for row in store.rows():
            if args.protocol is not None and row["protocol"] != args.protocol:
                continue
            if args.n is not None and row["n"] != args.n:
                continue
            if args.seed is not None and row["seed"] != args.seed:
                continue
            if args.engine is not None and row["engine"] != args.engine:
                continue
            if not row["phases"]:
                skipped_without_series += 1
                continue
            if shown:
                print()
            print(
                f"{row['protocol']} n={row['n']:,} seed={row['seed']} "
                f"({row['engine']}, {row['steps']:,} steps)"
            )
            print(render_phases(row["phases"]))
            shown += 1
            if shown >= args.limit:
                break
    if shown == 0:
        note = (
            f" ({skipped_without_series} matching trials have no phase "
            "series: probe-less protocol or packed ensemble lanes)"
            if skipped_without_series
            else ""
        )
        print(f"no stored phase timelines match{note}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.telemetry.trace import (
        chrome_trace_events,
        load_events,
        validate_chrome_trace,
    )

    try:
        events = load_events(args.events)
    except OSError as exc:
        raise ReproError(f"cannot read event file: {exc}") from exc
    trace_events = chrome_trace_events(events)
    payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    errors = validate_chrome_trace(payload)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 2
    out = args.out or f"{args.events}.trace.json"
    with open(out, "w", encoding="utf-8") as sink:
        _json.dump(payload, sink)
        sink.write("\n")
    spans = sum(event.get("ph") == "X" for event in trace_events)
    counters = len(trace_events) - spans
    print(
        f"wrote {out}: {spans} spans, {counters} counter samples "
        f"(open in https://ui.perfetto.dev)"
    )
    return 0


def _command_bench(bench_args: list[str]) -> int:
    # Imported lazily: the harness pulls in the benchmark machinery,
    # which the other subcommands never need.
    from repro.bench.report import main as bench_main

    forwarded = list(bench_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return bench_main(forwarded)


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["bench"]:
        # Routed before argparse: the harness owns its own flags, and
        # argparse's REMAINDER refuses leading options ("--quick").
        return _command_bench(arguments[1:])
    args = build_parser().parse_args(arguments)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "simulate":
            return _command_simulate(
                args.protocol, args.n, args.seed, args.engine
            )
        if args.command == "campaign":
            return _command_campaign(args)
        if args.command == "store":
            return _command_store(args)
        if args.command == "telemetry":
            return _command_telemetry(args)
        if args.command == "trace":
            return _command_trace(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
