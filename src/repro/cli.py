"""Command-line interface.

Three subcommands::

    repro list                      # enumerate the experiment registry
    repro run E9 [--scale 1.0]      # run an experiment, print its table
    repro simulate --protocol pll --n 256 [--seed 0] [--engine agent]

``repro run all`` executes the full per-lemma/per-table sweep (the data
behind EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.core.symmetric import SymmetricPLLProtocol
from repro.experiments import all_experiments, get_experiment, make_simulator
from repro.protocols.angluin import AngluinProtocol
from repro.protocols.fast_nonce import FastNonceProtocol
from repro.protocols.loose_stabilization import LooselyStabilizingProtocol
from repro.protocols.lottery import lottery_protocol

__all__ = ["main", "build_parser"]

#: Protocol factories for `repro simulate`.
PROTOCOLS = {
    "pll": lambda n: PLLProtocol.for_population(n),
    "pll-symmetric": SymmetricPLLProtocol.for_population,
    "pll-no-tournament": lambda n: PLLProtocol.for_population(
        n, variant="no-tournament"
    ),
    "pll-backup-only": lambda n: PLLProtocol.for_population(n, variant="backup-only"),
    "lottery": lambda n: lottery_protocol(PLLParameters.for_population(n)),
    "angluin": lambda n: AngluinProtocol(),
    "fast-nonce": FastNonceProtocol.for_population,
    "loose": LooselyStabilizingProtocol.for_population,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Logarithmic Expected-Time Leader Election in "
            "Population Protocol Model' (Sudo et al., PODC 2019)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the experiment registry")

    run_parser = subparsers.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment", help="experiment id (e.g. E9) or 'all'")
    run_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trial-count scale factor (default 1.0)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="base seed")
    run_parser.add_argument(
        "--out",
        default=None,
        help="also append the rendered report(s) to this file",
    )

    sim_parser = subparsers.add_parser(
        "simulate", help="run one protocol to stabilization"
    )
    sim_parser.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="pll"
    )
    sim_parser.add_argument("--n", type=int, default=256, help="population size")
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument(
        "--engine", choices=("agent", "multiset"), default="agent"
    )
    return parser


def _command_list() -> int:
    for experiment_id, (spec, _run) in all_experiments().items():
        print(f"{experiment_id:4s} {spec.paper_artifact:18s} {spec.title}")
    return 0


def _command_run(
    experiment: str, scale: float, seed: int, out: str | None = None
) -> int:
    if experiment.lower() == "all":
        ids = list(all_experiments())
    else:
        ids = [experiment]
    for experiment_id in ids:
        _spec, run = get_experiment(experiment_id)
        result = run(scale=scale, seed=seed)
        report = result.render()
        print(report)
        print()
        if out is not None:
            with open(out, "a", encoding="utf-8") as sink:
                sink.write(report + "\n\n")
    return 0


def _command_simulate(protocol_name: str, n: int, seed: int, engine: str) -> int:
    protocol = PROTOCOLS[protocol_name](n)
    sim = make_simulator(protocol, n, seed=seed, engine=engine)
    steps = sim.run_until_stabilized()
    print(sim.describe())
    print(
        f"stabilized after {steps} interactions = "
        f"{sim.parallel_time:.2f} parallel time; "
        f"{sim.distinct_states_seen()} distinct states reached"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args.experiment, args.scale, args.seed, args.out)
    if args.command == "simulate":
        return _command_simulate(args.protocol, args.n, args.seed, args.engine)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
