"""Protocol phase probes: phase occupancy derived from count vectors.

The paper's Algorithm 1 has an explicit phase structure — the
QuickElimination lottery (epoch 1), the Tournament (epochs 2-3, Lemma
7), one-way epidemics propagating epochs (Lemma 2), and the BackUp
countdown timer (epoch 4, Lemma 12).  A :class:`PhaseProbe` derives the
occupancy of those phases from a configuration's *state counts* — data
every engine already materializes — so a trial leaves behind a phase
timeline without touching its trajectory.

Determinism is the contract (see DESIGN.md Section 9): probes are
**always on**, sampled on a step schedule that depends only on the spec
(``stride = max(1, n // 8)`` interactions, stride-doubling once the
bounded buffer fills), and they read counts without consuming
randomness.  The serialized series is therefore byte-identical whether
``REPRO_TELEMETRY`` is on or off — it lives in the same tier as the
PR-6 counters and is pinned by ``tests/telemetry/test_neutrality.py``.

Probes attach at two levels:

* ``Protocol.phase_probe()`` — the protocol author's override
  (:class:`~repro.core.pll.PLLProtocol`, the majorities);
* ``KernelSpec.phase_probe`` — compiled protocols can carry the probe
  on their spec instead (Angluin does), found by
  :func:`phase_probe_for` when the protocol method returns ``None``.
"""

from __future__ import annotations

import json
from typing import Callable, Mapping

__all__ = [
    "DEFAULT_MAX_SAMPLES",
    "PhaseProbe",
    "PhaseSeries",
    "make_phase_series",
    "phase_probe_for",
    "poll_mask",
    "render_phases",
]

#: Bound on the serialized series length.  Stride doubling keeps the
#: sample count in ``[DEFAULT_MAX_SAMPLES // 2, DEFAULT_MAX_SAMPLES)``
#: no matter how long the trial runs.
DEFAULT_MAX_SAMPLES = 256

#: A feature maps (state -> count, n) to one integer.  Integers only:
#: fractions are host-stable to render but not to serialize, so the
#: probe stores counts and renderers divide by ``n``.
FeatureFn = Callable[[Mapping, int], int]


class PhaseProbe:
    """Named integer features over a configuration's state counts."""

    __slots__ = ("feature_names", "_features")

    def __init__(self, features: Mapping[str, FeatureFn]) -> None:
        self.feature_names: tuple[str, ...] = tuple(features)
        self._features = tuple(features.values())

    def sample(self, counts: Mapping, n: int) -> tuple[int, ...]:
        return tuple(int(feature(counts, n)) for feature in self._features)


def phase_probe_for(protocol) -> PhaseProbe | None:
    """The protocol's probe: its own override, else its kernel spec's."""
    probe = protocol.phase_probe()
    if probe is not None:
        return probe
    spec = protocol.compile_kernel()
    if spec is not None:
        return getattr(spec, "phase_probe", None)
    return None


class PhaseSeries:
    """A bounded, deterministically scheduled probe time series.

    Engines call :meth:`poll` from their existing loop sites (block
    boundaries, chunk boundaries); the series decides whether the step
    schedule is due and only then asks ``counts_fn`` for the counts.
    Poll sites are chain-determined and the schedule depends only on
    the steps observed at them, so the recorded series is a pure
    function of the spec.
    """

    __slots__ = ("probe", "n", "max_samples", "stride", "_next", "_steps", "_values")

    def __init__(
        self,
        probe: PhaseProbe,
        n: int,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        stride: int | None = None,
    ) -> None:
        self.probe = probe
        self.n = n
        self.max_samples = max(4, max_samples)
        # ~8 samples per parallel-time unit: phase turnover happens on
        # the Theta(n log n) interaction scale, so this resolves it
        # while keeping the sample count (and its O(S) decode cost)
        # bounded well below the work of the steps in between.
        self.stride = max(1, n // 8) if stride is None else max(1, stride)
        self._next = 0  # first poll samples the initial configuration
        self._steps: list[int] = []
        self._values: list[tuple[int, ...]] = []

    def __len__(self) -> int:
        return len(self._steps)

    def poll(self, steps: int, counts_fn: Callable[[], Mapping]) -> None:
        if steps < self._next:
            return
        self._record(steps, counts_fn)
        self._next = steps + self.stride

    def finish(self, steps: int, counts_fn: Callable[[], Mapping]) -> None:
        """Pin the terminal configuration as the series' last sample."""
        if not self._steps or self._steps[-1] != steps:
            self._record(steps, counts_fn)

    def _record(self, steps: int, counts_fn: Callable[[], Mapping]) -> None:
        self._steps.append(steps)
        self._values.append(self.probe.sample(counts_fn(), self.n))
        if len(self._steps) >= self.max_samples:
            # Keep every other sample (the first always survives) and
            # double the stride: the buffer stays bounded and the
            # retained schedule is still deterministic.
            self._steps = self._steps[::2]
            self._values = self._values[::2]
            self.stride *= 2

    def state_dict(self) -> dict:
        """Checkpointable snapshot of the sampling state (the probe and
        bounds come from the spec, so only the dynamic parts travel)."""
        return {
            "stride": self.stride,
            "next": self._next,
            "steps": list(self._steps),
            "values": [list(values) for values in self._values],
        }

    def load_state(self, payload: Mapping) -> None:
        self.stride = int(payload["stride"])
        self._next = int(payload["next"])
        self._steps = [int(step) for step in payload["steps"]]
        self._values = [tuple(values) for values in payload["values"]]

    def to_json(self) -> str | None:
        """Canonical JSON (sorted keys, no whitespace) or ``None``."""
        if not self._steps:
            return None
        payload = {
            "version": 1,
            "n": self.n,
            "stride": self.stride,
            "features": list(self.probe.feature_names),
            "samples": [
                [step, *values]
                for step, values in zip(self._steps, self._values)
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def make_phase_series(protocol, n: int) -> PhaseSeries | None:
    """The series a simulator should poll — ``None`` for probe-less
    protocols, which keep their bare (poll-free) loops."""
    probe = phase_probe_for(protocol)
    if probe is None:
        return None
    return PhaseSeries(probe, n)


def poll_mask(series: PhaseSeries | None) -> int:
    """Power-of-two-minus-one step mask for scalar-loop poll sites.

    The per-interaction engines poll on ``executed & mask == 0``; the
    mask follows the series' initial stride, bounded to ``[2^8, 2^14]``
    so small populations still resolve their phases while large ones
    keep the historical 2^14 amortization.  A pure function of the
    spec — poll sites never depend on the telemetry switch.
    """
    if series is None:
        return (1 << 14) - 1
    bits = max(8, min(14, int(series.stride).bit_length()))
    return (1 << bits) - 1


def render_phases(phases_json: str, width: int = 60) -> str:
    """ASCII timeline of one trial's phase series.

    One row per feature: the feature name, a sparkline of its value
    over the sampled steps (scaled to the feature's own max), and the
    final value.  Used by ``repro telemetry phases``.
    """
    data = json.loads(phases_json)
    features = data["features"]
    samples = data["samples"]
    if not samples:
        return "(empty phase series)"
    steps = [row[0] for row in samples]
    ramp = " .:-=+*#%@"
    lines = [
        f"n={data['n']}  samples={len(samples)}  "
        f"steps {steps[0]:,}..{steps[-1]:,}"
    ]
    # Resample each feature onto a fixed-width character grid by step
    # position, so rows align even after stride doubling.
    span = max(1, steps[-1] - steps[0])
    for index, name in enumerate(features, start=1):
        values = [row[index] for row in samples]
        peak = max(max(values), 1)
        cells = [-1] * width
        for step, value in zip(steps, values):
            slot = min(width - 1, (step - steps[0]) * width // span)
            cells[slot] = value
        # Fill gaps with the last seen value (step function rendering).
        last = values[0]
        chars = []
        for cell in cells:
            if cell >= 0:
                last = cell
            level = min(len(ramp) - 1, (last * (len(ramp) - 1) + peak - 1) // peak)
            chars.append(ramp[level])
        lines.append(
            f"  {name:>16s} |{''.join(chars)}| max={peak:,} last={values[-1]:,}"
        )
    return "\n".join(lines)
