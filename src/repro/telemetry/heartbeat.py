"""Periodic progress events for long-running trials.

A :class:`Heartbeat` is created per ``run_until_stabilized`` call and
polled from the engine's block loop via :meth:`Heartbeat.maybe_beat`.
The poll is cheap — one ``perf_counter`` read and a compare — and the
engines only reach it once per block/chunk (never per interaction), so
the instrument is safe on every hot path.  When telemetry is disabled,
:func:`make_heartbeat` returns ``None`` and the loops skip the poll
entirely: the disabled cost is a single ``is None`` branch per block.

Every beat emits a ``heartbeat`` event (see :mod:`repro.telemetry.sink`)
carrying the trial's identity, steps so far, wall-clock elapsed,
steps/sec, and — when the engine knows its step budget — the ETA to
``max_steps`` at the current rate.
"""

from __future__ import annotations

import os
import time

from repro.telemetry.core import telemetry_enabled
from repro.telemetry.sink import EventSink, make_sink

__all__ = ["DEFAULT_HEARTBEAT_SECS", "HEARTBEAT_SECS_ENV", "Heartbeat", "make_heartbeat"]

#: Seconds between beats; override via :data:`HEARTBEAT_SECS_ENV`.
#: 1 s keeps even a sub-10-second superbatch trial visibly alive while
#: capping the emission rate far below anything measurable.
DEFAULT_HEARTBEAT_SECS = 1.0

#: Environment override for the beat interval (float seconds; ``0`` or a
#: negative value disables heartbeats without touching the rest of the
#: telemetry layer).
HEARTBEAT_SECS_ENV = "REPRO_HEARTBEAT_SECS"


def heartbeat_interval() -> float:
    raw = os.environ.get(HEARTBEAT_SECS_ENV)
    if raw is None:
        return DEFAULT_HEARTBEAT_SECS
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_HEARTBEAT_SECS


class Heartbeat:
    """Emit progress events for one trial, at most once per interval."""

    __slots__ = (
        "engine",
        "protocol",
        "n",
        "seed",
        "max_steps",
        "interval",
        "sink",
        "beats",
        "_started",
        "_last",
    )

    def __init__(
        self,
        engine: str,
        protocol: str,
        n: int,
        seed: int | None,
        max_steps: int | None,
        interval: float,
        sink: EventSink,
    ) -> None:
        self.engine = engine
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self.max_steps = max_steps
        self.interval = interval
        self.sink = sink
        self.beats = 0
        now = time.perf_counter()
        self._started = now
        self._last = now

    def maybe_beat(self, steps: int) -> None:
        """Emit a heartbeat if at least ``interval`` elapsed since the last."""
        now = time.perf_counter()
        if now - self._last < self.interval:
            return
        self._last = now
        self.beats += 1
        elapsed = now - self._started
        rate = steps / elapsed if elapsed > 0 else 0.0
        eta = None
        if self.max_steps is not None and rate > 0:
            eta = max(0.0, (self.max_steps - steps) / rate)
        event = {
            "event": "heartbeat",
            "engine": self.engine,
            "protocol": self.protocol,
            "n": self.n,
            "steps": int(steps),
            "elapsed": round(elapsed, 3),
            "steps_per_sec": round(rate, 1),
            "max_steps": self.max_steps,
            "eta_sec": None if eta is None else round(eta, 1),
            # Wall-clock stamp + pid anchor the beat on the trace
            # timeline (`repro trace export` renders a counter track).
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
        }
        if self.seed is not None:
            event["seed"] = self.seed
        self.sink.emit(event)


def make_heartbeat(
    engine: str,
    protocol: str,
    n: int,
    seed: int | None,
    max_steps: int | None,
    enabled: bool | None = None,
) -> Heartbeat | None:
    """A heartbeat for one trial, or ``None`` when telemetry is off.

    ``enabled`` carries the engine's ctor override; ``None`` defers to
    ``REPRO_TELEMETRY``.  A non-positive ``REPRO_HEARTBEAT_SECS`` also
    yields ``None``, so the engines' block loops keep their single-branch
    disabled cost no matter which knob turned heartbeats off.
    """
    if not telemetry_enabled(enabled):
        return None
    interval = heartbeat_interval()
    if interval <= 0:
        return None
    return Heartbeat(
        engine=engine,
        protocol=protocol,
        n=n,
        seed=seed,
        max_steps=max_steps,
        interval=interval,
        sink=make_sink(),
    )
