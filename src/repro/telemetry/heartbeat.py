"""Periodic progress events for long-running trials.

A :class:`Heartbeat` is created per ``run_until_stabilized`` call and
polled from the engine's block loop via :meth:`Heartbeat.maybe_beat`.
The poll is cheap — one ``perf_counter`` read and a compare — and the
engines only reach it once per block/chunk (never per interaction), so
the instrument is safe on every hot path.  When telemetry is disabled,
:func:`make_heartbeat` returns ``None`` and the loops skip the poll
entirely: the disabled cost is a single ``is None`` branch per block.

Every beat emits a ``heartbeat`` event (see :mod:`repro.telemetry.sink`)
carrying the trial's identity, steps so far, wall-clock elapsed,
steps/sec, and — when the engine knows its step budget — the ETA to
``max_steps`` at the current rate.

Beats also fan out to registered *beat listeners*
(:func:`add_beat_listener`) — process-local callables fired with the
event payload.  Listeners are how other subsystems borrow the engines'
block-loop liveness poll without adding their own hot-path hook: the
campaign fabric's lease renewal
(:class:`repro.orchestration.backend.leases.LeaseRenewer`) rides it to
keep a worker's claims alive through a multi-minute trial.  With at
least one listener registered, :func:`make_heartbeat` builds a
heartbeat even when telemetry is off (the sink/echo machinery stays
disabled; only the listeners fire), so liveness does not depend on the
observability switch.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable

from repro.telemetry.core import telemetry_enabled
from repro.telemetry.sink import EventSink, make_sink

__all__ = [
    "DEFAULT_HEARTBEAT_SECS",
    "HEARTBEAT_SECS_ENV",
    "Heartbeat",
    "add_beat_listener",
    "beat_listeners",
    "make_heartbeat",
    "remove_beat_listener",
]

#: Seconds between beats; override via :data:`HEARTBEAT_SECS_ENV`.
#: 1 s keeps even a sub-10-second superbatch trial visibly alive while
#: capping the emission rate far below anything measurable.
DEFAULT_HEARTBEAT_SECS = 1.0

#: Environment override for the beat interval (float seconds; ``0`` or a
#: negative value disables heartbeats without touching the rest of the
#: telemetry layer).
HEARTBEAT_SECS_ENV = "REPRO_HEARTBEAT_SECS"


def heartbeat_interval() -> float:
    raw = os.environ.get(HEARTBEAT_SECS_ENV)
    if raw is None:
        return DEFAULT_HEARTBEAT_SECS
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_HEARTBEAT_SECS


#: Process-local beat listeners: ``listener(event_dict)`` per beat.
#: Deliberately inherited across ``fork`` (pool workers keep renewing
#: the leases their parent registered a renewer for).
_BEAT_LISTENERS: list[Callable[[dict], None]] = []


def add_beat_listener(listener: Callable[[dict], None]) -> None:
    """Register ``listener`` to run on every heartbeat in this process."""
    _BEAT_LISTENERS.append(listener)


def remove_beat_listener(listener: Callable[[dict], None]) -> None:
    """Unregister ``listener`` (no-op when it is not registered)."""
    try:
        _BEAT_LISTENERS.remove(listener)
    except ValueError:
        pass


def beat_listeners() -> tuple[Callable[[dict], None], ...]:
    return tuple(_BEAT_LISTENERS)


class Heartbeat:
    """Emit progress events for one trial, at most once per interval."""

    __slots__ = (
        "engine",
        "protocol",
        "n",
        "seed",
        "max_steps",
        "interval",
        "sink",
        "beats",
        "_started",
        "_last",
        "_listener_warned",
    )

    def __init__(
        self,
        engine: str,
        protocol: str,
        n: int,
        seed: int | None,
        max_steps: int | None,
        interval: float,
        sink: EventSink | None,
    ) -> None:
        self.engine = engine
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self.max_steps = max_steps
        self.interval = interval
        self.sink = sink
        self.beats = 0
        now = time.perf_counter()
        self._started = now
        self._last = now
        self._listener_warned = False

    def maybe_beat(self, steps: int) -> None:
        """Emit a heartbeat if at least ``interval`` elapsed since the last."""
        now = time.perf_counter()
        if now - self._last < self.interval:
            return
        self._last = now
        self.beats += 1
        elapsed = now - self._started
        rate = steps / elapsed if elapsed > 0 else 0.0
        eta = None
        if self.max_steps is not None and rate > 0:
            eta = max(0.0, (self.max_steps - steps) / rate)
        event = {
            "event": "heartbeat",
            "engine": self.engine,
            "protocol": self.protocol,
            "n": self.n,
            "steps": int(steps),
            "elapsed": round(elapsed, 3),
            "steps_per_sec": round(rate, 1),
            "max_steps": self.max_steps,
            "eta_sec": None if eta is None else round(eta, 1),
            # Wall-clock stamp + pid anchor the beat on the trace
            # timeline (`repro trace export` renders a counter track).
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
        }
        if self.seed is not None:
            event["seed"] = self.seed
        if self.sink is not None:
            self.sink.emit(event)
        for listener in _BEAT_LISTENERS:
            try:
                listener(event)
            except Exception as exc:
                # A listener (e.g. lease renewal against a briefly
                # unreachable file) must never abort a trial; degrade
                # to one warning per heartbeat instance.
                if not self._listener_warned:
                    self._listener_warned = True
                    print(
                        f"warning: heartbeat listener failed: {exc}",
                        file=sys.stderr,
                    )


def make_heartbeat(
    engine: str,
    protocol: str,
    n: int,
    seed: int | None,
    max_steps: int | None,
    enabled: bool | None = None,
) -> Heartbeat | None:
    """A heartbeat for one trial, or ``None`` when telemetry is off.

    ``enabled`` carries the engine's ctor override; ``None`` defers to
    ``REPRO_TELEMETRY``.  A non-positive ``REPRO_HEARTBEAT_SECS`` also
    yields ``None``, so the engines' block loops keep their single-branch
    disabled cost no matter which knob turned heartbeats off.

    With beat listeners registered, a heartbeat is built even when
    telemetry is off — listener-only (no sink, no echo, no events), so
    fabric lease renewal works without the observability switch while
    the off-path cost for listener-less processes stays ``None``.
    """
    telemetry_on = telemetry_enabled(enabled)
    if not telemetry_on and not _BEAT_LISTENERS:
        return None
    interval = heartbeat_interval()
    if interval <= 0:
        return None
    return Heartbeat(
        engine=engine,
        protocol=protocol,
        n=n,
        seed=seed,
        max_steps=max_steps,
        interval=interval,
        sink=make_sink() if telemetry_on else None,
    )
