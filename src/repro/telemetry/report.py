"""Aggregate per-cell telemetry profiles out of a trial store.

``repro telemetry report <store>`` renders the output of
:func:`build_report`: one record per ``(protocol, params, n, engine)``
cell with trial-duration percentiles, throughput both raw
(``steps_per_sec``) and in the paper's unit (``parallel_time_per_sec``,
steps/``n`` per wall-clock second via
:func:`repro.engine.metrics.parallel_time` — comparable across ``n``),
and cache hit rates recovered from the stored per-trial counter
summaries.  ``--format json`` emits the record machine-readably in the
same spirit as ``BENCH_engine.json``, so the ROADMAP's per-cell job
weighting can consume it directly; the default is a plain-text table.

Durations come from the ``duration`` column every trial now records;
rows written before that column existed carry 0 and are excluded from
the wall-clock statistics (but still counted as trials).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.metrics import parallel_time

if TYPE_CHECKING:  # import cycle guard: engines import this package
    from repro.orchestration.store import TrialStore

__all__ = ["REPORT_SCHEMA", "REPORT_FORMATS", "build_report", "render_report"]

#: Accepted ``render_report`` formats (also the CLI ``--format`` choices).
REPORT_FORMATS = ("text", "json")

#: Schema tag for the aggregated report (bump on breaking shape changes).
REPORT_SCHEMA = "repro-telemetry-report/1"


def _params_label(spec_json: str) -> str:
    try:
        pairs = json.loads(spec_json).get("params", [])
    except (ValueError, AttributeError):
        return "-"
    if not pairs:
        return "-"
    return ", ".join(f"{key}={value}" for key, value in pairs)


def _percentiles(values: list[float]) -> dict[str, float]:
    data = np.asarray(values, dtype=np.float64)
    return {
        "mean": float(data.mean()),
        "p50": float(np.percentile(data, 50)),
        "p95": float(np.percentile(data, 95)),
        "min": float(data.min()),
        "max": float(data.max()),
    }


def _cache_hit_rate(summaries: list[dict]) -> float | None:
    """Pooled cache hit rate across the cell's stored counter summaries."""
    hits = 0
    lookups = 0
    for summary in summaries:
        cache = summary.get("cache")
        if not isinstance(cache, dict):
            continue
        hits += int(cache.get("hits", 0))
        lookups += sum(
            int(cache.get(key, 0)) for key in ("hits", "misses", "bypasses")
        )
    return hits / lookups if lookups else None


def build_report(store: "TrialStore") -> dict[str, Any]:
    """Per-cell duration/throughput/cache profile of everything stored."""
    cells: dict[tuple, dict[str, Any]] = {}
    for row in store.rows():
        key = (
            row["protocol"],
            _params_label(row["spec_json"]),
            row["n"],
            row["engine"],
        )
        cell = cells.setdefault(
            key,
            {
                "trials": 0,
                "timed_trials": 0,
                "durations": [],
                "rates": [],
                "pt_rates": [],
                "steps": [],
                "summaries": [],
            },
        )
        cell["trials"] += 1
        cell["steps"].append(float(row["steps"]))
        duration = float(row["duration"])
        if duration > 0:
            cell["timed_trials"] += 1
            cell["durations"].append(duration)
            cell["rates"].append(row["steps"] / duration)
            cell["pt_rates"].append(
                parallel_time(int(row["steps"]), int(row["n"])) / duration
            )
        if row["telemetry"]:
            try:
                cell["summaries"].append(json.loads(row["telemetry"]))
            except ValueError:
                pass
    records = []
    for (protocol, params, n, engine), cell in sorted(cells.items()):
        record: dict[str, Any] = {
            "protocol": protocol,
            "params": params,
            "n": n,
            "engine": engine,
            "trials": cell["trials"],
            "timed_trials": cell["timed_trials"],
            "steps": _percentiles(cell["steps"]),
        }
        if cell["durations"]:
            record["duration_sec"] = _percentiles(cell["durations"])
            record["total_duration_sec"] = float(sum(cell["durations"]))
            record["steps_per_sec"] = _percentiles(cell["rates"])
            record["parallel_time_per_sec"] = _percentiles(cell["pt_rates"])
        hit_rate = _cache_hit_rate(cell["summaries"])
        if hit_rate is not None:
            record["cache_hit_rate"] = hit_rate
        records.append(record)
    return {
        "schema": REPORT_SCHEMA,
        "store": store.path,
        "trials": sum(record["trials"] for record in records),
        "cells": records,
    }


def render_report(report: dict[str, Any], fmt: str = "text") -> str:
    """Render a built report: plain-text table or stable-key JSON."""
    if fmt == "json":
        return json.dumps(report, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValueError(
            f"unknown report format {fmt!r}; use one of: "
            + ", ".join(REPORT_FORMATS)
        )
    cells = report.get("cells", [])
    if not cells:
        return f"store {report.get('store')}: no trials recorded"
    header = (
        f"{'protocol':<10s} {'params':<14s} {'n':>10s} {'engine':<10s} "
        f"{'trials':>6s} {'p50 dur':>10s} {'p95 dur':>10s} "
        f"{'steps/s p50':>12s} {'pt/s p50':>10s} {'cache':>6s}"
    )
    lines = [
        f"store {report.get('store')}: {report.get('trials', 0)} trials",
        header,
        "-" * len(header),
    ]
    for cell in cells:
        durations = cell.get("duration_sec")
        rates = cell.get("steps_per_sec")
        pt_rates = cell.get("parallel_time_per_sec")
        hit_rate = cell.get("cache_hit_rate")
        lines.append(
            f"{cell['protocol']:<10s} {cell['params']:<14s} "
            f"{cell['n']:>10,d} {cell['engine']:<10s} "
            f"{cell['trials']:>6d} "
            + (
                f"{durations['p50']:>9.3f}s {durations['p95']:>9.3f}s "
                if durations
                else f"{'-':>10s} {'-':>10s} "
            )
            + (f"{rates['p50']:>12,.0f} " if rates else f"{'-':>12s} ")
            + (f"{pt_rates['p50']:>10.2f} " if pt_rates else f"{'-':>10s} ")
            + (f"{hit_rate:>6.1%}" if hit_rate is not None else f"{'-':>6s}")
        )
    return "\n".join(lines)
