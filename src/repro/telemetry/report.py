"""Aggregate per-cell telemetry profiles out of a trial store.

``repro telemetry report <store>`` renders the output of
:func:`build_report`: one record per ``(protocol, params, n, engine)``
cell with trial-duration percentiles, the steps/sec distribution, and
cache hit rates recovered from the stored per-trial counter summaries —
machine-readable in the same spirit as ``BENCH_engine.json``, so the
ROADMAP's per-cell job weighting can consume it directly.

Durations come from the ``duration`` column every trial now records;
rows written before that column existed carry 0 and are excluded from
the wall-clock statistics (but still counted as trials).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # import cycle guard: engines import this package
    from repro.orchestration.store import TrialStore

__all__ = ["REPORT_SCHEMA", "build_report", "render_report"]

#: Schema tag for the aggregated report (bump on breaking shape changes).
REPORT_SCHEMA = "repro-telemetry-report/1"


def _params_label(spec_json: str) -> str:
    try:
        pairs = json.loads(spec_json).get("params", [])
    except (ValueError, AttributeError):
        return "-"
    if not pairs:
        return "-"
    return ", ".join(f"{key}={value}" for key, value in pairs)


def _percentiles(values: list[float]) -> dict[str, float]:
    data = np.asarray(values, dtype=np.float64)
    return {
        "mean": float(data.mean()),
        "p50": float(np.percentile(data, 50)),
        "p95": float(np.percentile(data, 95)),
        "min": float(data.min()),
        "max": float(data.max()),
    }


def _cache_hit_rate(summaries: list[dict]) -> float | None:
    """Pooled cache hit rate across the cell's stored counter summaries."""
    hits = 0
    lookups = 0
    for summary in summaries:
        cache = summary.get("cache")
        if not isinstance(cache, dict):
            continue
        hits += int(cache.get("hits", 0))
        lookups += sum(
            int(cache.get(key, 0)) for key in ("hits", "misses", "bypasses")
        )
    return hits / lookups if lookups else None


def build_report(store: "TrialStore") -> dict[str, Any]:
    """Per-cell duration/throughput/cache profile of everything stored."""
    cells: dict[tuple, dict[str, Any]] = {}
    for row in store.rows():
        key = (
            row["protocol"],
            _params_label(row["spec_json"]),
            row["n"],
            row["engine"],
        )
        cell = cells.setdefault(
            key,
            {
                "trials": 0,
                "timed_trials": 0,
                "durations": [],
                "rates": [],
                "steps": [],
                "summaries": [],
            },
        )
        cell["trials"] += 1
        cell["steps"].append(float(row["steps"]))
        duration = float(row["duration"])
        if duration > 0:
            cell["timed_trials"] += 1
            cell["durations"].append(duration)
            cell["rates"].append(row["steps"] / duration)
        if row["telemetry"]:
            try:
                cell["summaries"].append(json.loads(row["telemetry"]))
            except ValueError:
                pass
    records = []
    for (protocol, params, n, engine), cell in sorted(cells.items()):
        record: dict[str, Any] = {
            "protocol": protocol,
            "params": params,
            "n": n,
            "engine": engine,
            "trials": cell["trials"],
            "timed_trials": cell["timed_trials"],
            "steps": _percentiles(cell["steps"]),
        }
        if cell["durations"]:
            record["duration_sec"] = _percentiles(cell["durations"])
            record["total_duration_sec"] = float(sum(cell["durations"]))
            record["steps_per_sec"] = _percentiles(cell["rates"])
        hit_rate = _cache_hit_rate(cell["summaries"])
        if hit_rate is not None:
            record["cache_hit_rate"] = hit_rate
        records.append(record)
    return {
        "schema": REPORT_SCHEMA,
        "store": store.path,
        "trials": sum(record["trials"] for record in records),
        "cells": records,
    }


def render_report(report: dict[str, Any]) -> str:
    """Machine-readable rendering (JSON, stable key order)."""
    return json.dumps(report, indent=2, sort_keys=True)
