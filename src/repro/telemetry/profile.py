"""Block-level hot-path profiles: per-stage wall-clock accumulation.

A :class:`StageProfile` accumulates wall-clock per named engine stage —
``sample`` / ``apply`` / ``detect`` / ``commit`` in the block engines,
``sweep`` / ``retire`` in the ensemble, ``kernel_fill`` for pair-table
fills — behind the ``REPRO_TELEMETRY`` gate: disabled profiles hand
out a shared no-op span (the :class:`~repro.telemetry.core.PhaseTimer`
pattern), so the off path pays two method calls per block and reads no
clock.

Totals leave the process as a ``profile`` event through the JSONL sink
when a trial's stabilization loop finishes; ``repro telemetry
profile`` aggregates those events into the per-(engine, protocol, n)
stage-cost table that names the lowering targets for the ROADMAP's
native-backend item.

When a tracer is attached (``profile.tracer``), every stage span is
also emitted as a trace span — one instrumentation site serves both
the aggregate profile and the Perfetto timeline.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Iterable

from repro.telemetry.sink import make_sink

__all__ = [
    "DISABLED",
    "StageProfile",
    "aggregate_profiles",
    "emit_profile",
    "load_profile_records",
    "render_profile_table",
    "top_stages",
]


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


class _StageSpan:
    __slots__ = ("profile", "name", "_start", "_trace")

    def __init__(self, profile: "StageProfile", name: str) -> None:
        self.profile = profile
        self.name = name

    def __enter__(self) -> "_StageSpan":
        tracer = self.profile.tracer
        if tracer is not None and tracer.emitted >= tracer.limit:
            # Past the stage-span cap: count the drop here and skip the
            # span entirely (object, clock reads, stack bookkeeping) so
            # long runs degrade to plain profile cost, not capped-emit
            # cost.
            tracer.dropped += 1
            tracer = None
        self._trace = (
            tracer.span(self.name, cat="stage").__enter__()
            if tracer is not None
            else None
        )
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = perf_counter() - self._start
        profile = self.profile
        profile.seconds[self.name] = (
            profile.seconds.get(self.name, 0.0) + elapsed
        )
        profile.calls[self.name] = profile.calls.get(self.name, 0) + 1
        if self._trace is not None:
            self._trace.__exit__(*exc)
        return False


class StageProfile:
    """Per-stage wall-clock totals with a free disabled path."""

    __slots__ = ("enabled", "seconds", "calls", "tracer")

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.tracer = None

    def stage(self, name: str):
        if not self.enabled:
            return _NULL
        return _StageSpan(self, name)

    def event(
        self, engine: str, protocol: str, n: int, seed, steps: int
    ) -> dict | None:
        """The ``profile`` sink event for one finished trial."""
        if not self.seconds:
            return None
        return {
            "event": "profile",
            "engine": engine,
            "protocol": protocol,
            "n": n,
            "seed": seed,
            "steps": steps,
            "stages": {
                name: {
                    "seconds": round(seconds, 9),
                    "calls": self.calls.get(name, 0),
                }
                for name, seconds in sorted(self.seconds.items())
            },
        }


#: Shared disabled profile: lets hot-path holders (the kernel cache)
#: keep an unconditional ``with self.profile.stage(...)`` site.
DISABLED = StageProfile(enabled=False)


def emit_profile(
    profile: StageProfile | None,
    engine: str,
    protocol: str,
    n: int,
    seed,
    steps: int,
    sink=None,
) -> None:
    """Send a trial's stage totals to the event sink, if any."""
    if profile is None or not profile.enabled or not profile.seconds:
        return
    if sink is None:
        sink = make_sink()
        if sink.path is None:
            return
    event = profile.event(engine, protocol, n, seed, steps)
    if event is not None:
        sink.emit(event)


# ----------------------------------------------------------------------
# Aggregation (repro telemetry profile)
# ----------------------------------------------------------------------


def aggregate_profiles(events: Iterable[dict]) -> list[dict]:
    """Fold ``profile`` events into per-(engine, protocol, n) records.

    Each record carries summed per-stage seconds/calls over every trial
    of the cell, the stage's share of the cell's profiled time, and the
    stages sorted most-expensive first — the lowering-target ranking.
    """
    cells: dict[tuple[str, str, int], dict] = {}
    for event in events:
        if event.get("event") != "profile":
            continue
        stages = event.get("stages")
        if not isinstance(stages, dict):
            continue
        key = (
            str(event.get("engine", "?")),
            str(event.get("protocol", "?")),
            int(event.get("n", 0)),
        )
        cell = cells.setdefault(
            key, {"trials": 0, "steps": 0, "seconds": {}, "calls": {}}
        )
        cell["trials"] += 1
        cell["steps"] += int(event.get("steps", 0))
        for name, entry in stages.items():
            cell["seconds"][name] = cell["seconds"].get(name, 0.0) + float(
                entry.get("seconds", 0.0)
            )
            cell["calls"][name] = cell["calls"].get(name, 0) + int(
                entry.get("calls", 0)
            )
    records = []
    for (engine, protocol, n), cell in sorted(cells.items()):
        total = sum(cell["seconds"].values())
        stages = [
            {
                "stage": name,
                "seconds": seconds,
                "calls": cell["calls"].get(name, 0),
                "share": seconds / total if total > 0 else 0.0,
            }
            for name, seconds in sorted(
                cell["seconds"].items(), key=lambda item: -item[1]
            )
        ]
        records.append(
            {
                "engine": engine,
                "protocol": protocol,
                "n": n,
                "trials": cell["trials"],
                "steps": cell["steps"],
                "profiled_seconds": total,
                "stages": stages,
            }
        )
    return records


def top_stages(record: dict, k: int = 2) -> list[str]:
    """Names of the ``k`` most expensive stages of one aggregate cell."""
    return [stage["stage"] for stage in record["stages"][:k]]


def render_profile_table(records: list[dict]) -> str:
    """Plain-text stage-cost table for ``repro telemetry profile``."""
    if not records:
        return "no profile events found (run with REPRO_TELEMETRY_EVENTS set)"
    lines = []
    for record in records:
        lines.append(
            f"{record['engine']} {record['protocol']} n={record['n']:,} "
            f"({record['trials']} trial{'s' if record['trials'] != 1 else ''}, "
            f"{record['steps']:,} steps, "
            f"{record['profiled_seconds']:.3f}s profiled)"
        )
        for stage in record["stages"]:
            lines.append(
                f"  {stage['stage']:>12s}  {stage['seconds']:10.4f}s  "
                f"{stage['share']:6.1%}  ({stage['calls']:,} calls)"
            )
    return "\n".join(lines)


def load_profile_records(path: str) -> list[dict]:
    """Aggregate records straight from a JSONL event file path."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                records.append(event)
    return aggregate_profiles(records)
