"""Near-zero-overhead instrumentation for the simulation engines.

The telemetry layer's moving parts, all of them optional at run time:

* :mod:`repro.telemetry.core` — the enablement switch
  (``REPRO_TELEMETRY``), counter/gauge/phase-timer primitives, and
  :class:`TrialTelemetry`, the canonical-JSON per-trial summary every
  engine can produce via ``telemetry_summary()``;
* :mod:`repro.telemetry.sink` — a JSONL event sink
  (``REPRO_TELEMETRY_EVENTS``, line-atomic appends, ``{pid}``
  placeholder for per-worker files) plus the stderr echo long-running
  trials use for visibility;
* :mod:`repro.telemetry.heartbeat` — the periodic progress emitter
  (steps so far, steps/sec, ETA to the step budget) threaded through
  every engine's ``run_until_stabilized`` loop;
* :mod:`repro.telemetry.trace` — hierarchical span tracing
  (``REPRO_TRACE``): campaign → cell → trial → engine-stage spans as
  sink events, exportable to Chrome trace-event JSON for Perfetto via
  ``repro trace export``;
* :mod:`repro.telemetry.profile` — per-stage wall-clock profiles
  behind the telemetry gate, aggregated into a stage-cost table by
  ``repro telemetry profile``;
* :mod:`repro.telemetry.probe` — protocol phase probes: deterministic,
  always-on phase-occupancy time series derived from state counts,
  persisted to the trial store's ``phases`` column and rendered by
  ``repro telemetry phases``.

Design rule (see DESIGN.md Sections 8-9): anything *wall-clock shaped*
— heartbeats, timers, spans, profiles, event emission — is gated
behind the enablement switch and costs one branch per block when off;
anything *deterministic* — the counters in the store's ``telemetry``
column, the phase series in ``phases`` — is collected unconditionally,
so stored rows are byte-identical whether telemetry is on or off.
"""

from repro.telemetry.core import (
    TELEMETRY_ENV,
    Counter,
    Gauge,
    PhaseTimer,
    TrialTelemetry,
    telemetry_enabled,
    trial_telemetry_json,
)
from repro.telemetry.heartbeat import (
    HEARTBEAT_SECS_ENV,
    Heartbeat,
    make_heartbeat,
)
from repro.telemetry.probe import (
    PhaseProbe,
    PhaseSeries,
    make_phase_series,
    phase_probe_for,
    poll_mask,
    render_phases,
)
from repro.telemetry.profile import (
    StageProfile,
    aggregate_profiles,
    emit_profile,
    render_profile_table,
)
from repro.telemetry.report import build_report, render_report
from repro.telemetry.sink import EVENTS_ENV, EventSink, make_sink
from repro.telemetry.trace import (
    TRACE_ENV,
    Tracer,
    chrome_trace_events,
    make_tracer,
    tracing_enabled,
    validate_chrome_trace,
)

__all__ = [
    "TELEMETRY_ENV",
    "EVENTS_ENV",
    "HEARTBEAT_SECS_ENV",
    "TRACE_ENV",
    "Counter",
    "Gauge",
    "PhaseTimer",
    "PhaseProbe",
    "PhaseSeries",
    "StageProfile",
    "TrialTelemetry",
    "Heartbeat",
    "EventSink",
    "Tracer",
    "aggregate_profiles",
    "build_report",
    "chrome_trace_events",
    "emit_profile",
    "make_heartbeat",
    "make_phase_series",
    "make_sink",
    "make_tracer",
    "phase_probe_for",
    "poll_mask",
    "render_phases",
    "render_profile_table",
    "render_report",
    "telemetry_enabled",
    "tracing_enabled",
    "trial_telemetry_json",
    "validate_chrome_trace",
]
