"""Near-zero-overhead instrumentation for the simulation engines.

The telemetry layer has three moving parts, all of them optional at run
time:

* :mod:`repro.telemetry.core` — the enablement switch
  (``REPRO_TELEMETRY``), counter/gauge/phase-timer primitives, and
  :class:`TrialTelemetry`, the canonical-JSON per-trial summary every
  engine can produce via ``telemetry_summary()``;
* :mod:`repro.telemetry.sink` — a JSONL event sink
  (``REPRO_TELEMETRY_EVENTS``) plus the stderr echo long-running trials
  use for visibility;
* :mod:`repro.telemetry.heartbeat` — the periodic progress emitter
  (steps so far, steps/sec, ETA to the step budget) threaded through
  every engine's ``run_until_stabilized`` loop.

Design rule (see DESIGN.md Section 8): anything *wall-clock shaped* —
heartbeats, timers, event emission — is gated behind the enablement
switch and costs one branch per block when off; anything *deterministic*
— the counters that land in the trial store's ``telemetry`` column — is
collected unconditionally, so stored rows are byte-identical whether
telemetry is on or off.
"""

from repro.telemetry.core import (
    TELEMETRY_ENV,
    Counter,
    Gauge,
    PhaseTimer,
    TrialTelemetry,
    telemetry_enabled,
    trial_telemetry_json,
)
from repro.telemetry.heartbeat import (
    HEARTBEAT_SECS_ENV,
    Heartbeat,
    make_heartbeat,
)
from repro.telemetry.report import build_report, render_report
from repro.telemetry.sink import EVENTS_ENV, EventSink, make_sink

__all__ = [
    "TELEMETRY_ENV",
    "EVENTS_ENV",
    "HEARTBEAT_SECS_ENV",
    "Counter",
    "Gauge",
    "PhaseTimer",
    "TrialTelemetry",
    "Heartbeat",
    "EventSink",
    "build_report",
    "make_heartbeat",
    "make_sink",
    "render_report",
    "telemetry_enabled",
    "trial_telemetry_json",
]
