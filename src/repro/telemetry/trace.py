"""Hierarchical span tracing over the JSONL event sink.

Spans follow the orchestration hierarchy — campaign → cell → trial →
engine stage (sample/apply/detect/commit in the block engines,
sweep/retire in the ensemble, pair-table fills in the kernels) — and
are emitted as ordinary sink events, one JSON line per *closed* span:

``{"event": "span", "name": ..., "cat": ..., "span_id": "pid-k",
"parent": ..., "pid": ..., "ts": <epoch secs>, "dur": <secs>, ...}``

Tracing is doubly gated: it exists only when telemetry is enabled
*and* ``REPRO_TRACE`` is truthy (the PR-6 contract — wall-clock
machinery must cost nothing when off), and it needs an event sink
(``REPRO_TELEMETRY_EVENTS``) to write to.  Span ids are
``"<pid>-<counter>"`` with a process-global monotone counter, so a
killed-and-resumed campaign (a new pid) can append to the same event
file without ever reusing an id.

``repro trace export`` converts an event file to the Chrome
trace-event format (``{"traceEvents": [...]}``) that Perfetto and
``chrome://tracing`` open directly: closed spans become complete
(``"ph": "X"``) events, heartbeats become counter (``"ph": "C"``)
tracks.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Iterable

from repro.telemetry.core import telemetry_enabled
from repro.telemetry.sink import make_sink

__all__ = [
    "DEFAULT_SPAN_LIMIT",
    "SPAN_LIMIT_ENV",
    "TRACE_ENV",
    "Tracer",
    "chrome_trace_events",
    "load_events",
    "make_tracer",
    "tracing_enabled",
    "validate_chrome_trace",
]

#: Master switch for span emission (in addition to ``REPRO_TELEMETRY``).
TRACE_ENV = "REPRO_TRACE"

#: Cap on emitted *stage* spans per process (``REPRO_TRACE_SPANS``
#: overrides).  A production superbatch trial closes four stage spans
#: per block for tens of thousands of blocks; past the cap the tracer
#: counts drops instead of writing, so traces stay loadable and the
#: hot path stays bounded.  Trial/cell/campaign spans always emit.
DEFAULT_SPAN_LIMIT = 20_000
SPAN_LIMIT_ENV = "REPRO_TRACE_SPANS"

_FALSY = {"", "0", "false", "no", "off"}

#: Process-global id source: ids stay unique across every tracer (and
#: every resume — the pid prefix separates processes).
_SPAN_IDS = itertools.count(1)

#: Process-global open-span stack.  The campaign/cell spans (opened by
#: the orchestration layer's tracer) and the trial/stage spans (opened
#: by each engine's own tracer) must nest into one hierarchy, so parent
#: resolution reads a shared stack rather than a per-tracer one.
#: Engines are single-threaded; ``fork``-started workers inherit the
#: parent's open campaign span, which is exactly the parent their trial
#: spans should name.
_OPEN_STACK: list[str] = []


def tracing_enabled() -> bool:
    """Whether span tracing is requested (telemetry gate included)."""
    if not telemetry_enabled():
        return False
    return os.environ.get(TRACE_ENV, "0").strip().lower() not in _FALSY


def _span_limit() -> int:
    raw = os.environ.get(SPAN_LIMIT_ENV)
    if raw is None:
        return DEFAULT_SPAN_LIMIT
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SPAN_LIMIT


class _TraceSpan:
    """Context manager for one span; emits on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "span_id", "parent", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_TraceSpan":
        tracer = self.tracer
        self.parent = _OPEN_STACK[-1] if _OPEN_STACK else None
        self.span_id = f"{tracer.pid}-{next(_SPAN_IDS)}"
        _OPEN_STACK.append(self.span_id)
        self._start = time.time()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.time() - self._start
        if _OPEN_STACK and _OPEN_STACK[-1] == self.span_id:
            _OPEN_STACK.pop()
        self.tracer._emit(self, duration)


class Tracer:
    """Emits closed spans through a sink, tracking the open-span stack.

    Nesting is the process-global :data:`_OPEN_STACK` (engines are
    single-threaded), so a trial span opened around an engine loop
    becomes the parent of every stage span the loop closes — even when
    the two were opened through different tracer instances, as happens
    between the orchestration layer and the engines.
    """

    __slots__ = ("sink", "limit", "emitted", "dropped", "pid")

    def __init__(self, sink, limit: int | None = None) -> None:
        self.sink = sink
        self.limit = _span_limit() if limit is None else limit
        self.emitted = 0
        self.dropped = 0
        self.pid = os.getpid()

    def span(self, name: str, cat: str = "engine", **args) -> _TraceSpan:
        return _TraceSpan(self, name, cat, args)

    def _emit(self, span: _TraceSpan, duration: float) -> None:
        if span.cat == "stage" and self.emitted >= self.limit:
            self.dropped += 1
            return
        event = {
            "event": "span",
            "name": span.name,
            "cat": span.cat,
            "span_id": span.span_id,
            "parent": span.parent,
            "pid": self.pid,
            "ts": round(span._start, 6),
            "dur": round(duration, 9),
        }
        if span.args:
            event.update(span.args)
        if self.dropped and span.cat != "stage":
            event["dropped_stage_spans"] = self.dropped
        self.emitted += 1
        self.sink.emit(event)


def make_tracer(sink=None) -> Tracer | None:
    """A tracer when tracing is on and has somewhere to write.

    With the default environment sink, tracing without
    ``REPRO_TELEMETRY_EVENTS`` would emit into the void — return
    ``None`` so the hot paths keep their tracer-free branch.
    """
    if not tracing_enabled():
        return None
    if sink is None:
        sink = make_sink()
        if sink.path is None:
            return None
    return Tracer(sink)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------

#: Span-event keys that map to top-level Chrome fields; everything else
#: lands in ``args`` so Perfetto shows it on the slice.
_SPAN_CORE_KEYS = frozenset(
    {"event", "name", "cat", "pid", "ts", "dur"}
)


def load_events(path: str) -> list[dict]:
    """Parse a JSONL event file, skipping blank and malformed lines."""
    events = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def chrome_trace_events(events: Iterable[dict]) -> list[dict]:
    """Convert sink events to Chrome trace-event dicts.

    Spans become complete events (``ph: "X"``, microsecond ts/dur);
    heartbeats that carry a wall-clock ``ts`` become ``steps_per_sec``
    counter events.  Other event kinds (profiles) have no timeline
    shape and are skipped.
    """
    out = []
    for event in events:
        kind = event.get("event")
        if kind == "span" and "ts" in event and "dur" in event:
            args = {
                key: value
                for key, value in event.items()
                if key not in _SPAN_CORE_KEYS
            }
            out.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "?")),
                    "cat": str(event.get("cat", "engine")),
                    "pid": int(event.get("pid", 0)),
                    "tid": 0,
                    "ts": int(round(float(event["ts"]) * 1e6)),
                    "dur": max(1, int(round(float(event["dur"]) * 1e6))),
                    "args": args,
                }
            )
        elif kind == "heartbeat" and "ts" in event:
            out.append(
                {
                    "ph": "C",
                    "name": "steps_per_sec",
                    "pid": int(event.get("pid", 0)),
                    "tid": 0,
                    "ts": int(round(float(event["ts"]) * 1e6)),
                    "args": {
                        "steps_per_sec": float(event.get("steps_per_sec", 0.0))
                    },
                }
            )
    return out


def validate_chrome_trace(payload) -> list[str]:
    """Schema errors for a Chrome trace-event JSON object (empty = valid).

    Checks the subset of the trace-event format the export produces
    and Perfetto requires: a ``traceEvents`` list whose members carry a
    phase, and whose complete events carry numeric ``pid``/``tid``/
    ``ts``/``dur`` plus a name.
    """
    errors = []
    if not isinstance(payload, dict):
        return ["trace payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["trace payload lacks a traceEvents list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"traceEvents[{index}] is not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            errors.append(f"traceEvents[{index}] lacks a ph phase")
            continue
        if phase == "X":
            for key in ("ts", "dur", "pid", "tid"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(
                        f"traceEvents[{index}] ({event.get('name')!r}) "
                        f"lacks numeric {key}"
                    )
            if not event.get("name"):
                errors.append(f"traceEvents[{index}] lacks a name")
        elif phase == "C":
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"traceEvents[{index}] counter lacks numeric ts")
            if not isinstance(event.get("args"), dict):
                errors.append(f"traceEvents[{index}] counter lacks args")
    return errors
