"""Instrumentation primitives and the per-trial telemetry summary.

The enablement switch is read at *use* time, not import time, so tests
(and CI jobs) can flip ``REPRO_TELEMETRY`` per process without reloading
modules.  Disabled primitives compile down to a single attribute check
per call — they are safe to leave wired into warm (per-block) paths.

Engine *hot* paths never call these primitives at all: the counters that
feed the trial store's ``telemetry`` column ride on the engines' own
plain-int accounting (``BatchStats``, ``CacheStats``, the new null/
resolve tallies), which is collected unconditionally precisely so that
stored rows do not depend on the telemetry switch.  See DESIGN.md
Section 8 for the full overhead argument.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

__all__ = [
    "TELEMETRY_ENV",
    "Counter",
    "Gauge",
    "PhaseTimer",
    "TrialTelemetry",
    "cache_summary",
    "telemetry_enabled",
    "trial_telemetry_json",
]

#: Environment switch: ``0``/``false``/``off``/``no`` disables telemetry
#: (heartbeats, sinks, timers); anything else — including unset — leaves
#: it enabled.  Engines also accept a per-instance ``telemetry`` ctor
#: flag that overrides the environment.
TELEMETRY_ENV = "REPRO_TELEMETRY"

_FALSY = frozenset({"0", "false", "off", "no", ""})


def telemetry_enabled(override: bool | None = None) -> bool:
    """Whether wall-clock telemetry (heartbeats, sinks, timers) is on.

    ``override`` short-circuits the environment — the engines' ctor flag
    lands here — so callers resolve the switch exactly once per trial.
    """
    if override is not None:
        return bool(override)
    raw = os.environ.get(TELEMETRY_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSY


class Counter:
    """A named monotone tally; one branch per ``add`` when disabled."""

    __slots__ = ("name", "value", "enabled")

    def __init__(self, name: str, enabled: bool = True) -> None:
        self.name = name
        self.value = 0
        self.enabled = enabled

    def add(self, amount: int = 1) -> None:
        if self.enabled:
            self.value += amount


class Gauge:
    """A named last-value-wins sample; one branch per ``set`` when disabled."""

    __slots__ = ("name", "value", "enabled")

    def __init__(self, name: str, enabled: bool = True) -> None:
        self.name = name
        self.value: float = 0.0
        self.enabled = enabled

    def set(self, value: float) -> None:
        if self.enabled:
            self.value = value


class PhaseTimer:
    """Accumulates wall-clock spans per phase name.

    Use as a context-manager factory::

        timer = PhaseTimer(enabled=telemetry_enabled())
        with timer.phase("sample"):
            ...
        timer.totals  # {"sample": 0.0123}

    Disabled timers never touch the clock: ``phase`` returns a shared
    no-op context manager, so the cost is one branch per entered phase.
    """

    __slots__ = ("totals", "enabled")

    class _Span:
        __slots__ = ("_timer", "_name", "_start")

        def __init__(self, timer: "PhaseTimer", name: str) -> None:
            self._timer = timer
            self._name = name

        def __enter__(self) -> "PhaseTimer._Span":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._start
            totals = self._timer.totals
            totals[self._name] = totals.get(self._name, 0.0) + elapsed

    class _NullSpan:
        __slots__ = ()

        def __enter__(self) -> "PhaseTimer._NullSpan":
            return self

        def __exit__(self, *exc_info: object) -> None:
            return None

    _NULL = _NullSpan()

    def __init__(self, enabled: bool = True) -> None:
        self.totals: dict[str, float] = {}
        self.enabled = enabled

    def phase(self, name: str):
        if not self.enabled:
            return self._NULL
        return self._Span(self, name)


class TrialTelemetry:
    """One trial's structured counter summary, canonically serialized.

    Wraps the plain mapping an engine's ``telemetry_summary()`` returns
    and fixes its byte representation: sorted keys, compact separators.
    Two runs that collect the same counters therefore serialize to the
    same bytes — the property the store-row neutrality tests pin.
    """

    __slots__ = ("data",)

    def __init__(self, data: dict[str, Any]) -> None:
        self.data = data

    @classmethod
    def capture(cls, sim: object) -> "TrialTelemetry | None":
        """Summary of ``sim``, or ``None`` for engines that expose none."""
        summary = getattr(sim, "telemetry_summary", None)
        if summary is None:
            return None
        return cls(summary())

    @classmethod
    def from_json(cls, payload: str) -> "TrialTelemetry":
        return cls(json.loads(payload))

    def to_json(self) -> str:
        return json.dumps(self.data, sort_keys=True, separators=(",", ":"))


def cache_summary(stats: object) -> dict[str, int]:
    """Integer view of a transition cache's ``CacheStats`` counters.

    Counts only, no derived rates: integers serialize identically across
    platforms, which keeps the stored telemetry JSON byte-stable.
    """
    return {
        "hits": int(getattr(stats, "hits", 0)),
        "misses": int(getattr(stats, "misses", 0)),
        "bypasses": int(getattr(stats, "bypasses", 0)),
        "dense_hits": int(getattr(stats, "dense_hits", 0)),
    }


def trial_telemetry_json(sim: object) -> str | None:
    """Canonical telemetry JSON for a finished simulator, or ``None``.

    The deterministic-counter summary is collected *unconditionally* —
    the ``REPRO_TELEMETRY`` switch gates wall-clock machinery only — so
    the string stored per trial never depends on the switch.
    """
    captured = TrialTelemetry.capture(sim)
    return None if captured is None else captured.to_json()
