"""JSONL event sink for telemetry events.

Events are single-line JSON objects appended to the file named by
``REPRO_TELEMETRY_EVENTS``.  The sink opens, appends, and closes per
emission: heartbeats arrive a few times per second at most, worker
processes and ensemble lanes interleave safely (single ``write`` of one
line, append mode), and a crash never loses buffered events.

Heartbeat events additionally echo one human-readable line to stderr —
that is what makes a long-running ``repro run`` visibly alive even when
no event file is configured.  Set ``REPRO_TELEMETRY_QUIET=1`` to keep
the JSONL stream without the stderr echo (CI logs under ``tee``).
"""

from __future__ import annotations

import json
import os
import sys

__all__ = ["EVENTS_ENV", "QUIET_ENV", "EventSink", "make_sink"]

#: Path the JSONL event stream appends to; unset means no event file.
EVENTS_ENV = "REPRO_TELEMETRY_EVENTS"

#: Set to suppress the stderr echo of heartbeat events.
QUIET_ENV = "REPRO_TELEMETRY_QUIET"


class EventSink:
    """Append telemetry events as JSON lines; optionally echo to stderr."""

    __slots__ = ("path", "echo")

    def __init__(self, path: str | None, echo: bool = True) -> None:
        self.path = path
        self.echo = echo

    def emit(self, event: dict) -> None:
        """Write one event; I/O failures are reported once, never raised.

        Telemetry must not be able to kill a multi-hour trial over a
        full disk or a bad path, so emission errors degrade to a single
        stderr warning and the sink disables its file output.
        """
        if self.path is not None:
            line = json.dumps(event, sort_keys=True, separators=(",", ":"))
            try:
                with open(self.path, "a", encoding="utf-8") as stream:
                    stream.write(line + "\n")
            except OSError as exc:
                print(
                    f"telemetry: cannot append to {self.path!r} ({exc}); "
                    "event file disabled",
                    file=sys.stderr,
                    flush=True,
                )
                self.path = None
        if self.echo and event.get("event") == "heartbeat":
            print(_heartbeat_line(event), file=sys.stderr, flush=True)


def _heartbeat_line(event: dict) -> str:
    eta = event.get("eta_sec")
    eta_text = f", eta {eta:.0f}s to budget" if eta is not None else ""
    return (
        f"heartbeat {event.get('protocol')} n={event.get('n')} "
        f"[{event.get('engine')}]: {event.get('steps'):,} steps in "
        f"{event.get('elapsed', 0.0):.1f}s "
        f"({event.get('steps_per_sec', 0.0):,.0f} steps/s{eta_text})"
    )


def make_sink() -> EventSink:
    """The process-wide sink configuration, resolved from the environment."""
    return EventSink(
        path=os.environ.get(EVENTS_ENV) or None,
        echo=not os.environ.get(QUIET_ENV),
    )
