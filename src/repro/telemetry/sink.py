"""JSONL event sink for telemetry events.

Events are single-line JSON objects appended to the file named by
``REPRO_TELEMETRY_EVENTS``.  The sink holds one raw (unbuffered)
append-mode handle, opened lazily on first emission, and each event is
a **single ``write()`` of a full line** — on POSIX, ``O_APPEND``
writes are atomic at these sizes, so worker processes and ensemble
lanes pointing at the same path interleave whole lines, never
fragments.  A ``{pid}`` placeholder in the path expands to the
emitting process id for per-worker files
(``REPRO_TELEMETRY_EVENTS=events-{pid}.jsonl``).

Heartbeat events additionally echo one human-readable line to stderr —
that is what makes a long-running ``repro run`` visibly alive even when
no event file is configured.  Set ``REPRO_TELEMETRY_QUIET=1`` to keep
the JSONL stream without the stderr echo (CI logs under ``tee``).
"""

from __future__ import annotations

import json
import os
import sys

__all__ = ["EVENTS_ENV", "QUIET_ENV", "EventSink", "make_sink"]

#: Path the JSONL event stream appends to; unset means no event file.
#: A ``{pid}`` placeholder expands to the emitting process id.
EVENTS_ENV = "REPRO_TELEMETRY_EVENTS"

#: Set to suppress the stderr echo of heartbeat events.
QUIET_ENV = "REPRO_TELEMETRY_QUIET"


class EventSink:
    """Append telemetry events as JSON lines; optionally echo to stderr."""

    __slots__ = ("path", "echo", "_stream")

    def __init__(self, path: str | None, echo: bool = True) -> None:
        if path is not None and "{pid}" in path:
            path = path.replace("{pid}", str(os.getpid()))
        self.path = path
        self.echo = echo
        self._stream = None

    def emit(self, event: dict) -> None:
        """Write one event; I/O failures are reported once, never raised.

        Telemetry must not be able to kill a multi-hour trial over a
        full disk or a bad path, so emission errors degrade to a single
        stderr warning and the sink disables its file output.
        """
        if self.path is not None:
            line = json.dumps(event, sort_keys=True, separators=(",", ":"))
            try:
                if self._stream is None:
                    # buffering=0 on a binary handle: every write() below
                    # is one OS-level append of the complete line.
                    self._stream = open(self.path, "ab", buffering=0)
                self._stream.write((line + "\n").encode("utf-8"))
            except OSError as exc:
                print(
                    f"telemetry: cannot append to {self.path!r} ({exc}); "
                    "event file disabled",
                    file=sys.stderr,
                    flush=True,
                )
                self.path = None
                self.close()
        if self.echo and event.get("event") == "heartbeat":
            print(_heartbeat_line(event), file=sys.stderr, flush=True)

    def close(self) -> None:
        """Release the file handle (emission reopens on demand)."""
        stream, self._stream = self._stream, None
        if stream is not None:
            try:
                stream.close()
            except OSError:
                pass


def _heartbeat_line(event: dict) -> str:
    eta = event.get("eta_sec")
    eta_text = f", eta {eta:.0f}s to budget" if eta is not None else ""
    return (
        f"heartbeat {event.get('protocol')} n={event.get('n')} "
        f"[{event.get('engine')}]: {event.get('steps'):,} steps in "
        f"{event.get('elapsed', 0.0):.1f}s "
        f"({event.get('steps_per_sec', 0.0):,.0f} steps/s{eta_text})"
    )


def make_sink() -> EventSink:
    """The process-wide sink configuration, resolved from the environment."""
    return EventSink(
        path=os.environ.get(EVENTS_ENV) or None,
        echo=not os.environ.get(QUIET_ENV),
    )
