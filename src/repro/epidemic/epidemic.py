"""One-way epidemic (Section 2 of the paper).

Given an infinite interaction sequence ``gamma``, a sub-population
``V' ⊆ V`` and a root ``r ∈ V'``, the epidemic function ``I_{V',r,gamma}``
starts with only ``r`` infected; whenever an interaction involves an
infected agent, both of its participants *that belong to V'* become
infected.  One-way epidemic is the workhorse of the paper's analysis: the
propagation of maximum ``levelQ`` / ``rand`` / ``levelB`` values and of
colors are all epidemics, and Lemma 2 bounds their completion time.

This module provides the epidemic both as a standalone stochastic process
(fast, no protocol needed — used by experiment E3) and as a simulator hook
(used to observe epidemics inside live protocol runs), plus a two-state
max-propagation protocol for cross-validating the engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.engine.protocol import Protocol
from repro.engine.scheduler import RandomScheduler
from repro.errors import SimulationError

__all__ = [
    "EpidemicResult",
    "simulate_epidemic",
    "epidemic_on_schedule",
    "EpidemicTracker",
    "MaxPropagationProtocol",
]


@dataclass(frozen=True)
class EpidemicResult:
    """Outcome of a one-way epidemic run.

    ``completion_step`` is the step index at which the last member of the
    sub-population became infected (``None`` if the budget ran out first);
    ``infection_steps[v]`` is the step at which agent ``v`` became infected
    (``-1`` for agents never infected, including agents outside ``V'``).
    """

    n: int
    subpopulation_size: int
    completion_step: int | None
    infection_steps: tuple[int, ...]

    @property
    def completed(self) -> bool:
        return self.completion_step is not None

    def infected_count_at(self, step: int) -> int:
        """Number of infected agents after ``step`` steps."""
        return sum(1 for s in self.infection_steps if 0 <= s <= step)


def simulate_epidemic(
    n: int,
    root: int = 0,
    subpopulation: Iterable[int] | None = None,
    seed: int | None = None,
    max_steps: int | None = None,
) -> EpidemicResult:
    """Run a one-way epidemic under the uniformly random scheduler.

    This is the bare process ``I_{V',r,Gamma}`` — no protocol, no states —
    so it is fast enough to estimate tail probabilities for Lemma 2.
    """
    members = set(range(n)) if subpopulation is None else set(subpopulation)
    _validate(n, root, members)
    if max_steps is None:
        # Lemma 2 with t = n * ln(n / p): generous default budget.
        max_steps = int(2 * np.ceil(n / len(members)) * 40 * n * max(1, np.log(n)))
    scheduler = RandomScheduler(n, seed)
    return _run_epidemic(
        n, root, members, (scheduler.next_pair() for _ in range(max_steps))
    )


def epidemic_on_schedule(
    n: int,
    schedule: Sequence[tuple[int, int]],
    root: int = 0,
    subpopulation: Iterable[int] | None = None,
) -> EpidemicResult:
    """Run the epidemic on an explicit deterministic schedule ``gamma``."""
    members = set(range(n)) if subpopulation is None else set(subpopulation)
    _validate(n, root, members)
    return _run_epidemic(n, root, members, iter(schedule))


def _validate(n: int, root: int, members: set[int]) -> None:
    if not members:
        raise SimulationError("sub-population must be non-empty")
    if not members <= set(range(n)):
        raise SimulationError("sub-population contains agents outside 0..n-1")
    if root not in members:
        raise SimulationError(f"root {root} is not in the sub-population")


def _run_epidemic(
    n: int,
    root: int,
    members: set[int],
    pairs: Iterable[tuple[int, int]],
) -> EpidemicResult:
    infection_steps = [-1] * n
    infection_steps[root] = 0
    infected = bytearray(n)
    infected[root] = 1
    is_member = bytearray(n)
    for member in members:
        is_member[member] = 1
    remaining = len(members) - 1
    completion_step = 0 if remaining == 0 else None
    step = 0
    for u, v in pairs:
        step += 1
        if remaining == 0:
            break
        if infected[u] or infected[v]:
            for agent in (u, v):
                if is_member[agent] and not infected[agent]:
                    infected[agent] = 1
                    infection_steps[agent] = step
                    remaining -= 1
            if remaining == 0:
                completion_step = step
                break
    return EpidemicResult(
        n=n,
        subpopulation_size=len(members),
        completion_step=completion_step,
        infection_steps=tuple(infection_steps),
    )


class EpidemicTracker:
    """Simulator hook tracking ``I_{V',r,gamma}`` inside a live run.

    Attach to an :class:`~repro.engine.simulator.AgentSimulator` *before*
    running; the tracker follows the definition in Section 2 exactly and is
    independent of the protocol's own state updates — it only watches which
    agents interact.
    """

    def __init__(self, n: int, root: int, subpopulation: Iterable[int] | None = None):
        members = set(range(n)) if subpopulation is None else set(subpopulation)
        _validate(n, root, members)
        self.members = members
        self.infected: set[int] = {root}
        self.completion_step: int | None = (
            0 if len(members) == 1 else None
        )

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        if self.completion_step is not None:
            return
        infected = self.infected
        if u in infected or v in infected:
            if u in self.members:
                infected.add(u)
            if v in self.members:
                infected.add(v)
            if len(infected) == len(self.members):
                self.completion_step = sim.steps

    @property
    def complete(self) -> bool:
        return self.completion_step is not None


class MaxPropagationProtocol(Protocol):
    """Two-value protocol whose dynamics *are* a one-way epidemic.

    States are ``0`` and ``1``; interactions propagate ``1``.  Starting from
    a configuration with a single ``1``, the number of ``1``-agents follows
    exactly the epidemic process, which makes this protocol the natural
    cross-validation vehicle between the agent-based and multiset engines.
    """

    name = "max-propagation"

    def initial_state(self) -> int:
        return 0

    def transition(self, initiator: int, responder: int) -> tuple[int, int]:
        if initiator or responder:
            return 1, 1
        return 0, 0

    def output(self, state: int) -> str:
        return str(state)

    def state_bound(self) -> int:
        return 2

    def is_symmetric(self) -> bool:
        return True
