"""One-way epidemic primitive and the paper's probability bounds."""

from repro.epidemic.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    epidemic_steps_for_confidence,
    lemma2_failure_bound,
    lemma2_steps,
)
from repro.epidemic.epidemic import (
    EpidemicResult,
    EpidemicTracker,
    MaxPropagationProtocol,
    epidemic_on_schedule,
    simulate_epidemic,
)

__all__ = [
    "EpidemicResult",
    "EpidemicTracker",
    "MaxPropagationProtocol",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "epidemic_on_schedule",
    "epidemic_steps_for_confidence",
    "lemma2_failure_bound",
    "lemma2_steps",
    "simulate_epidemic",
]
