"""Executable forms of the paper's probability bounds.

* Lemma 1 — two Chernoff bounds for sums of independent Poisson trials
  ([MU05] Theorems 4.4/4.5).
* Lemma 2 — the sub-population epidemic tail bound:
  ``P(I_{V',r,Gamma}(2 * ceil(n/n') * t) != V') <= n * exp(-t / n)``.

These are used by experiments E3–E5 to compare measured tail frequencies
against the analytical guarantees, and by the protocol code to size step
budgets ("sufficiently long but Theta(log n) time").
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "lemma2_failure_bound",
    "lemma2_steps",
    "epidemic_steps_for_confidence",
]


def chernoff_upper_tail(delta: float, expectation: float) -> float:
    """Lemma 1, eq. (1): ``P(X >= (1+delta) E[X]) <= exp(-delta^2 E[X] / 3)``.

    Valid for ``0 <= delta <= 1``.
    """
    if not 0 <= delta <= 1:
        raise ParameterError(f"delta must be in [0, 1], got {delta}")
    if expectation < 0:
        raise ParameterError(f"expectation must be non-negative, got {expectation}")
    return math.exp(-delta * delta * expectation / 3)


def chernoff_lower_tail(delta: float, expectation: float) -> float:
    """Lemma 1, eq. (2): ``P(X <= (1-delta) E[X]) <= exp(-delta^2 E[X] / 2)``.

    Valid for ``0 < delta < 1``.
    """
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    if expectation < 0:
        raise ParameterError(f"expectation must be non-negative, got {expectation}")
    return math.exp(-delta * delta * expectation / 2)


def lemma2_steps(n: int, n_prime: int, t: float) -> int:
    """The step horizon ``2 * ceil(n / n') * t`` appearing in Lemma 2."""
    _validate_sizes(n, n_prime)
    if t < 0:
        raise ParameterError(f"t must be non-negative, got {t}")
    return int(2 * math.ceil(n / n_prime) * t)


def lemma2_failure_bound(n: int, n_prime: int, steps: int) -> float:
    """Lemma 2 as a function of a step budget.

    Inverts ``steps = 2 * ceil(n/n') * t`` and returns the bound
    ``min(1, n * exp(-t / n))`` on the probability that the epidemic in a
    sub-population of size ``n'`` is incomplete after ``steps`` steps.
    """
    _validate_sizes(n, n_prime)
    if steps < 0:
        raise ParameterError(f"steps must be non-negative, got {steps}")
    t = steps / (2 * math.ceil(n / n_prime))
    return min(1.0, n * math.exp(-t / n))


def epidemic_steps_for_confidence(
    n: int, n_prime: int, failure_probability: float
) -> int:
    """Smallest Lemma 2 horizon with failure bound <= ``failure_probability``.

    Solving ``n * exp(-t/n) <= p`` gives ``t >= n * ln(n / p)``; the
    returned step count is ``2 * ceil(n/n') * t`` for that ``t``.  This is
    the quantitative meaning of "sufficiently long but Theta(log n) parallel
    time" used throughout Section 3.
    """
    _validate_sizes(n, n_prime)
    if not 0 < failure_probability < 1:
        raise ParameterError(
            f"failure probability must be in (0, 1), got {failure_probability}"
        )
    t = n * math.log(n / failure_probability)
    return lemma2_steps(n, n_prime, math.ceil(t))


def _validate_sizes(n: int, n_prime: int) -> None:
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    if not 1 <= n_prime <= n:
        raise ParameterError(f"n' must be in 1..n, got n'={n_prime}, n={n}")
