"""Stabilization detection.

Leader election stabilizes when the population reaches a configuration in
``S_P``: exactly one agent outputs ``L`` and no schedule can change any
output thereafter (Section 2).  Two detectors cover the two regimes:

* :class:`MonotoneLeaderStabilization` — for protocols whose leader count
  is monotone non-increasing and always positive (every protocol in this
  library; see DESIGN.md Section 3).  For those, the first configuration
  with exactly one leader is already stable, so detection is an O(1)
  counter comparison.
* :class:`SilenceDetector` — protocol-agnostic: checks that no ordered pair
  of *present* states changes anything.  Cost is quadratic in the number of
  distinct present states, so it is meant to be polled sparsely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.engine.protocol import LEADER

__all__ = [
    "StabilizationDetector",
    "MonotoneLeaderStabilization",
    "SilenceDetector",
    "output_stable_forever",
]


class StabilizationDetector(ABC):
    """Predicate over a simulator, polled during a run."""

    @abstractmethod
    def check(self, sim) -> bool:
        """Whether the simulator's current configuration counts as stable."""


class MonotoneLeaderStabilization(StabilizationDetector):
    """Stable iff exactly ``target`` leaders exist (monotone protocols)."""

    def __init__(self, target: int = 1) -> None:
        self.target = target

    def check(self, sim) -> bool:
        return sim.output_counts.get(LEADER, 0) == self.target


class SilenceDetector(StabilizationDetector):
    """Stable iff no applicable transition changes any state.

    A configuration is *silent* when for every ordered pair of states
    ``(p, q)`` present in the configuration (with ``p == q`` requiring
    multiplicity at least 2), ``T(p, q) == (p, q)``.  Silence implies
    output stability; it is sufficient but not necessary, which is fine for
    the protocols here whose stable configurations are eventually silent
    only in their output-relevant components.
    """

    def check(self, sim) -> bool:
        counts = sim.state_id_counts()
        present = [sid for sid, count in counts.items() if count > 0]
        cache = sim.cache
        for sid0 in present:
            for sid1 in present:
                if sid0 == sid1 and counts[sid0] < 2:
                    continue
                if cache.apply(sid0, sid1) != (sid0, sid1):
                    return False
        return True


def output_stable_forever(sim) -> bool:
    """Exact check that no reachable successor changes any *output*.

    Explores the reachable configuration space from the simulator's current
    configuration by breadth-first search over configurations (as state
    multisets) and verifies the output vector never changes.  Exponential in
    general — only call this on tiny populations (n <= 6 or so) in tests.
    """
    protocol = sim.protocol
    interner = sim.interner

    def outputs_of(counts: tuple[tuple[int, int], ...]) -> tuple[tuple[str, int], ...]:
        tally: dict[str, int] = {}
        for sid, count in counts:
            symbol = protocol.output(interner.state_of(sid))
            tally[symbol] = tally.get(symbol, 0) + count
        return tuple(sorted(tally.items()))

    def canonical(counts: dict[int, int]) -> tuple[tuple[int, int], ...]:
        return tuple(sorted((sid, c) for sid, c in counts.items() if c > 0))

    start = canonical(sim.state_id_counts())
    target_outputs = outputs_of(start)
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        counts = dict(node)
        present = list(counts)
        for sid0 in present:
            for sid1 in present:
                if sid0 == sid1 and counts[sid0] < 2:
                    continue
                post0, post1 = sim.cache.apply(sid0, sid1)
                if (post0, post1) == (sid0, sid1):
                    continue
                successor = dict(counts)
                successor[sid0] -= 1
                successor[sid1] -= 1
                successor[post0] = successor.get(post0, 0) + 1
                successor[post1] = successor.get(post1, 0) + 1
                key = canonical(successor)
                if key in seen:
                    continue
                if outputs_of(key) != target_outputs:
                    return False
                seen.add(key)
                frontier.append(key)
    return True
