"""Count-based (multiset) simulation engine.

Agents in the population protocol model are anonymous, so a configuration
is fully described by the multiset of states — a map ``state -> count``.
:class:`MultisetSimulator` exploits this: it samples the ordered interaction
pair directly from the state counts (first the initiator's state with
probability proportional to its count, then the responder's state from the
remaining ``n - 1`` agents) using a Fenwick tree for ``O(log k)`` inverse-
CDF sampling, where ``k`` is the number of distinct states present.

Per-step cost is therefore independent of ``n``.  This is the engine that
makes the paper's large-``n`` stabilization sweeps (Theorem 1, Table 1)
tractable in pure Python — the known pain point of naive simulators.

The induced process on configurations is exactly the one induced by the
uniformly random scheduler on identified agents; the two engines agree in
distribution (tested statistically in ``tests/engine/test_engines_agree``).
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from typing import Callable

import numpy as np

from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    StabilizationDetector,
)
from repro.engine.fenwick import FenwickTree
from repro.engine.interner import StateInterner
from repro.engine.kernel import make_transition_cache
from repro.engine.protocol import LEADER, Protocol, State
from repro.errors import ConvergenceError, SimulationError
from repro.telemetry.core import cache_summary, telemetry_enabled
from repro.telemetry.heartbeat import make_heartbeat
from repro.telemetry.probe import make_phase_series, poll_mask as _poll_mask
from repro.telemetry.profile import StageProfile, emit_profile
from repro.telemetry.trace import make_tracer

__all__ = ["DRAW_BATCH_SIZE", "MultisetSimulator"]

#: Scheduler draws consumed from the generator per refill: first a block
#: of initiator tickets in ``[0, n)``, then responder tickets in
#: ``[0, n-1)``.  The ensemble engine replays exactly this consumption
#: pattern per lane, which is what makes its lanes bit-identical to solo
#: :class:`MultisetSimulator` runs — change it only in lockstep with
#: :mod:`repro.engine.ensemble`.
DRAW_BATCH_SIZE = 16384


class MultisetSimulator:
    """Execute a protocol on the multiset-of-states representation."""

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        cache_entries: int = 1 << 20,
        batch_size: int = DRAW_BATCH_SIZE,
        use_kernel: bool | None = None,
        telemetry: bool | None = None,
    ) -> None:
        if n < 2:
            raise SimulationError(f"population needs at least 2 agents, got n={n}")
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self._telemetry = telemetry
        #: Interactions that resolved to a no-op pair.  Counted
        #: unconditionally (one int add on the null branch) so the
        #: stored telemetry summary never depends on the telemetry
        #: switch — see DESIGN.md Section 8.
        self.null_steps = 0
        # Stage profile (gated) and phase series (deterministic tier,
        # always on): see DESIGN.md Section 9.  The scalar engine's only
        # profiled stage is the kernel cache's pair-table fill.
        self._profile = StageProfile(enabled=telemetry_enabled(telemetry))
        self.phase_series = make_phase_series(protocol, n)
        self.interner = StateInterner()
        self.cache = make_transition_cache(
            protocol, self.interner, cache_entries, use_kernel=use_kernel
        )
        if hasattr(self.cache, "profile"):
            self.cache.profile = self._profile
        self.steps = 0
        self._rng = np.random.default_rng(seed)
        self._batch_size = batch_size
        self._first_draws: list[int] = []
        self._second_draws: list[int] = []
        self._cursor = 0
        self._output_of_id: list[str] = []
        self._counts: dict[int, int] = {}
        self._fenwick = FenwickTree()
        initial_id = self.interner.intern(protocol.initial_state())
        self._counts[initial_id] = n
        self._fenwick.add(initial_id, n)
        self.output_counts: Counter[str] = Counter()
        self.output_counts[self._output_for(initial_id)] = n

    # ------------------------------------------------------------------
    # configuration access
    # ------------------------------------------------------------------

    @property
    def leader_count(self) -> int:
        """Number of agents currently outputting ``L``."""
        return self.output_counts.get(LEADER, 0)

    @property
    def parallel_time(self) -> float:
        """Steps executed divided by ``n``."""
        return self.steps / self.n

    def state_id_counts(self) -> Counter[int]:
        """Multiset of interned state ids currently present (a copy)."""
        return Counter(self._counts)

    def state_counts(self) -> Counter[State]:
        """Multiset of decoded states currently present."""
        state_of = self.interner.state_of
        return Counter({state_of(sid): c for sid, c in self._counts.items()})

    def count_of(self, state: State) -> int:
        """Number of agents currently in ``state``."""
        sid = self.interner.id_of(state)
        if sid is None:
            return 0
        return self._counts.get(sid, 0)

    def load_counts(self, counts: dict[State, int]) -> None:
        """Replace the configuration with an explicit state multiset."""
        total = sum(counts.values())
        if total != self.n:
            raise SimulationError(
                f"configuration counts sum to {total}, expected n={self.n}"
            )
        if any(count < 0 for count in counts.values()):
            raise SimulationError("configuration counts must be non-negative")
        for sid, count in list(self._counts.items()):
            self._fenwick.add(sid, -count)
        self._counts = {}
        for state, count in counts.items():
            if count == 0:
                continue
            sid = self.interner.intern(state)
            self._counts[sid] = self._counts.get(sid, 0) + count
            self._fenwick.add(sid, count)
        output_for = self._output_for
        self.output_counts = Counter()
        for sid, count in self._counts.items():
            self.output_counts[output_for(sid)] += count

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _output_for(self, sid: int) -> str:
        table = self._output_of_id
        if sid >= len(table):
            interner = self.interner
            output = self.protocol.output
            for missing in range(len(table), len(interner)):
                table.append(output(interner.state_of(missing)))
        return table[sid]

    def _refill_draws(self) -> None:
        size = self._batch_size
        self._first_draws = self._rng.integers(0, self.n, size=size).tolist()
        self._second_draws = self._rng.integers(0, self.n - 1, size=size).tolist()
        self._cursor = 0

    def step(self) -> tuple[int, int, int, int]:
        """Execute one interaction; returns (pre0, pre1, post0, post1) ids."""
        cursor = self._cursor
        if cursor >= len(self._first_draws):
            self._refill_draws()
            cursor = 0
        self._cursor = cursor + 1
        fenwick = self._fenwick
        # Initiator's state: weighted by count over all n agents.
        pre0 = fenwick.find(self._first_draws[cursor])
        # Responder's state: weighted over the remaining n - 1 agents.
        fenwick.add(pre0, -1)
        pre1 = fenwick.find(self._second_draws[cursor])
        post0, post1 = self.cache.apply(pre0, pre1)
        self.steps += 1
        if post0 == pre0 and post1 == pre1:
            self.null_steps += 1
            fenwick.add(pre0, 1)  # revert the temporary removal
            return pre0, pre1, post0, post1
        fenwick.add(pre1, -1)
        fenwick.add(post0, 1)
        fenwick.add(post1, 1)
        counts = self._counts
        for sid in (pre0, pre1):
            remaining = counts[sid] - 1
            if remaining:
                counts[sid] = remaining
            else:
                del counts[sid]
        counts[post0] = counts.get(post0, 0) + 1
        counts[post1] = counts.get(post1, 0) + 1
        output_counts = self.output_counts
        output_for = self._output_for
        for pre in (pre0, pre1):
            symbol = output_for(pre)
            remaining = output_counts[symbol] - 1
            if remaining:
                output_counts[symbol] = remaining
            else:
                del output_counts[symbol]  # keep the tally zero-free
        output_counts[output_for(post0)] += 1
        output_counts[output_for(post1)] += 1
        return pre0, pre1, post0, post1

    def run(
        self,
        max_steps: int,
        until: Callable[["MultisetSimulator"], bool] | None = None,
        check_every: int = 1,
    ) -> int:
        """Run up to ``max_steps`` steps; stop early when ``until`` fires."""
        executed = 0
        step = self.step
        if until is not None and until(self):
            return 0
        while executed < max_steps:
            step()
            executed += 1
            if until is not None and executed % check_every == 0 and until(self):
                break
        return executed

    def run_until_stabilized(
        self,
        detector: StabilizationDetector | None = None,
        max_steps: int | None = None,
        check_every: int = 1,
    ) -> int:
        """Run until stabilization; return total steps at that point."""
        if detector is None:
            detector = MonotoneLeaderStabilization()
        if max_steps is None:
            max_steps = 5000 * self.n * max(1, self.n.bit_length())
        if detector.check(self):
            return self.steps
        if isinstance(detector, MonotoneLeaderStabilization) and check_every == 1:
            executed = 0
            output_counts = self.output_counts
            step = self.step
            target = detector.target
            heartbeat = make_heartbeat(
                "multiset",
                self.protocol.name,
                self.n,
                self.seed,
                max_steps,
                enabled=self._telemetry,
            )
            series = self.phase_series
            profile = self._profile
            tracer = make_tracer()
            if tracer is not None:
                profile.tracer = tracer
            trial_span = (
                nullcontext()
                if tracer is None
                else tracer.span(
                    "trial",
                    cat="trial",
                    engine="multiset",
                    protocol=self.protocol.name,
                    n=self.n,
                    seed=self.seed,
                )
            )
            try:
                with trial_span:
                    if heartbeat is None and series is None:
                        while executed < max_steps:
                            step()
                            executed += 1
                            if output_counts.get(LEADER, 0) == target:
                                break
                    else:
                        # Separate loop so the poll-free path pays
                        # nothing.  The poll mask follows the probe
                        # stride (bounded to [2^8, 2^14]) and depends
                        # only on the spec — poll sites never depend on
                        # the telemetry switch.
                        mask = _poll_mask(series)
                        if series is not None:
                            series.poll(self.steps, self.state_counts)
                        while executed < max_steps:
                            step()
                            executed += 1
                            if output_counts.get(LEADER, 0) == target:
                                break
                            if not executed & mask:
                                if heartbeat is not None:
                                    heartbeat.maybe_beat(self.steps)
                                if series is not None:
                                    series.poll(
                                        self.steps, self.state_counts
                                    )
                        if series is not None:
                            series.finish(self.steps, self.state_counts)
            finally:
                profile.tracer = None
            emit_profile(
                profile,
                "multiset",
                self.protocol.name,
                self.n,
                self.seed,
                self.steps,
            )
        else:
            self.run(max_steps, until=detector.check, check_every=check_every)
        if not detector.check(self):
            raise ConvergenceError(
                f"protocol {self.protocol.name!r} (n={self.n}) did not "
                f"stabilize within {max_steps} steps",
                steps=self.steps,
            )
        return self.steps

    def distinct_states_seen(self) -> int:
        """Number of distinct states interned so far."""
        return len(self.interner)

    def telemetry_summary(self) -> dict:
        """Deterministic counter summary for the trial store."""
        return {
            "engine": "multiset",
            "path": "fenwick",
            "steps": self.steps,
            "null_steps": self.null_steps,
            "cache": cache_summary(self.cache.stats),
        }

    def phases_json(self) -> str | None:
        """Serialized phase series for the trial store, or ``None``."""
        series = self.phase_series
        return None if series is None else series.to_json()

    def describe(self) -> str:
        """One-line human-readable summary of the simulation."""
        return (
            f"{self.protocol.name}: n={self.n} steps={self.steps} "
            f"(parallel time {self.parallel_time:.2f}) "
            f"outputs={dict(self.output_counts)}"
        )
