"""Population-protocol simulation substrate.

Three engines share one contract (protocols, interning, caching,
detectors):

* :class:`~repro.engine.simulator.AgentSimulator` — per-agent identity;
  supports hooks, traces, epidemics, failure injection.
* :class:`~repro.engine.multiset.MultisetSimulator` — count-based with
  Fenwick-tree sampling; per-step cost independent of ``n``.
* :class:`~repro.engine.batch.BatchSimulator` — count-based, advancing
  ``Theta(sqrt(n))`` interactions per vectorized NumPy block; the engine
  for production-scale ``n``.
* :class:`~repro.engine.ensemble.EnsembleSimulator` — across-trial
  vectorization: M independent same-protocol trials advance in lockstep
  NumPy sweeps, each lane bit-identical to a solo multiset run; the
  engine for multi-trial campaign cells.

DESIGN.md has the selection guide.
"""

from repro.engine.batch import BatchSimulator, BatchStats
from repro.engine.cache import CacheStats, TransitionCache
from repro.engine.ensemble import (
    EnsembleLaneSimulator,
    EnsembleSimulator,
    LaneOutcome,
    SlotLane,
)
from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    SilenceDetector,
    StabilizationDetector,
    output_stable_forever,
)
from repro.engine.fenwick import FenwickTree
from repro.engine.interner import StateInterner
from repro.engine.metrics import InteractionCounter, StateChangeCounter, parallel_time
from repro.engine.multiset import MultisetSimulator
from repro.engine.population import Configuration
from repro.engine.protocol import (
    FOLLOWER,
    LEADER,
    LeaderElectionProtocol,
    Protocol,
    State,
    check_symmetry,
)
from repro.engine.scheduler import (
    DeterministicSchedule,
    PairScheduler,
    RandomScheduler,
    RestrictedScheduler,
)
from repro.engine.simulator import AgentSimulator
from repro.engine.trace import ConfigurationSnapshot, TraceRecorder, replay

__all__ = [
    "AgentSimulator",
    "BatchSimulator",
    "BatchStats",
    "CacheStats",
    "Configuration",
    "ConfigurationSnapshot",
    "DeterministicSchedule",
    "EnsembleLaneSimulator",
    "EnsembleSimulator",
    "FenwickTree",
    "FOLLOWER",
    "InteractionCounter",
    "LaneOutcome",
    "LEADER",
    "LeaderElectionProtocol",
    "MonotoneLeaderStabilization",
    "MultisetSimulator",
    "SlotLane",
    "PairScheduler",
    "Protocol",
    "RandomScheduler",
    "RestrictedScheduler",
    "SilenceDetector",
    "StabilizationDetector",
    "State",
    "StateChangeCounter",
    "StateInterner",
    "TraceRecorder",
    "TransitionCache",
    "check_symmetry",
    "output_stable_forever",
    "parallel_time",
    "replay",
]
