"""Population-protocol simulation substrate.

Five engines share one contract (protocols, interning, caching,
detectors):

* :class:`~repro.engine.simulator.AgentSimulator` — per-agent identity;
  supports hooks, traces, epidemics, failure injection.
* :class:`~repro.engine.multiset.MultisetSimulator` — count-based with
  Fenwick-tree sampling; per-step cost independent of ``n``.
* :class:`~repro.engine.batch.BatchSimulator` — count-based, advancing
  ``Theta(sqrt(n))`` interactions per vectorized NumPy block of
  materialized scheduler picks.
* :class:`~repro.engine.superbatch.SuperBatchSimulator` — count-level
  super-batching: the same blocks sampled without any per-agent arrays
  (exact birthday run lengths, hypergeometric pair multisets, colliding
  agents replayed on counts), so per-block cost scales with the number
  of distinct states rather than ``sqrt(n)``; the engine for
  ``n >= 10^7`` sweeps.
* :class:`~repro.engine.ensemble.EnsembleSimulator` — across-trial
  vectorization: M independent same-protocol trials advance in lockstep
  NumPy sweeps, each lane bit-identical to a solo multiset run; the
  engine for multi-trial campaign cells.

Transitions resolve through a per-protocol backend picked by
:func:`repro.engine.kernel.make_transition_cache`: protocols that opt in
via ``compile_kernel()`` run on compiled packed-state kernels
(:mod:`repro.engine.kernel` — no Python ``delta`` on the hot path, and
``engine="multiset"`` trials upgrade to the kernel-backed sorted-slot
:class:`~repro.engine.kernel.multiset.KernelMultisetSimulator`); all
others keep the classic interner + memoized-cache path.  The choice is
trajectory-invisible.  DESIGN.md has the selection guide.
"""

from repro.engine.batch import BatchSimulator, BatchStats
from repro.engine.superbatch import SuperBatchSimulator, SuperBatchStats
from repro.engine.cache import CacheStats, TransitionCache
from repro.engine.kernel import (
    CompiledKernel,
    Field,
    KernelSpec,
    KernelTransitionCache,
    compiled_kernel_for,
    kernels_enabled,
    make_transition_cache,
)
from repro.engine.kernel.multiset import KernelMultisetSimulator
from repro.engine.ensemble import (
    EnsembleLaneSimulator,
    EnsembleSimulator,
    LaneOutcome,
    SlotLane,
)
from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    SilenceDetector,
    StabilizationDetector,
    output_stable_forever,
)
from repro.engine.fenwick import FenwickTree
from repro.engine.interner import StateInterner
from repro.engine.metrics import InteractionCounter, StateChangeCounter, parallel_time
from repro.engine.multiset import MultisetSimulator
from repro.engine.population import Configuration
from repro.engine.protocol import (
    FOLLOWER,
    LEADER,
    LeaderElectionProtocol,
    Protocol,
    State,
    check_symmetry,
)
from repro.engine.scheduler import (
    DeterministicSchedule,
    PairScheduler,
    RandomScheduler,
    RestrictedScheduler,
)
from repro.engine.simulator import AgentSimulator
from repro.engine.trace import ConfigurationSnapshot, TraceRecorder, replay

__all__ = [
    "AgentSimulator",
    "BatchSimulator",
    "BatchStats",
    "SuperBatchSimulator",
    "SuperBatchStats",
    "CacheStats",
    "CompiledKernel",
    "Configuration",
    "ConfigurationSnapshot",
    "DeterministicSchedule",
    "EnsembleLaneSimulator",
    "EnsembleSimulator",
    "FenwickTree",
    "Field",
    "FOLLOWER",
    "InteractionCounter",
    "KernelMultisetSimulator",
    "KernelSpec",
    "KernelTransitionCache",
    "LaneOutcome",
    "LEADER",
    "LeaderElectionProtocol",
    "MonotoneLeaderStabilization",
    "MultisetSimulator",
    "SlotLane",
    "PairScheduler",
    "Protocol",
    "RandomScheduler",
    "RestrictedScheduler",
    "SilenceDetector",
    "StabilizationDetector",
    "State",
    "StateChangeCounter",
    "StateInterner",
    "TraceRecorder",
    "TransitionCache",
    "check_symmetry",
    "compiled_kernel_for",
    "kernels_enabled",
    "make_transition_cache",
    "output_stable_forever",
    "parallel_time",
    "replay",
]
