"""Pair-indexed transition side tables shared by every ensemble lane.

The ensemble's hot loop resolves whole arrays of ordered (initiator,
responder) state pairs at once.  :class:`PairTables` memoizes, per ordered
pair of *global* (shared-interner) state ids:

* ``pair`` — the post pair packed as ``post0 * cap + post1`` (so one
  gather answers both posts, and ``pair[key] == key`` iff the interaction
  is null);
* ``dmark`` — the leader-output count delta the interaction causes
  (``output in {L}`` marks of the posts minus those of the pres), which
  turns per-lane leader tracking into a single gather.

Tables are flat ``cap * cap`` arrays with ``cap`` a power of two grown on
demand; ``-1`` in ``pair`` marks an unfilled slot.  Filling goes through
the shared :class:`~repro.engine.cache.TransitionCache`, so the dict (and
its dense fast path) stays the single source of transition truth.

State spaces beyond :data:`MAX_PAIR_STATES` would make the quadratic
tables unreasonable; :meth:`PairTables.ensure` then raises
:class:`PairTableOverflow` and the ensemble falls back to its scalar
per-lane path, which memoizes pairs in plain dicts.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cache import TransitionCache
from repro.engine.interner import StateInterner
from repro.engine.protocol import LEADER, Protocol

__all__ = ["MAX_PAIR_STATES", "PairTableOverflow", "PairTables"]

#: Hard bound on the interned state count the quadratic pair tables will
#: cover (2048**2 x 12 bytes = 48 MiB); protocols that outgrow it drop to
#: the ensemble's dict-memoized scalar lanes.
MAX_PAIR_STATES = 2048


class PairTableOverflow(Exception):
    """The interned state space outgrew :data:`MAX_PAIR_STATES`."""


class PairTables:
    """Growable pair-indexed memo of posts and leader deltas."""

    __slots__ = ("_protocol", "_interner", "_cache", "cap", "pair", "dmark", "marks")

    def __init__(
        self,
        protocol: Protocol,
        interner: StateInterner,
        cache: TransitionCache,
    ) -> None:
        self._protocol = protocol
        self._interner = interner
        self._cache = cache
        self.cap = 16
        self.pair = np.full(self.cap * self.cap, -1, dtype=np.int64)
        self.dmark = np.zeros(self.cap * self.cap, dtype=np.int64)
        self.marks = np.zeros(self.cap, dtype=np.int64)
        self._sync()

    def _sync(self) -> None:
        """Grow caps and leader marks to cover every interned state."""
        known = len(self._interner)
        if known > MAX_PAIR_STATES:
            raise PairTableOverflow(
                f"{known} interned states exceed the {MAX_PAIR_STATES}-state "
                "pair-table bound"
            )
        cap = self.cap
        if known > cap:
            while cap < known:
                cap *= 2
            old = self.cap
            pair = np.full(cap * cap, -1, dtype=np.int64)
            dmark = np.zeros(cap * cap, dtype=np.int64)
            old_pair = self.pair.reshape(old, old)
            old_dmark = self.dmark.reshape(old, old)
            filled = old_pair >= 0
            # Re-pack stored posts under the new stride.
            repacked = (old_pair // old) * cap + old_pair % old
            pair.reshape(cap, cap)[:old, :old] = np.where(
                filled, repacked, -1
            )
            dmark.reshape(cap, cap)[:old, :old] = old_dmark
            self.pair, self.dmark, self.cap = pair, dmark, cap
            marks = np.zeros(cap, dtype=np.int64)
            marks[: self.marks.shape[0]] = self.marks
            self.marks = marks
        marks = self.marks
        output = self._protocol.output
        state_of = self._interner.state_of
        for sid in range(known):
            marks[sid] = 1 if output(state_of(sid)) == LEADER else 0

    def ensure(self, keys: np.ndarray) -> bool:
        """Fill every key's slot; ``False`` when growth invalidated keys.

        ``keys`` are ``g0 * cap + g1`` under the *current* ``cap``.  When
        filling a pair interns new states past the cap, the tables grow,
        every outstanding key (and translation built on the old cap) is
        stale, and the caller must recompute and call again.

        Missing keys resolve through the cache's *block* interface in
        one call — a single vectorized kernel application for compiled
        protocols, one memoized lookup per distinct pair otherwise —
        instead of a scalar ``apply`` per pair.
        """
        missing = keys[self.pair.take(keys) < 0]
        if missing.size == 0:
            return True
        cap = self.cap
        known = len(self._interner)
        unique = np.unique(missing)
        g0 = unique // cap
        g1 = unique % cap
        q0, q1 = self._cache.apply_block(g0, g1)
        if len(self._interner) != known:
            # New post states: refresh marks (and possibly caps).  A cap
            # change strands every outstanding key, so nothing is filled
            # — the pairs stay memoized in the cache and refill cheaply
            # on the caller's retry.
            self._sync()
            if self.cap != cap:
                return False
        marks = self.marks
        self.pair[unique] = q0 * cap + q1
        self.dmark[unique] = (
            marks[q0] + marks[q1] - marks[g0] - marks[g1]
        )
        return True
